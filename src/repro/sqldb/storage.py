"""In-memory storage engine: tables, columns, rows, result sets.

Secondary indexes are maintained **incrementally**: every mutation that
goes through the Table API (:meth:`Table.insert`, :meth:`update_row`,
:meth:`delete_rows`, :meth:`truncate`) applies a per-row delta to each
live :class:`_ColumnIndex` instead of invalidating it, so an INSERT into
a million-row table costs O(1) index work rather than an O(n) rebuild on
the next lookup.  The table's ``version`` counter survives as a
consistency check: an index whose version disagrees with the table's is
stale (some mutation bypassed the API — e.g. a legacy :meth:`touch`) and
rebuilds itself on next use; the ``index_stats()['rebuilds']`` counter
makes that observable, and the regression tests pin it at zero across
transaction rollbacks.

Index keys are :func:`repro.sqldb.types.sort_key` tuples, the same total
order the comparison engine uses — which makes one structure serve both
hash (equality) probes and bisect-based **range** scans
(:meth:`Table.index_range` for ``<``/``>``/``BETWEEN``), and fixes a
latent mismatch where the old index key lowercased strings but the
comparator also folded confusables.

Rows are **multiversioned**.  A mutation never edits a stored dict in
place: UPDATE installs a fresh dict and chains the superseded image
behind it (:class:`_RowVersion`), DELETE moves the row into a tombstone
list, and both stay *pending* — owned by a :class:`WriteTxn` and
invisible to snapshot readers — until the transaction seals them with a
commit stamp (:func:`seal_txn`).  Readers carry a :class:`ReadView`
(a watermark pinned at statement or transaction start) through
:meth:`Table.iter_rows` / :meth:`index_lookup_iter` /
:meth:`index_range_iter`; ``view=None`` keeps the historical
latest-state behaviour the DML path relies on.  Version metadata lives
*beside* the rows (keyed by dict identity), never inside them, so
checkpoint serialization, digests and the env-row layer see plain
column→value dicts exactly as before.
"""

from bisect import bisect_left, bisect_right, insort

from repro.sqldb.btree import BTree, ROWID_KEY
from repro.sqldb.errors import ExecutionError, WriteConflictError
from repro.sqldb.types import sort_key, store_convert


class Column(object):
    """Schema of one column."""

    __slots__ = (
        "name", "type_name", "length", "not_null", "primary_key",
        "auto_increment", "default", "unique",
    )

    def __init__(self, name, type_name, length=None, not_null=False,
                 primary_key=False, auto_increment=False, default=None,
                 unique=False):
        self.name = name.lower()
        self.type_name = type_name.upper()
        self.length = length
        self.not_null = not_null
        self.primary_key = primary_key
        self.auto_increment = auto_increment
        self.default = default
        self.unique = unique

    def __repr__(self):
        return "Column(%r, %r)" % (self.name, self.type_name)

    # -- durability (checkpoint snapshots) --------------------------------

    def to_dict(self):
        return {
            "name": self.name,
            "type_name": self.type_name,
            "length": self.length,
            "not_null": self.not_null,
            "primary_key": self.primary_key,
            "auto_increment": self.auto_increment,
            "default": self.default,
            "unique": self.unique,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data["name"],
            data["type_name"],
            length=data.get("length"),
            not_null=data.get("not_null", False),
            primary_key=data.get("primary_key", False),
            auto_increment=data.get("auto_increment", False),
            default=data.get("default"),
            unique=data.get("unique", False),
        )


#: the sort_key bucket NULLs land in — range scans must skip it (SQL
#: range predicates never match NULL)
_NULL_KEY = sort_key(None)


class _ColumnIndex(object):
    """One incrementally-maintained index over one column.

    ``map`` buckets row dicts by :func:`sort_key`; ``sorted_keys`` keeps
    the distinct keys ordered for bisect range scans.  ``version`` must
    equal the owning table's version for the index to be trusted.
    Bucket membership is by row-dict *identity* (two equal rows are
    distinct entries), matching how the executor mutates rows in place.
    """

    __slots__ = ("column", "version", "map", "sorted_keys")

    def __init__(self, column):
        self.column = column
        self.version = -1
        self.map = {}
        self.sorted_keys = []

    def build(self, rows, version):
        self.map = {}
        self.sorted_keys = []
        for row in rows:
            self.add(row)
        self.version = version

    def add(self, row):
        key = sort_key(row.get(self.column))
        bucket = self.map.get(key)
        if bucket is None:
            self.map[key] = [row]
            insort(self.sorted_keys, key)
        else:
            bucket.append(row)

    def remove(self, row, value_key=None):
        key = sort_key(row.get(self.column)) if value_key is None \
            else value_key
        bucket = self.map.get(key)
        if bucket is None:
            return
        for pos, candidate in enumerate(bucket):
            if candidate is row:
                del bucket[pos]
                break
        if not bucket:
            del self.map[key]
            where = bisect_left(self.sorted_keys, key)
            if (where < len(self.sorted_keys)
                    and self.sorted_keys[where] == key):
                del self.sorted_keys[where]

    def reindex(self, row, old_key):
        """Move *row* after its indexed value changed from *old_key*."""
        new_key = sort_key(row.get(self.column))
        if new_key == old_key:
            return
        self.remove(row, value_key=old_key)
        self.add(row)


class ReadView(object):
    """A snapshot-isolation read position.

    ``watermark`` is the commit stamp the reader pinned at statement (or
    transaction) start: versions sealed at or below it are visible,
    anything newer or still pending is not.  ``txn`` is set when the
    reader *is* an open transaction, so it additionally sees its own
    pending writes (and not its own pending deletes).
    """

    __slots__ = ("watermark", "txn")

    def __init__(self, watermark, txn=None):
        self.watermark = watermark
        self.txn = txn

    def __repr__(self):
        return "ReadView(%d%s)" % (self.watermark,
                                   ", txn" if self.txn is not None else "")


class WriteTxn(object):
    """Pending-version bookkeeping for one writer.

    One instance covers either a single autocommit statement (sealed by
    the executor when the statement finishes) or a whole explicit
    transaction (sealed by ``Session.commit`` with the WAL commit LSN).
    ``read_stamp`` is the transaction's snapshot watermark and drives
    first-writer-wins detection; autocommit statements leave it ``None``
    (they read latest state, so only *pending* versions can conflict).
    """

    __slots__ = ("read_stamp", "entries", "sealed")

    def __init__(self, read_stamp=None):
        self.read_stamp = read_stamp
        #: (table, kind, payload): kind "write" carries the pending row
        #: dict, kind "delete" carries the _Tombstone.
        self.entries = []
        self.sealed = False

    def record(self, table, kind, payload):
        self.entries.append((table, kind, payload))


class _RowVersion(object):
    """One superseded committed row image: immutable once chained."""

    __slots__ = ("row", "begin", "prior")

    def __init__(self, row, begin, prior):
        self.row = row
        self.begin = begin
        self.prior = prior


class _RowMeta(object):
    """Version metadata for the *current* dict of one row.

    Rows without a meta entry are legacy/settled rows: committed before
    any tracked history, visible at every watermark.  ``begin`` is the
    commit stamp (``None`` while pending), ``owner`` the pending
    :class:`WriteTxn` (``None`` once sealed), ``prior`` the chain of
    superseded :class:`_RowVersion` images.
    """

    __slots__ = ("begin", "owner", "prior")

    def __init__(self, begin, owner, prior):
        self.begin = begin
        self.owner = owner
        self.prior = prior


class _Tombstone(object):
    """A deleted row kept visible to older snapshots.

    ``row``/``begin``/``prior`` describe the deleted version chain just
    like a meta; ``end`` is the deletion stamp (``None`` while the
    delete is pending under ``owner``).
    """

    __slots__ = ("row", "begin", "prior", "end", "owner")

    def __init__(self, row, begin, prior, end, owner):
        self.row = row
        self.begin = begin
        self.prior = prior
        self.end = end
        self.owner = owner


def seal_txn(txn, stamp, collect=False):
    """Commit every pending version *txn* installed, stamping it with
    *stamp*.  With ``collect=True`` (no read view can need history) the
    sealed metadata is dropped on the spot: rows settle back into
    legacy always-visible state and resolved tombstones disappear.

    Each entry is dispatched to its table's :meth:`Table._seal_entry`
    so storage backends can hook the commit point (the paged backend
    writes the now-committed row into its B-tree here).

    The caller (``Database._seal_txn``) holds the engine's MVCC lock and
    publishes the commit counter only after this returns, so a reader
    can never pin a watermark >= *stamp* while the stamps are half
    applied."""
    for table, kind, payload in txn.entries:
        table._seal_entry(txn, kind, payload, stamp, collect)
    txn.entries = []
    txn.sealed = True


class Table(object):
    """One table: schema plus a list of row dicts (column name → value)."""

    def __init__(self, name, columns):
        self.name = name.lower()
        self.columns = columns
        self.rows = []
        self._auto_counter = 0
        self._by_name = {col.name: col for col in columns}
        if len(self._by_name) != len(columns):
            raise ExecutionError("Duplicate column name in table %r" % name)
        #: secondary indexes: index name -> column name
        self.indexes = {}
        #: bumped on every mutation; acts as the index consistency check
        self.version = 0
        #: column -> _ColumnIndex, maintained incrementally
        self._index_cache = {}
        self._index_stats = {
            "rebuilds": 0, "incremental": 0, "restores": 0,
            "lookups": 0, "range_lookups": 0,
        }
        #: id(current row dict) -> _RowMeta for rows with tracked history
        self._meta = {}
        #: _Tombstone entries: deleted rows older snapshots may still see
        self._tombstones = []

    def has_column(self, name):
        return name.lower() in self._by_name

    def column(self, name):
        return self._by_name[name.lower()]

    def column_names(self):
        return [col.name for col in self.columns]

    # -- mutation API (keeps live indexes in lockstep) --------------------

    def _apply_delta(self, delta):
        """Bump the version and apply *delta* to every index that was
        current; stale ones stay stale and rebuild on next use."""
        old_version = self.version
        self.version += 1
        for index in self._index_cache.values():
            if index.version == old_version:
                delta(index)
                index.version = self.version
                self._index_stats["incremental"] += 1

    def _build_insert_row(self, values):
        """Materialize the stored dict for an INSERT: type conversion
        (including silent VARCHAR truncation), auto-increment, defaults
        and NOT NULL backfills.  Returns ``(row, used_auto)``; shared by
        every storage backend."""
        row = {}
        used_auto = None
        for col in self.columns:
            if col.name in values:
                value = store_convert(
                    values[col.name], col.type_name, col.length
                )
            elif col.auto_increment:
                value = None
            elif col.default is not None:
                value = store_convert(col.default, col.type_name, col.length)
            else:
                value = None
            if value is None and col.auto_increment:
                self._auto_counter += 1
                value = self._auto_counter
                used_auto = value
            if value is None and col.not_null:
                if col.type_name in ("VARCHAR", "TEXT", "CHAR"):
                    value = ""
                elif col.type_name in ("DATETIME", "DATE"):
                    value = "0000-00-00 00:00:00"
                else:
                    value = 0
            row[col.name] = value
            if col.auto_increment and isinstance(value, int):
                self._auto_counter = max(self._auto_counter, value)
        return row, used_auto

    def insert(self, values, txn=None):
        """Insert a row from a ``{column: value}`` mapping.

        Applies type conversion (including silent VARCHAR truncation),
        auto-increment, defaults, NOT NULL and UNIQUE/PRIMARY KEY checks.
        With *txn* the row starts as a pending version, invisible to
        snapshot readers until the transaction seals.  Returns the
        auto-increment id used (or ``None``).
        """
        row, used_auto = self._build_insert_row(values)
        self._check_unique(row)
        # publish the pending metadata BEFORE the row becomes reachable:
        # a lock-free reader that catches the append must already find
        # the meta that marks it invisible
        if txn is not None:
            self._meta[id(row)] = _RowMeta(None, txn, None)
            txn.record(self, "write", row)
        self.rows.append(row)
        self._apply_delta(lambda index: index.add(row))
        return used_auto

    def check_write(self, row, txn):
        """First-writer-wins gate: raise :class:`WriteConflictError` if
        *row* carries a pending version owned by another transaction, or
        — for snapshot transactions — a version that committed after the
        transaction's read stamp (a lost update in the making).  Sinks
        run this over every target *before* the first mutation, so a
        conflicting statement has zero partial effects and is safe to
        retry."""
        meta = self._meta.get(id(row))
        if meta is None:
            return
        if meta.owner is not None:
            if txn is None or meta.owner is not txn:
                raise WriteConflictError(
                    "Write conflict on table '%s': row has an uncommitted "
                    "version from another transaction; retry" % self.name
                )
        elif (txn is not None and txn.read_stamp is not None
                and meta.begin is not None
                and meta.begin > txn.read_stamp):
            raise WriteConflictError(
                "Write conflict on table '%s': row changed after this "
                "transaction's snapshot (first writer wins); retry"
                % self.name
            )

    def update_row(self, row, updates, txn=None):
        """Install a new version of one stored row.

        The stored dict is never edited in place: a fresh dict replaces
        *row* at its position (and in every live index bucket), and the
        superseded image is chained behind the new version's metadata so
        pinned read views keep seeing it.  Raises
        :class:`WriteConflictError` if another transaction owns a
        pending version of the row.  Returns the new current dict."""
        self.check_write(row, txn)
        old_keys = {
            column: sort_key(row.get(column))
            for column in self._index_cache
        }
        new_row = dict(row)
        new_row.update(updates)
        for pos, stored in enumerate(self.rows):
            if stored is row:
                break
        else:
            raise ExecutionError(
                "row is not stored in table '%s'" % self.name
            )
        meta = self._meta.get(id(row))
        if txn is not None:
            if meta is not None and meta.owner is txn:
                # re-update inside one txn: keep the last *committed*
                # image as the chain head, drop the intra-txn image
                prior = meta.prior
            else:
                begin = meta.begin if meta is not None else 0
                prior = _RowVersion(
                    row, begin, meta.prior if meta is not None else None
                )
            # publish the pending meta BEFORE the dict swap: a lock-free
            # reader must never observe new_row without the metadata
            # that marks it invisible
            self._meta[id(new_row)] = _RowMeta(None, txn, prior)
            txn.record(self, "write", new_row)
        self.rows[pos] = new_row
        # the superseded dict is unreachable from rows now; its entry
        # (pending intra-txn image, or stale sealed meta) can go
        self._meta.pop(id(row), None)

        def delta(index):
            index.remove(row, value_key=old_keys[index.column])
            index.add(new_row)

        self._apply_delta(delta)
        return new_row

    def delete_rows(self, doomed, txn=None):
        """Remove the given row dicts (by identity).

        With *txn*, each removed row becomes a pending tombstone:
        invisible to the deleting transaction, still visible to pinned
        snapshots until the delete seals (and to everyone if it never
        does).  Raises :class:`WriteConflictError` — before touching
        anything — if any target has a pending version elsewhere."""
        doomed = list(doomed)
        for row in doomed:
            self.check_write(row, txn)
        doomed_ids = {id(row) for row in doomed}
        self.rows = [row for row in self.rows if id(row) not in doomed_ids]
        fresh_tombs = []
        for row in doomed:
            meta = self._meta.pop(id(row), None)
            if txn is None:
                continue
            if meta is not None and meta.owner is txn:
                # deleting a row this txn wrote: the pending image was
                # never committed, so only the prior chain matters
                tomb = _Tombstone(row, None, meta.prior, None, txn)
            else:
                begin = meta.begin if meta is not None else 0
                prior = meta.prior if meta is not None else None
                tomb = _Tombstone(row, begin, prior, None, txn)
            fresh_tombs.append(tomb)
            txn.record(self, "delete", tomb)
        if fresh_tombs:
            # one rebind, not per-row appends: overlapping scans see all
            # of this statement's tombstones or none of them
            self._tombstones = self._tombstones + fresh_tombs

        def delta(index):
            for row in doomed:
                index.remove(row)

        self._apply_delta(delta)

    def truncate(self, txn=None):
        """Drop every row and reset AUTO_INCREMENT (TRUNCATE TABLE)."""
        if txn is not None:
            for row in self.rows:
                self.check_write(row, txn)
            for row in self.rows:
                meta = self._meta.pop(id(row), None)
                if meta is not None and meta.owner is txn:
                    tomb = _Tombstone(row, None, meta.prior, None, txn)
                else:
                    begin = meta.begin if meta is not None else 0
                    prior = meta.prior if meta is not None else None
                    tomb = _Tombstone(row, begin, prior, None, txn)
                self._tombstones.append(tomb)
                txn.record(self, "delete", tomb)
        else:
            self._meta = {}
        self.rows = []
        self._auto_counter = 0

        def delta(index):
            index.map = {}
            index.sorted_keys = []

        self._apply_delta(delta)

    def _seal_entry(self, txn, kind, payload, stamp, collect):
        """Seal one pending entry of *txn* at commit (:func:`seal_txn`
        dispatches here per table so backends can hook the commit
        point).  Entries superseded later in the same transaction are
        skipped."""
        if kind == "write":
            meta = self._meta.get(id(payload))
            if meta is None or meta.owner is not txn:
                return
            meta.begin = stamp
            meta.owner = None
            if collect:
                del self._meta[id(payload)]
        else:
            tomb = payload
            if tomb.owner is not txn:
                return
            tomb.end = stamp
            tomb.owner = None
            if collect:
                try:
                    self._tombstones.remove(tomb)
                except ValueError:
                    pass

    # -- ALTER TABLE support (DDL runs under the exclusive catalog lock,
    #    so no read view can be live while these reshape rows) -----------

    def fill_column(self, name, fill):
        """ALTER TABLE ADD COLUMN: give every stored row the new column.

        DDL is a version-history barrier — historical images with the
        old shape would confuse later readers — so MVCC state is reset.
        Indexes are left stale on purpose (rebuild on next use)."""
        for row in self.rows:
            row[name] = fill
        self.reset_mvcc()
        self.touch()

    def strip_column(self, name):
        """ALTER TABLE DROP COLUMN: remove the column from every row."""
        for row in self.rows:
            row.pop(name, None)
        self.reset_mvcc()
        self.touch()

    # -- MVCC visibility ---------------------------------------------------

    def reset_mvcc(self):
        """Forget all version history and tombstones (recovery replay,
        rollback restore, and DDL barriers: only current rows matter)."""
        self._meta = {}
        self._tombstones = []

    def _visible_row(self, row, meta, view):
        """The image of *row* visible under *view*, or ``None``."""
        if meta is None:
            return row          # legacy/settled row: always visible
        if meta.owner is not None:
            if view.txn is not None and meta.owner is view.txn:
                return row      # reader owns the pending version
        elif meta.begin is not None and meta.begin <= view.watermark:
            return row
        node = meta.prior
        while node is not None:
            if node.begin <= view.watermark:
                return node.row
            node = node.prior
        return None

    def _tomb_visible(self, tomb, view):
        """The image of a deleted row still visible under *view*."""
        if tomb.owner is not None:
            if view.txn is not None and tomb.owner is view.txn:
                return None     # deleted by the reader itself
        elif tomb.end is not None and tomb.end <= view.watermark:
            return None         # deletion already visible
        if tomb.begin is not None and tomb.begin <= view.watermark:
            return tomb.row
        node = tomb.prior
        while node is not None:
            if node.begin <= view.watermark:
                return node.row
            node = node.prior
        return None

    def _iter_visible(self, view):
        # the meta lookup must be per-row against the LIVE dict: a
        # lock-free reader can overlap a writer, and a pending version
        # installed mid-scan has to be judged by its metadata, not by
        # whether the table happened to carry history at scan start
        for row in self.rows:
            meta = self._meta.get(id(row))
            if meta is None:
                yield row
                continue
            visible = self._visible_row(row, meta, view)
            if visible is not None:
                yield visible
        for tomb in self._tombstones:
            visible = self._tomb_visible(tomb, view)
            if visible is not None:
                yield visible

    def _index_safe_for(self, view):
        """An index only reflects *current* rows; with any pending
        versions or tombstones around, a snapshot read must fall back to
        the full visibility scan.  The fallback is a superset of any
        index narrowing, which is safe because the planner always keeps
        the complete WHERE in a Filter above the scan."""
        return view is None or (not self._meta and not self._tombstones)

    def vacuum(self, horizon=None):
        """Garbage-collect version history no read view can need.

        *horizon* is the oldest pinned watermark (``None`` = no active
        views).  A sealed meta whose current version is visible at the
        horizon needs no chain; a tombstone whose deletion is visible at
        the horizon needs nothing at all.  Pending entries always stay.
        Returns the number of entries dropped."""
        removed = 0
        for key in list(self._meta):
            meta = self._meta[key]
            if meta.owner is not None or meta.begin is None:
                continue
            if horizon is None or meta.begin <= horizon:
                del self._meta[key]
                removed += 1
        kept = []
        for tomb in self._tombstones:
            if (tomb.owner is None and tomb.end is not None
                    and (horizon is None or tomb.end <= horizon)):
                removed += 1
            else:
                kept.append(tomb)
        self._tombstones = kept
        return removed

    def mvcc_stats(self):
        """Observability: how much version history the table carries."""
        chains = 0
        for meta in self._meta.values():
            node = meta.prior
            while node is not None:
                chains += 1
                node = node.prior
        return {
            "versioned_rows": len(self._meta),
            "chained_images": chains,
            "tombstones": len(self._tombstones),
        }

    def touch(self):
        """Record a mutation done *outside* the mutation API.  Live
        indexes are left stale on purpose: the version mismatch is the
        consistency check that forces a rebuild on next lookup."""
        self.version += 1

    # -- transaction snapshots --------------------------------------------

    def snapshot_state(self):
        """Everything a ROLLBACK must restore: rows, the auto-increment
        counter, the mutable schema (ALTER TABLE edits columns in place,
        CREATE/DROP INDEX edits the index map in place), *and* the live
        index structure — captured as positions into the row snapshot so
        :meth:`restore_state` can rebind buckets to the restored row
        dicts without an O(n·log n) rebuild."""
        positions = {id(row): pos for pos, row in enumerate(self.rows)}
        index_states = []
        for column, index in self._index_cache.items():
            if index.version != self.version:
                continue    # stale — not worth carrying across the tx
            buckets = [
                (key, [positions[id(row)] for row in bucket])
                for key, bucket in index.map.items()
            ]
            index_states.append((column, buckets, list(index.sorted_keys)))
        return (
            [dict(row) for row in self.rows],
            self._auto_counter,
            list(self.columns),
            dict(self.indexes),
            index_states,
        )

    def restore_state(self, state):
        """Undo every mutation since :meth:`snapshot_state`.

        Rows are rebuilt as fresh dicts, so any version metadata keyed
        to the replaced dicts is meaningless: MVCC state is reset and
        the restored rows are legacy always-visible (they were committed
        state when the snapshot was taken)."""
        rows, auto, columns, indexes, index_states = state
        self.reset_mvcc()
        self.rows = [dict(row) for row in rows]
        self._auto_counter = auto
        self.columns = list(columns)
        self._by_name = {col.name: col for col in self.columns}
        self.indexes = dict(indexes)
        self.version += 1
        self._index_cache = {}
        for column, buckets, sorted_keys in index_states:
            index = _ColumnIndex(column)
            index.map = {
                key: [self.rows[pos] for pos in bucket]
                for key, bucket in buckets
            }
            index.sorted_keys = list(sorted_keys)
            index.version = self.version
            self._index_cache[column] = index
            self._index_stats["restores"] += 1

    # -- durability (checkpoint snapshots) --------------------------------

    def to_dict(self):
        """JSON-serializable full state (the checkpoint unit)."""
        return {
            "name": self.name,
            "columns": [col.to_dict() for col in self.columns],
            "rows": [dict(row) for row in self.rows],
            "auto_counter": self._auto_counter,
            "indexes": dict(self.indexes),
        }

    @classmethod
    def from_dict(cls, data):
        table = cls(data["name"],
                    [Column.from_dict(c) for c in data["columns"]])
        table.rows = [dict(row) for row in data.get("rows", [])]
        table._auto_counter = data.get("auto_counter", 0)
        table.indexes = dict(data.get("indexes", {}))
        return table

    # -- secondary indexes ------------------------------------------------

    def create_index(self, name, column):
        if not self.has_column(column):
            raise ExecutionError(
                "Key column '%s' doesn't exist in table" % column,
                errno=1072,
            )
        if name.lower() in self.indexes:
            raise ExecutionError(
                "Duplicate key name '%s'" % name, errno=1061
            )
        self.indexes[name.lower()] = column.lower()

    def drop_index(self, name):
        if name.lower() not in self.indexes:
            raise ExecutionError(
                "Can't DROP '%s'; check that column/key exists" % name,
                errno=1091,
            )
        del self.indexes[name.lower()]

    def indexed_columns(self):
        """Columns reachable through an index (incl. PK/unique)."""
        columns = set(self.indexes.values())
        for col in self.columns:
            if col.primary_key or col.unique:
                columns.add(col.name)
        return columns

    def _live_index(self, column):
        """The current :class:`_ColumnIndex` for *column*, building it
        only when absent or stale (version mismatch)."""
        column = column.lower()
        index = self._index_cache.get(column)
        if index is None:
            index = _ColumnIndex(column)
            self._index_cache[column] = index
        if index.version != self.version:
            index.build(self.rows, self.version)
            self._index_stats["rebuilds"] += 1
        return index

    def iter_rows(self, view=None):
        """Stored rows, lazily — the streaming scan API the plan
        layer's :class:`~repro.sqldb.plan.SeqScan` pulls from.  With a
        :class:`ReadView`, yields the row images visible at the view's
        watermark instead of latest state."""
        if view is None:
            return iter(self.rows)
        return self._iter_visible(view)

    def index_lookup(self, column, value, view=None):
        """Rows whose *column* equals *value* (hash-bucket access)."""
        return list(self.index_lookup_iter(column, value, view=view))

    def index_lookup_iter(self, column, value, view=None):
        """Iterator form of :meth:`index_lookup`.

        Equality follows :func:`sort_key` — the same fold the comparison
        engine applies — after storage conversion of *value*.  Under a
        :class:`ReadView` with version history present, degrades to the
        visibility scan (a superset; the Filter above re-applies the
        predicate).
        """
        if not self._index_safe_for(view):
            return self._iter_visible(view)
        index = self._live_index(column)
        self._index_stats["lookups"] += 1
        key = sort_key(self.convert(column, value))
        return iter(index.map.get(key, ()))

    def index_range(self, column, low=None, high=None,
                    low_inclusive=True, high_inclusive=True, view=None):
        """Rows whose *column* falls in ``[low, high]`` (bisect scan)."""
        return list(self.index_range_iter(column, low, high,
                                          low_inclusive, high_inclusive,
                                          view=view))

    def index_range_iter(self, column, low=None, high=None,
                         low_inclusive=True, high_inclusive=True,
                         view=None):
        """Iterator form of :meth:`index_range`.

        ``None`` bounds are open ends; NULL-valued rows never match a
        range predicate and are skipped.  Rows come back in key order.
        Under a :class:`ReadView` with version history present, degrades
        to the visibility scan like :meth:`index_lookup_iter`.
        """
        if not self._index_safe_for(view):
            yield from self._iter_visible(view)
            return
        index = self._live_index(column)
        self._index_stats["range_lookups"] += 1
        keys = index.sorted_keys
        if low is not None:
            low_key = sort_key(self.convert(column, low))
            start = (bisect_left(keys, low_key) if low_inclusive
                     else bisect_right(keys, low_key))
        else:
            start = bisect_right(keys, _NULL_KEY)
        if high is not None:
            high_key = sort_key(self.convert(column, high))
            stop = (bisect_right(keys, high_key) if high_inclusive
                    else bisect_left(keys, high_key))
        else:
            stop = len(keys)
        for key in keys[start:stop]:
            if key[0] == _NULL_KEY[0]:
                continue
            for row in index.map[key]:
                yield row

    def index_stats(self):
        """Counters the tests use to prove maintenance is incremental."""
        return dict(self._index_stats)

    def _check_unique(self, new_row, ignore_row=None):
        """PK/UNIQUE enforcement through the live index: the folded-key
        bucket narrows candidates, then the exact ``==`` filter keeps
        the original (storage-representation) equality semantics."""
        for col in self.columns:
            if not (col.primary_key or col.unique):
                continue
            value = new_row.get(col.name)
            if value is None:
                continue
            index = self._live_index(col.name)
            for row in index.map.get(sort_key(value), ()):
                if row is ignore_row or row is new_row:
                    continue
                if row.get(col.name) == value:
                    raise ExecutionError(
                        "Duplicate entry '%s' for key '%s'"
                        % (value, col.name),
                        errno=1062,
                    )

    def unique_conflicts(self, values):
        """Current rows that collide with *values* on any PK/UNIQUE
        column, in physical row order (REPLACE / ON DUPLICATE KEY
        UPDATE target discovery — ODKU updates the *first* conflict).

        Scans the physical row list (not a snapshot): uniqueness is a
        property of the latest state, so pending rows from other
        transactions participate — the first-writer-wins check is what
        turns such a collision into a retryable conflict."""
        keys = [c.name for c in self.columns
                if c.primary_key or c.unique]
        conflicts = []
        for row in self.rows:
            if any(
                values.get(key) is not None
                and row.get(key) == self.convert(key, values[key])
                for key in keys
            ):
                conflicts.append(row)
        return conflicts

    def convert(self, column_name, value):
        col = self._by_name[column_name.lower()]
        return store_convert(value, col.type_name, col.length)

    def row_count(self):
        """Number of current rows (backend-agnostic ``len``)."""
        return len(self.rows)

    def __len__(self):
        return len(self.rows)

    def __repr__(self):
        return "Table(%r, %d cols, %d rows)" % (
            self.name, len(self.columns), len(self.rows)
        )


class _RowidIndex(object):
    """A :class:`_ColumnIndex` shaped for paged tables: buckets hold
    **rowids** instead of row dicts, because the dict for a page-resident
    row is recreated on every reload and identity cannot anchor it."""

    __slots__ = ("column", "map", "sorted_keys")

    def __init__(self, column):
        self.column = column
        self.map = {}
        self.sorted_keys = []

    def add(self, key, rowid):
        bucket = self.map.get(key)
        if bucket is None:
            self.map[key] = [rowid]
            insort(self.sorted_keys, key)
        else:
            bucket.append(rowid)

    def remove(self, key, rowid):
        bucket = self.map.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(rowid)
        except ValueError:
            return
        if not bucket:
            del self.map[key]
            where = bisect_left(self.sorted_keys, key)
            if (where < len(self.sorted_keys)
                    and self.sorted_keys[where] == key):
                del self.sorted_keys[where]


class PagedTable(Table):
    """A table whose rows live in B-tree pages behind the buffer pool.

    Serves the exact same scan/mutation/MVCC API as the in-memory
    :class:`Table` — the plan operators and the executor cannot tell
    the backends apart — but the authoritative row store is a
    rowid-keyed :class:`~repro.sqldb.btree.BTree` over checksummed
    pages, so the working set is bounded by the buffer pool, not RAM.

    **The anchoring invariant.**  MVCC metadata is keyed by row-dict
    identity, but a page-resident row's dict is recreated on every
    reload — identity cannot survive eviction.  So every row whose dict
    identity *matters* (pending versions, and sealed versions whose
    history a pinned view may still need) is held in ``_anchors``
    (rowid → dict); ``_iter_pairs`` yields the anchor in place of the
    tree's copy for those rowids, ``_deleted`` hides tree rows with a
    pending delete, and a tree row with no anchor is by construction a
    settled legacy row — always visible, exactly what the base class
    assumes for rows without metadata.  Commit (:meth:`_seal_entry`)
    writes sealed content into the tree *unconditionally* (the tree
    must agree with the checkpoint's logical rows at recovery);
    ``collect`` only decides whether the anchor survives for old views.

    Secondary/unique indexes map sort keys to **rowids**
    (:class:`_RowidIndex`) for the same reason, lazily rebuilt when the
    indexed column set changes and maintained incrementally otherwise.

    Rowids are monotone and assigned in insertion order, so tree order
    == insertion order == the scan order the memory backend yields.
    """

    def __init__(self, name, columns, store):
        Table.__init__(self, name, columns)
        self._store = store
        self._tree = BTree(store, root=None)
        self._next_rowid = 1
        self._row_count = 0
        #: rowid -> row dict for rows whose identity must survive
        self._anchors = {}
        #: tree-resident rowids with a pending (unsealed) delete
        self._deleted = set()
        #: column -> _RowidIndex (lazy; None = not built)
        self._maps = None

    # -- the merged latest-state row stream -------------------------------

    def _iter_pairs(self):
        """``(rowid, row)`` of the latest state in rowid order: anchors
        shadow their tree copies, pending deletes hide theirs, and
        anchor-only rowids (pending inserts) merge in order."""
        anchor_ids = sorted(self._anchors)
        ai = 0
        for rowid, row in self._tree.items():
            while ai < len(anchor_ids) and anchor_ids[ai] < rowid:
                pending = anchor_ids[ai]
                ai += 1
                yield pending, self._anchors[pending]
            if ai < len(anchor_ids) and anchor_ids[ai] == rowid:
                ai += 1
                yield rowid, self._anchors[rowid]
                continue
            if rowid in self._deleted:
                continue
            yield rowid, row
        while ai < len(anchor_ids):
            pending = anchor_ids[ai]
            ai += 1
            yield pending, self._anchors[pending]

    def _fetch_row(self, rowid):
        """The current dict for *rowid*, or ``None`` if gone/hidden."""
        row = self._anchors.get(rowid)
        if row is not None:
            return row
        if rowid in self._deleted:
            return None
        return self._tree.get(rowid)

    def iter_rows(self, view=None):
        if view is None:
            return (row for _, row in self._iter_pairs())
        return self._iter_visible(view)

    def _iter_visible(self, view):
        for _, row in self._iter_pairs():
            meta = self._meta.get(id(row))
            if meta is None:
                yield row
                continue
            visible = self._visible_row(row, meta, view)
            if visible is not None:
                yield visible
        for tomb in self._tombstones:
            visible = self._tomb_visible(tomb, view)
            if visible is not None:
                yield visible

    # -- rowid-bucket secondary indexes -----------------------------------

    def _live_maps(self):
        needed = self.indexed_columns()
        if self._maps is None or set(self._maps) != needed:
            maps = {column: _RowidIndex(column) for column in needed}
            for rowid, row in self._iter_pairs():
                for column, index in maps.items():
                    index.add(sort_key(row.get(column)), rowid)
            self._maps = maps
            self._index_stats["rebuilds"] += 1
        return self._maps

    def _maps_add(self, row, rowid):
        if self._maps is None:
            return
        for column, index in self._maps.items():
            index.add(sort_key(row.get(column)), rowid)

    def _maps_remove(self, row, rowid):
        if self._maps is None:
            return
        for column, index in self._maps.items():
            index.remove(sort_key(row.get(column)), rowid)

    def _maps_replace(self, old_row, new_row, rowid):
        if self._maps is None:
            return
        for column, index in self._maps.items():
            old_key = sort_key(old_row.get(column))
            new_key = sort_key(new_row.get(column))
            if old_key == new_key:
                continue
            index.remove(old_key, rowid)
            index.add(new_key, rowid)

    # -- mutations ---------------------------------------------------------

    def insert(self, values, txn=None):
        row, used_auto = self._build_insert_row(values)
        self._check_unique(row)
        rowid = self._next_rowid
        self._next_rowid += 1
        row[ROWID_KEY] = rowid
        if txn is not None:
            # pending: anchored + invisible until the txn seals (the
            # meta is published with the anchor, same ordering rule as
            # the base class)
            self._meta[id(row)] = _RowMeta(None, txn, None)
            txn.record(self, "write", row)
            self._anchors[rowid] = row
        else:
            self._tree.put(rowid, row)
        self._maps_add(row, rowid)
        self._row_count += 1
        self.version += 1
        return used_auto

    def update_row(self, row, updates, txn=None):
        rowid = row.get(ROWID_KEY)
        if rowid is None:
            raise ExecutionError(
                "row is not stored in table '%s'" % self.name
            )
        current = self._anchors.get(rowid)
        if current is None:
            if rowid in self._deleted or not self._tree.contains(rowid):
                raise ExecutionError(
                    "row is not stored in table '%s'" % self.name
                )
            current = row
        self.check_write(current, txn)
        new_row = dict(current)
        new_row.update(updates)
        new_row[ROWID_KEY] = rowid
        meta = self._meta.get(id(current))
        if txn is not None:
            if meta is not None and meta.owner is txn:
                # re-update inside one txn: keep the last *committed*
                # image as the chain head, drop the intra-txn image
                prior = meta.prior
            else:
                begin = meta.begin if meta is not None else 0
                prior = _RowVersion(
                    current, begin,
                    meta.prior if meta is not None else None,
                )
            self._meta[id(new_row)] = _RowMeta(None, txn, prior)
            txn.record(self, "write", new_row)
            self._anchors[rowid] = new_row
            self._meta.pop(id(current), None)
        else:
            self._anchors.pop(rowid, None)
            self._meta.pop(id(current), None)
            self._tree.put(rowid, new_row)
        self._maps_replace(current, new_row, rowid)
        self.version += 1
        return new_row

    def delete_rows(self, doomed, txn=None):
        doomed = list(doomed)
        for row in doomed:
            self.check_write(row, txn)
        fresh_tombs = []
        for row in doomed:
            rowid = row.get(ROWID_KEY)
            if rowid is None:
                continue
            current = self._anchors.get(rowid)
            in_tree = (rowid not in self._deleted
                       and self._tree.contains(rowid))
            if current is None and not in_tree:
                continue
            if current is None:
                current = row
            meta = self._meta.pop(id(current), None)
            self._anchors.pop(rowid, None)
            if txn is not None:
                if meta is not None and meta.owner is txn:
                    tomb = _Tombstone(current, None, meta.prior, None, txn)
                else:
                    begin = meta.begin if meta is not None else 0
                    prior = meta.prior if meta is not None else None
                    tomb = _Tombstone(current, begin, prior, None, txn)
                fresh_tombs.append(tomb)
                txn.record(self, "delete", tomb)
                if in_tree:
                    self._deleted.add(rowid)
            else:
                if in_tree:
                    self._tree.delete(rowid)
            self._maps_remove(current, rowid)
            self._row_count -= 1
        if fresh_tombs:
            self._tombstones = self._tombstones + fresh_tombs
        self.version += 1

    def truncate(self, txn=None):
        pairs = list(self._iter_pairs())
        if txn is not None:
            for _, row in pairs:
                self.check_write(row, txn)
            for rowid, row in pairs:
                meta = self._meta.pop(id(row), None)
                if meta is not None and meta.owner is txn:
                    tomb = _Tombstone(row, None, meta.prior, None, txn)
                else:
                    begin = meta.begin if meta is not None else 0
                    prior = meta.prior if meta is not None else None
                    tomb = _Tombstone(row, begin, prior, None, txn)
                self._tombstones.append(tomb)
                txn.record(self, "delete", tomb)
                self._anchors.pop(rowid, None)
                if self._tree.contains(rowid):
                    self._deleted.add(rowid)
        else:
            self._meta = {}
            self._anchors = {}
            self._deleted = set()
            self._tree.clear()
        self._auto_counter = 0
        self._row_count = 0
        self._maps = None
        self.version += 1

    def _seal_entry(self, txn, kind, payload, stamp, collect):
        """Commit hook: sealed row content goes into the tree **always**
        — the pages must agree with the checkpoint's logical rows at
        recovery — while ``collect`` only decides whether the anchor
        (identity for old views) survives."""
        if kind == "write":
            meta = self._meta.get(id(payload))
            live = meta is not None and meta.owner is txn
            Table._seal_entry(self, txn, kind, payload, stamp, collect)
            if not live:
                return      # superseded later in the same txn
            rowid = payload.get(ROWID_KEY)
            if rowid is not None and self._anchors.get(rowid) is payload:
                self._tree.put(rowid, payload)
                if collect:
                    del self._anchors[rowid]
        else:
            tomb = payload
            live = tomb.owner is txn
            Table._seal_entry(self, txn, kind, payload, stamp, collect)
            if not live:
                return
            rowid = tomb.row.get(ROWID_KEY)
            if rowid is not None and rowid in self._deleted:
                self._deleted.discard(rowid)
                self._tree.delete(rowid)

    # -- MVCC lifecycle ----------------------------------------------------

    def reset_mvcc(self):
        """Pending state becomes plain state (same semantics as the base:
        clearing the metadata makes pending rows visible) — so anchors
        flush into the tree and pending deletes apply, *then* the
        metadata is dropped."""
        for rowid in sorted(self._anchors):
            self._tree.put(rowid, self._anchors[rowid])
        for rowid in sorted(self._deleted):
            self._tree.delete(rowid)
        self._anchors = {}
        self._deleted = set()
        Table.reset_mvcc(self)

    def vacuum(self, horizon=None):
        removed = Table.vacuum(self, horizon)
        # an anchor whose metadata was just collected has settled: its
        # content is already in the tree (written at seal), so the tree
        # copy takes over and the anchor can go
        for rowid in list(self._anchors):
            if id(self._anchors[rowid]) not in self._meta:
                del self._anchors[rowid]
        return removed

    # -- ALTER TABLE -------------------------------------------------------

    def fill_column(self, name, fill):
        self.reset_mvcc()

        def mutator(row):
            row[name] = fill

        self._tree.update_rows(mutator)
        self._maps = None
        self.touch()

    def strip_column(self, name):
        self.reset_mvcc()

        def mutator(row):
            row.pop(name, None)

        self._tree.update_rows(mutator)
        self._maps = None
        self.touch()

    # -- transaction snapshots ---------------------------------------------

    def snapshot_state(self):
        """Same 5-tuple shape as the base (``Session.rollback`` inspects
        columns/indexes at fixed positions); rows keep their rowids so
        the restore can rebuild the tree with identity-equivalent keys."""
        rows = []
        for rowid, row in self._iter_pairs():
            copy = dict(row)
            copy[ROWID_KEY] = rowid
            rows.append(copy)
        return (
            rows,
            self._auto_counter,
            list(self.columns),
            dict(self.indexes),
            [],
        )

    def restore_state(self, state):
        rows, auto, columns, indexes, _index_states = state
        # discard the overlay WITHOUT flushing (this is an undo, not a
        # settle), then rebuild the tree from the snapshot
        self._meta = {}
        self._tombstones = []
        self._anchors = {}
        self._deleted = set()
        self._tree.clear()
        self._auto_counter = auto
        self.columns = list(columns)
        self._by_name = {col.name: col for col in self.columns}
        self.indexes = dict(indexes)
        self._row_count = 0
        next_rowid = self._next_rowid
        for row in rows:
            row = dict(row)
            rowid = row.get(ROWID_KEY)
            if rowid is None:
                rowid = next_rowid
                row[ROWID_KEY] = rowid
            self._tree.put(rowid, row)
            self._row_count += 1
            next_rowid = max(next_rowid, rowid + 1)
        self._next_rowid = max(self._next_rowid, next_rowid)
        self._maps = None
        self.version += 1

    # -- durability --------------------------------------------------------

    def to_dict(self):
        """Logical rows with the rowid marker stripped: digests and
        checkpoint bodies are backend-agnostic (a paged table and a
        memory table with the same content serialize identically)."""
        rows = []
        for _, row in self._iter_pairs():
            rows.append({key: value for key, value in row.items()
                         if key != ROWID_KEY})
        return {
            "name": self.name,
            "columns": [col.to_dict() for col in self.columns],
            "rows": rows,
            "auto_counter": self._auto_counter,
            "indexes": dict(self.indexes),
        }

    def pages_meta(self):
        """The physical bootstrap the checkpoint persists per table."""
        return {
            "root": self._tree.root,
            "next_rowid": self._next_rowid,
            "count": self._row_count,
        }

    @classmethod
    def open(cls, data, store, meta):
        """Re-open a table onto its existing pages (*data* is the
        logical checkpoint entry, *meta* the persisted ``pages_meta``)."""
        table = cls(data["name"],
                    [Column.from_dict(c) for c in data["columns"]],
                    store)
        table._auto_counter = data.get("auto_counter", 0)
        table.indexes = dict(data.get("indexes", {}))
        root = meta.get("root")
        table._tree.root = root if root is not None else None
        table._next_rowid = meta.get("next_rowid", 1)
        table._row_count = meta.get("count", 0)
        return table

    @classmethod
    def from_rows(cls, data, store):
        """Build a table (and fresh pages) from a logical checkpoint
        entry — the bootstrap path and the corruption-repair fallback."""
        table = cls(data["name"],
                    [Column.from_dict(c) for c in data["columns"]],
                    store)
        table._auto_counter = data.get("auto_counter", 0)
        table.indexes = dict(data.get("indexes", {}))
        table.load_rows(data.get("rows", []))
        return table

    def load_rows(self, rows):
        """Replace the tree content with *rows* (fresh rowids)."""
        self._meta = {}
        self._tombstones = []
        self._anchors = {}
        self._deleted = set()
        self._tree.clear()
        self._row_count = 0
        for row in rows:
            row = dict(row)
            rowid = self._next_rowid
            self._next_rowid += 1
            row[ROWID_KEY] = rowid
            self._tree.put(rowid, row)
            self._row_count += 1
        self._maps = None
        self.version += 1

    def verify_scan(self):
        """Walk every row (faulting every page through its checksum);
        raises :class:`~repro.sqldb.errors.PageCorruptionError` on
        damage.  Returns the number of rows seen and re-syncs the
        persisted row count (the count is advisory, the tree is the
        authority)."""
        # fault every tree page (interiors included — a leaf-chain walk
        # alone would miss a damaged interior off the leftmost path)
        for page_no in self._tree.pages():
            self._store.pool.fetch(page_no)
        count = 0
        for _ in self._iter_pairs():
            count += 1
        self._row_count = count
        return count

    def pages(self):
        """Page numbers this table's tree occupies (scrubber scan set)."""
        return self._tree.pages()

    def dispose(self):
        """Free every page (DROP TABLE)."""
        self._anchors = {}
        self._deleted = set()
        self._maps = None
        self._tree.clear()
        self._row_count = 0

    # -- index access ------------------------------------------------------

    def index_lookup_iter(self, column, value, view=None):
        if not self._index_safe_for(view):
            return self._iter_visible(view)
        column = column.lower()
        key = sort_key(self.convert(column, value))
        maps = self._live_maps()
        index = maps.get(column)
        if index is None:
            # not an indexed column: filter the scan (same result set
            # as the base class's build-on-demand index)
            return (row for _, row in self._iter_pairs()
                    if sort_key(row.get(column)) == key)
        self._index_stats["lookups"] += 1
        rowids = list(index.map.get(key, ()))
        return (row for row in map(self._fetch_row, rowids)
                if row is not None)

    def index_range_iter(self, column, low=None, high=None,
                         low_inclusive=True, high_inclusive=True,
                         view=None):
        if not self._index_safe_for(view):
            yield from self._iter_visible(view)
            return
        column = column.lower()
        maps = self._live_maps()
        index = maps.get(column)
        if index is None:
            yield from Table.index_range_iter(
                self, column, low, high, low_inclusive, high_inclusive,
                view=view,
            )
            return
        self._index_stats["range_lookups"] += 1
        keys = index.sorted_keys
        if low is not None:
            low_key = sort_key(self.convert(column, low))
            start = (bisect_left(keys, low_key) if low_inclusive
                     else bisect_right(keys, low_key))
        else:
            start = bisect_right(keys, _NULL_KEY)
        if high is not None:
            high_key = sort_key(self.convert(column, high))
            stop = (bisect_right(keys, high_key) if high_inclusive
                    else bisect_left(keys, high_key))
        else:
            stop = len(keys)
        for key in keys[start:stop]:
            if key[0] == _NULL_KEY[0]:
                continue
            for rowid in list(index.map[key]):
                row = self._fetch_row(rowid)
                if row is not None:
                    yield row

    def _check_unique(self, new_row, ignore_row=None):
        ignore_rowid = None
        if ignore_row is not None:
            ignore_rowid = ignore_row.get(ROWID_KEY)
        own_rowid = new_row.get(ROWID_KEY)
        for col in self.columns:
            if not (col.primary_key or col.unique):
                continue
            value = new_row.get(col.name)
            if value is None:
                continue
            index = self._live_maps().get(col.name)
            if index is None:
                continue
            for rowid in list(index.map.get(sort_key(value), ())):
                if rowid == ignore_rowid or rowid == own_rowid:
                    continue
                row = self._fetch_row(rowid)
                if row is None or row is new_row or row is ignore_row:
                    continue
                if row.get(col.name) == value:
                    raise ExecutionError(
                        "Duplicate entry '%s' for key '%s'"
                        % (value, col.name),
                        errno=1062,
                    )

    def unique_conflicts(self, values):
        hits = set()
        for col in self.columns:
            if not (col.primary_key or col.unique):
                continue
            value = values.get(col.name)
            if value is None:
                continue
            value = self.convert(col.name, value)
            index = self._live_maps().get(col.name)
            if index is None:
                continue
            for rowid in index.map.get(sort_key(value), ()):
                row = self._fetch_row(rowid)
                if row is not None and row.get(col.name) == value:
                    hits.add(rowid)
        # ascending rowid == insertion order == the base class's
        # physical row order (ODKU updates the first conflict)
        conflicts = []
        for rowid in sorted(hits):
            row = self._fetch_row(rowid)
            if row is not None:
                conflicts.append(row)
        return conflicts

    # -- misc --------------------------------------------------------------

    def row_count(self):
        return self._row_count

    def __len__(self):
        return self._row_count

    def __repr__(self):
        return "PagedTable(%r, %d cols, %d rows)" % (
            self.name, len(self.columns), self._row_count
        )


class ResultSet(object):
    """Rows returned to the client: column names + list of value tuples."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns, rows):
        self.columns = list(columns)
        self.rows = [tuple(r) for r in rows]

    def rows_as_dicts(self):
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self):
        """First column of the first row, or ``None`` if empty."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, name):
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __eq__(self, other):
        return (
            isinstance(other, ResultSet)
            and self.columns == other.columns
            and self.rows == other.rows
        )

    def __repr__(self):
        return "ResultSet(%r, %d rows)" % (self.columns, len(self.rows))
