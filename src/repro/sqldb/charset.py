"""Connection-charset decoding and its semantic-mismatch quirks.

MySQL decodes the bytes of a query according to the *connection character
set* before the parser sees them.  Two families of quirks in that decoding
step are the root cause of the attacks the paper demonstrates:

* **Unicode confusables** — under ``utf8_general_ci``-style collations MySQL
  treats a set of unicode codepoints as equivalent to their ASCII
  counterparts.  The paper's second-order attack smuggles a prime through
  PHP sanitization as ``U+02BC`` (modifier letter apostrophe); MySQL decodes
  it into ``'`` which then terminates the string literal.
* **Multibyte escape eating** — in charsets such as GBK the byte ``0xBF``
  followed by ``0x5C`` (the backslash ``addslashes`` inserted) forms a
  single two-byte character, swallowing the escape and leaving the attacker
  controlled quote live.

Both behaviours are implemented here so the substrate reproduces the exact
decode-then-parse pipeline SEPTIC exploits: SEPTIC sees the query *after*
this decoding, sanitization functions act *before* it.
"""

#: Codepoints MySQL folds onto ASCII equivalents during query decoding.
#: The attack in the paper uses U+02BC; the rest round out the confusable
#: set used by real-world semantic-mismatch exploits.
UNICODE_CONFUSABLES = {
    "ʼ": "'",   # MODIFIER LETTER APOSTROPHE (the paper's payload)
    "ʹ": "'",   # MODIFIER LETTER PRIME
    "‘": "'",   # LEFT SINGLE QUOTATION MARK
    "’": "'",   # RIGHT SINGLE QUOTATION MARK
    "′": "'",   # PRIME
    "＇": "'",   # FULLWIDTH APOSTROPHE
    "“": '"',   # LEFT DOUBLE QUOTATION MARK
    "”": '"',   # RIGHT DOUBLE QUOTATION MARK
    "″": '"',   # DOUBLE PRIME
    "＂": '"',   # FULLWIDTH QUOTATION MARK
    "＜": "<",   # FULLWIDTH LESS-THAN SIGN
    "＞": ">",   # FULLWIDTH GREATER-THAN SIGN
    "；": ";",   # FULLWIDTH SEMICOLON
    "－": "-",   # FULLWIDTH HYPHEN-MINUS
    "＃": "#",   # FULLWIDTH NUMBER SIGN
}

#: Leading bytes that, in GBK-family charsets, combine with a following
#: byte (including ``0x5C`` ``\\``) into a single character.
_GBK_LEAD_LO = 0x81
_GBK_LEAD_HI = 0xFE

#: Placeholder character used for a merged GBK pair.  Any non-syntax char
#: works; the point is that the backslash is *consumed*.
GBK_MERGED_CHAR = "縺"

#: Charsets supported by the engine.
SUPPORTED_CHARSETS = ("utf8", "utf8_strict", "gbk", "latin1")


def fold_confusables(text):
    """Map unicode confusables in *text* onto their ASCII equivalents.

    This is the step that turns a sanitizer-invisible ``U+02BC`` into a
    live single quote inside the DBMS.
    """
    if all(ord(ch) < 128 for ch in text):
        return text
    return "".join(UNICODE_CONFUSABLES.get(ch, ch) for ch in text)


def eat_gbk_escapes(text):
    """Simulate GBK multibyte decoding over a unicode string.

    A character whose codepoint has a GBK lead byte value, immediately
    followed by a backslash, merges with that backslash into one character
    (:data:`GBK_MERGED_CHAR`).  The classic ``%bf%5c`` escape-eating attack
    relies on exactly this: ``addslashes`` produced the ``\\`` and GBK
    decoding consumes it.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if (
            i + 1 < n
            and text[i + 1] == "\\"
            and _GBK_LEAD_LO <= ord(ch) <= _GBK_LEAD_HI
        ):
            out.append(GBK_MERGED_CHAR)
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def decode_query(text, charset="utf8"):
    """Decode a raw query string the way the DBMS does before parsing.

    ``utf8``
        MySQL-like behaviour: unicode confusables fold onto ASCII.
    ``utf8_strict``
        No folding — the hypothetical "safe" DBMS with no semantic
        mismatch; used by tests and ablations as a control.
    ``gbk``
        Folding *plus* multibyte escape eating.
    ``latin1``
        No folding, no escape eating (non-ASCII survives untouched).
    """
    if charset not in SUPPORTED_CHARSETS:
        raise ValueError("unsupported connection charset: %r" % (charset,))
    if charset == "utf8":
        return fold_confusables(text)
    if charset == "gbk":
        return fold_confusables(eat_gbk_escapes(text))
    return text


def escape_string(value):
    """Server-side reference implementation of string escaping.

    Mirrors ``mysql_real_escape_string``: escapes the characters MySQL's
    manual lists.  Note what it does **not** do: it does not touch unicode
    confusables, which is precisely why the paper's attack passes through
    sanitized applications.
    """
    replacements = {
        "\\": "\\\\",
        "'": "\\'",
        '"': '\\"',
        "\0": "\\0",
        "\n": "\\n",
        "\r": "\\r",
        "\x1a": "\\Z",
    }
    return "".join(replacements.get(ch, ch) for ch in value)
