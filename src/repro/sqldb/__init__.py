"""Mini-MySQL substrate.

A from-scratch, in-memory SQL engine whose processing pipeline mirrors the
parts of MySQL that SEPTIC depends on:

1. connection-charset decoding (:mod:`repro.sqldb.charset`) — including the
   unicode-confusable and multibyte quirks that create the *semantic
   mismatch* the paper demonstrates;
2. lexing and parsing (:mod:`repro.sqldb.lexer`, :mod:`repro.sqldb.parser`);
3. semantic validation producing a MySQL-style **item stack**
   (:mod:`repro.sqldb.validator`, :mod:`repro.sqldb.items`);
4. execution against an in-memory storage engine
   (:mod:`repro.sqldb.executor`, :mod:`repro.sqldb.storage`).

The SEPTIC hook sits between steps 3 and 4 (see
:class:`repro.sqldb.engine.Database`), i.e. *inside* the DBMS, exactly where
the paper places it.
"""

from repro.sqldb.engine import Database
from repro.sqldb.connection import Connection
from repro.sqldb.errors import (
    SQLError,
    LexerError,
    ParseError,
    ValidationError,
    ExecutionError,
    QueryBlocked,
    MultiStatementError,
)
from repro.sqldb.items import Item, ItemKind
from repro.sqldb.storage import Column, Table, ResultSet

__all__ = [
    "Database",
    "Connection",
    "SQLError",
    "LexerError",
    "ParseError",
    "ValidationError",
    "ExecutionError",
    "QueryBlocked",
    "MultiStatementError",
    "Item",
    "ItemKind",
    "Column",
    "Table",
    "ResultSet",
]
