"""The MySQL-style *item stack*.

After parsing and validating a query, MySQL holds the query's elements in a
stack of ``Item`` objects; SEPTIC reads that stack to build the query
structure (QS).  Each node is either

* an **element** node ``<ELEM_TYPE, ELEM_DATA>`` — structural information
  (fields, functions, operators, tables, clause markers), or
* a **data** node ``<DATA_TYPE, DATA>`` — a literal that (possibly) carries
  user input.

The distinction drives query-model construction: QM = QS with every data
node's DATA replaced by ⊥ (see :mod:`repro.core.query_model`).
"""


class ItemKind(object):
    """Item kind tags, mirroring the paper's Figure 2 vocabulary."""

    # -- element kinds (structure) --------------------------------------
    FROM_TABLE = "FROM_TABLE"
    SELECT_FIELD = "SELECT_FIELD"
    FIELD_ITEM = "FIELD_ITEM"
    FUNC_ITEM = "FUNC_ITEM"
    COND_ITEM = "COND_ITEM"
    JOIN_ITEM = "JOIN_ITEM"
    ORDER_ITEM = "ORDER_ITEM"
    GROUP_ITEM = "GROUP_ITEM"
    HAVING_ITEM = "HAVING_ITEM"
    LIMIT_ITEM = "LIMIT_ITEM"
    UNION_ITEM = "UNION_ITEM"
    SUBSELECT_ITEM = "SUBSELECT_ITEM"
    CASE_ITEM = "CASE_ITEM"
    INSERT_TABLE = "INSERT_TABLE"
    REPLACE_TABLE = "REPLACE_TABLE"
    INSERT_FIELD = "INSERT_FIELD"
    ROW_ITEM = "ROW_ITEM"
    UPDATE_TABLE = "UPDATE_TABLE"
    UPDATE_FIELD = "UPDATE_FIELD"
    DELETE_TABLE = "DELETE_TABLE"

    # -- data kinds (literals, i.e. potential user input) ----------------
    INT_ITEM = "INT_ITEM"
    REAL_ITEM = "REAL_ITEM"
    DECIMAL_ITEM = "DECIMAL_ITEM"
    STRING_ITEM = "STRING_ITEM"
    NULL_ITEM = "NULL_ITEM"
    PARAM_ITEM = "PARAM_ITEM"


#: Kinds whose payload is data (abstracted to ⊥ in the query model).
DATA_KINDS = frozenset(
    [
        ItemKind.INT_ITEM,
        ItemKind.REAL_ITEM,
        ItemKind.DECIMAL_ITEM,
        ItemKind.STRING_ITEM,
        ItemKind.NULL_ITEM,
        ItemKind.PARAM_ITEM,
    ]
)


class Item(object):
    """One node of the item stack.

    ``kind``
        One of the :class:`ItemKind` tags.
    ``value``
        The element data (field name, function name, …) for element nodes;
        the literal value for data nodes.
    """

    __slots__ = ("kind", "value")

    def __init__(self, kind, value):
        self.kind = kind
        self.value = value

    @property
    def is_data(self):
        return self.kind in DATA_KINDS

    def __eq__(self, other):
        return (
            isinstance(other, Item)
            and self.kind == other.kind
            and self.value == other.value
        )

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash((self.kind, self.value))

    def __repr__(self):
        return "<%s, %s>" % (self.kind, self.value)
