"""Rowid-keyed B-tree over buffer-pool pages.

Each table stores its rows in one B-tree keyed by a monotone integer
rowid (assignment order == insertion order, which keeps full scans in
the same order the in-memory backend yields).  Nodes are JSON documents
inside checksummed pages:

leaf      ``{"t": "L", "k": [rowids], "r": [row dicts], "n": next_leaf}``
interior  ``{"t": "I", "k": [separator keys], "c": [child page numbers]}``

``n`` chains leaves left-to-right (0 = none) so full scans walk the
leaf level without descending; an interior node with ``len(k) == n``
has ``n + 1`` children and routes key *K* to ``c[bisect_right(k, K)]``.
Splits happen when a node's encoded form no longer fits its page's
payload budget (rows vary wildly in size, so the split trigger is
bytes, not arity); deletes are lazy — no merging, an empty leaf simply
yields nothing — matching the exemplar layout.

Every descent pins the path root→leaf in the buffer pool, so the pool
must hold at least (tree height + a small working margin) frames; the
4-page property-test pool handles the 2-level trees small workloads
build, production defaults are far above any realistic height.

Rows are stored without their ``__rowid__`` marker (the key column *is*
the rowid); decode re-attaches it so row dicts coming off a page are
indistinguishable from freshly-inserted ones.
"""

import json
from bisect import bisect_left, bisect_right

from repro.sqldb.errors import PagerError

#: hidden per-row key the paged table plants in each row dict
ROWID_KEY = "__rowid__"

LEAF = "L"
INTERIOR = "I"


def encode_node(node):
    """A node's page payload.  Rows are serialised without their
    ``__rowid__`` (recomputed from ``k`` on decode)."""
    if node["t"] == LEAF:
        rows = []
        for row in node["r"]:
            if ROWID_KEY in row:
                row = {key: value for key, value in row.items()
                       if key != ROWID_KEY}
            rows.append(row)
        doc = {"t": LEAF, "k": node["k"], "r": rows, "n": node["n"]}
    else:
        doc = {"t": INTERIOR, "k": node["k"], "c": node["c"]}
    return json.dumps(doc, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_node(payload):
    doc = json.loads(payload.decode("utf-8"))
    if doc["t"] == LEAF:
        for rowid, row in zip(doc["k"], doc["r"]):
            row[ROWID_KEY] = rowid
    return doc


def _new_leaf():
    return {"t": LEAF, "k": [], "r": [], "n": 0}


class BTree(object):
    """One table's rowid→row tree over a :class:`~repro.sqldb.pager.PageStore`
    buffer pool."""

    def __init__(self, store, root=None):
        self.store = store
        self.root = root

    @property
    def _pool(self):
        return self.store.pool

    def _budget(self):
        return self.store.pager.payload_budget

    def _fits(self, node):
        return len(encode_node(node)) <= self._budget()

    # -- reads -------------------------------------------------------------

    def get(self, rowid):
        """The row dict for *rowid*, or ``None``."""
        if self.root is None:
            return None
        pool = self._pool
        page_no = self.root
        pinned = []
        try:
            while True:
                node = pool.fetch(page_no)
                pool.pin(page_no)
                pinned.append(page_no)
                if node["t"] == LEAF:
                    i = bisect_left(node["k"], rowid)
                    if i < len(node["k"]) and node["k"][i] == rowid:
                        return node["r"][i]
                    return None
                page_no = node["c"][bisect_right(node["k"], rowid)]
        finally:
            for page in pinned:
                pool.unpin(page)

    def contains(self, rowid):
        return self.get(rowid) is not None

    def items(self):
        """Yield ``(rowid, row)`` in rowid order by walking the leaf
        chain.  Each leaf is pinned only while being yielded from, so
        long scans hold one pin at a time."""
        if self.root is None:
            return
        pool = self._pool
        page_no = self.root
        # descend to the leftmost leaf
        while True:
            node = pool.fetch(page_no)
            if node["t"] == LEAF:
                break
            page_no = node["c"][0]
        while page_no:
            node = pool.fetch(page_no)
            pool.pin(page_no)
            try:
                for rowid, row in zip(list(node["k"]), list(node["r"])):
                    yield rowid, row
                next_no = node["n"]
            finally:
                pool.unpin(page_no)
            page_no = next_no

    def pages(self):
        """Every page number reachable from the root (BFS) — the
        scrubber's scan set for this tree.  A page that fails its
        checksum is still *listed* (the scrubber must see it to repair
        it) but not descended into — a corrupt interior's subtree is
        unreachable until a repair rebuilds the tree anyway."""
        if self.root is None:
            return []
        pool = self._pool
        seen = []
        queue = [self.root]
        while queue:
            page_no = queue.pop(0)
            seen.append(page_no)
            try:
                node = pool.fetch(page_no)
            except PagerError:
                continue
            if node["t"] == INTERIOR:
                queue.extend(node["c"])
        return seen

    # -- writes ------------------------------------------------------------

    def put(self, rowid, row):
        """Insert or replace *rowid*'s row."""
        pool = self._pool
        if self.root is None:
            leaf = _new_leaf()
            leaf["k"].append(rowid)
            leaf["r"].append(row)
            if not self._fits(leaf):
                raise PagerError(
                    "row of %d bytes exceeds the page payload budget (%d)"
                    % (len(encode_node(leaf)), self._budget())
                )
            self.root = pool.new_page(leaf)
            return
        path = []       # [(page_no, child_index)] interior crumbs
        page_no = self.root
        pinned = []
        try:
            while True:
                node = pool.fetch(page_no)
                pool.pin(page_no)
                pinned.append(page_no)
                if node["t"] == LEAF:
                    break
                child_index = bisect_right(node["k"], rowid)
                path.append((page_no, child_index))
                page_no = node["c"][child_index]
            i = bisect_left(node["k"], rowid)
            if i < len(node["k"]) and node["k"][i] == rowid:
                node["r"][i] = row
            else:
                node["k"].insert(i, rowid)
                node["r"].insert(i, row)
            pool.mark_dirty(page_no)
            if not self._fits(node):
                self._split(page_no, node, path)
        finally:
            for page in pinned:
                pool.unpin(page)

    def _split(self, page_no, node, path):
        pool = self._pool
        if node["t"] == LEAF:
            if len(node["k"]) < 2:
                raise PagerError(
                    "row of %d bytes exceeds the page payload budget (%d)"
                    % (len(encode_node(node)), self._budget())
                )
            mid = len(node["k"]) // 2
            right = {"t": LEAF, "k": node["k"][mid:], "r": node["r"][mid:],
                     "n": node["n"]}
            node["k"] = node["k"][:mid]
            node["r"] = node["r"][:mid]
            # route keys < right's first key left, >= it right: descent
            # uses bisect_right, which sends a key equal to the
            # separator into the right child — so the separator must be
            # the right leaf's first key, never the left leaf's last
            separator = right["k"][0]
            right_no = pool.new_page(right)
            pool.pin(right_no)
            try:
                node["n"] = right_no
                pool.mark_dirty(page_no)
                self._insert_into_parent(page_no, separator, right_no, path)
            finally:
                pool.unpin(right_no)
        else:
            mid = len(node["k"]) // 2
            separator = node["k"][mid]
            right = {"t": INTERIOR, "k": node["k"][mid + 1:],
                     "c": node["c"][mid + 1:]}
            node["k"] = node["k"][:mid]
            node["c"] = node["c"][:mid + 1]
            right_no = pool.new_page(right)
            pool.pin(right_no)
            try:
                pool.mark_dirty(page_no)
                self._insert_into_parent(page_no, separator, right_no, path)
            finally:
                pool.unpin(right_no)

    def _insert_into_parent(self, left_no, separator, right_no, path):
        pool = self._pool
        if not path:
            root = {"t": INTERIOR, "k": [separator], "c": [left_no, right_no]}
            self.root = pool.new_page(root)
            return
        parent_no, child_index = path.pop()
        parent = pool.fetch(parent_no)
        parent["k"].insert(child_index, separator)
        parent["c"].insert(child_index + 1, right_no)
        pool.mark_dirty(parent_no)
        if not self._fits(parent):
            self._split(parent_no, parent, path)

    def delete(self, rowid):
        """Remove *rowid* if present (lazy: leaves are never merged).
        Returns True when a row was removed."""
        if self.root is None:
            return False
        pool = self._pool
        page_no = self.root
        pinned = []
        try:
            while True:
                node = pool.fetch(page_no)
                pool.pin(page_no)
                pinned.append(page_no)
                if node["t"] == LEAF:
                    i = bisect_left(node["k"], rowid)
                    if i < len(node["k"]) and node["k"][i] == rowid:
                        del node["k"][i]
                        del node["r"][i]
                        pool.mark_dirty(page_no)
                        return True
                    return False
                page_no = node["c"][bisect_right(node["k"], rowid)]
        finally:
            for page in pinned:
                pool.unpin(page)

    def update_rows(self, mutator):
        """Apply *mutator(row)* to every stored row in place (ALTER
        TABLE fill/strip), dirtying each touched leaf."""
        if self.root is None:
            return
        pool = self._pool
        page_no = self.root
        while True:
            node = pool.fetch(page_no)
            if node["t"] == LEAF:
                break
            page_no = node["c"][0]
        while page_no:
            node = pool.fetch(page_no)
            pool.pin(page_no)
            try:
                for row in node["r"]:
                    mutator(row)
                if node["r"]:
                    pool.mark_dirty(page_no)
                next_no = node["n"]
            finally:
                pool.unpin(page_no)
            page_no = next_no

    def clear(self):
        """Free every page of the tree.  Idempotent: a cleared tree has
        ``root is None`` and clearing it again is a no-op (this is what
        makes DROP-then-rollback safe from double-frees)."""
        if self.root is None:
            return
        for page_no in self.pages():
            self.store.free_page(page_no)
        self.root = None
