"""Prepared statements: parse once, bind ``?`` parameters per execution.

Two properties matter for the reproduction:

* **binding happens after decoding** — parameters travel in the binary
  protocol, so the connection-charset quirks (unicode folding, GBK
  escape-eating) never touch them.  A U+02BC inside a bound parameter
  stays a U+02BC: prepared statements are naturally immune to the
  paper's decoding channel, which the tests demonstrate as a contrast;
* **bound values become DATA nodes** of the exact same item-stack shape
  a literal query produces, so SEPTIC models trained on literal queries
  match prepared executions of the same statement (and vice versa).
"""

import itertools

from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import ExecutionError, ParseError

#: process-wide statement-id allocator (``next()`` is atomic); ids are
#: what the wire protocol hands to clients and what the pipeline-cache
#: key pins, so two prepares of the same text never share bind state
_STATEMENT_IDS = itertools.count(1)

#: the value types the binary protocol can bind — also exactly the
#: types that are hashable and therefore usable in a cache key
_BINDABLE_TYPES = (type(None), bool, int, float, str)


def literal_for(value):
    """Convert a Python value into the literal node MySQL's binary
    protocol binding would produce."""
    if value is None:
        return ast.Literal(None, "null")
    if isinstance(value, bool):
        return ast.Literal(value, "bool")
    if isinstance(value, int):
        return ast.Literal(value, "int")
    if isinstance(value, float):
        return ast.Literal(value, "float")
    if isinstance(value, str):
        return ast.Literal(value, "string")
    raise ExecutionError(
        "cannot bind parameter of type %s" % type(value).__name__
    )


def count_params(node):
    """Number of ``?`` placeholders in a statement/expression tree."""
    return len(_collect_param_sites(node))


def bind_params(statement, params):
    """Return a deep copy of *statement* with every ``?`` replaced, in
    order, by the corresponding value from *params*."""
    sites = _collect_param_sites(statement)
    if len(sites) != len(params):
        raise ExecutionError(
            "statement expects %d parameters, got %d"
            % (len(sites), len(params)),
            errno=2031,
        )
    clone = _clone(statement)
    clone_sites = _collect_param_sites(clone)
    for (holder, key), value in zip(clone_sites, params):
        literal = literal_for(value)
        if isinstance(key, int):
            holder[key] = literal
        else:
            setattr(holder, key, literal)
    return clone


def _clone(node):
    """Deep-copy an AST (lists and Node subclasses only)."""
    if isinstance(node, list):
        return [_clone(item) for item in node]
    if isinstance(node, tuple):
        # tuples (UPDATE assignments, CASE whens) become lists in the
        # clone so a Param sitting directly inside one stays bindable
        return [_clone(item) for item in node]
    if isinstance(node, ast.Node):
        copy = object.__new__(type(node))
        for field in node._fields():
            setattr(copy, field, _clone(getattr(node, field)))
        return copy
    return node


def _collect_param_sites(root):
    """Find every Param node and where it hangs: a list of
    ``(container, key)`` pairs where ``container[key]`` /
    ``getattr(container, key)`` is the Param, in source order."""
    sites = []

    def visit(holder, key, node):
        if isinstance(node, ast.Param):
            sites.append((holder, key))
            return
        if isinstance(node, list):
            for index, item in enumerate(node):
                visit(node, index, item)
            return
        if isinstance(node, tuple):
            for item in node:
                visit(None, None, item)
            return
        if isinstance(node, ast.Node):
            for field in node._fields():
                child = getattr(node, field)
                if isinstance(child, ast.Param):
                    sites.append((node, field))
                elif isinstance(child, (list, ast.Node)):
                    visit(node, field, child)
                elif isinstance(child, tuple):
                    visit(None, None, child)

    visit(None, None, root)
    return sites


class PreparedStatement(object):
    """A parsed statement awaiting parameters.

    Created by :meth:`repro.sqldb.connection.Connection.prepare`.
    """

    def __init__(self, database, statement, comments, charset,
                 session=None):
        self._database = database
        self._statement = statement
        self._comments = comments
        self._charset = charset
        #: the owning connection's session (LAST_INSERT_ID scope);
        #: ``None`` falls back to the database's default session
        self._session = session
        self.param_count = count_params(statement)
        #: server-side statement id (COM_STMT_PREPARE returns it, and
        #: the pipeline cache keys executions under it)
        self.statement_id = next(_STATEMENT_IDS)

    def execute(self, *params):
        """Bind *params* and run the statement through the normal
        pipeline (validation → SEPTIC hook → execution).

        Executions ride the pipeline cache keyed by
        ``(statement id, bound values)``: the statement was parsed once
        at prepare time, and a repeated bind of the same values reuses
        the cached entry's bound AST, validated item stack, SEPTIC memo
        and physical plan — zero re-parse, zero re-plan.  The plan must
        be keyed per value set because access paths bake bound
        constants (an ``IndexEqScan`` probes the literal it was planned
        with); the LRU keeps the per-value fan-out bounded.
        """
        if len(params) == 1 and isinstance(params[0], (list, tuple)):
            params = tuple(params[0])
        database = self._database
        cache = getattr(database, "pipeline_cache", None)
        if cache is None or not all(
                isinstance(p, _BINDABLE_TYPES) for p in params):
            # unbindable values fall through so bind_params raises the
            # proper error; cache-off degrades to bind-and-run
            bound = bind_params(self._statement, params)
            return database.run_statement(
                bound, comments=self._comments, session=self._session
            )
        # type names ride along so 1, 1.0 and True (equal as dict keys)
        # cannot collide into one another's bound statements
        key = ("stmt", self.statement_id,
               tuple((type(p).__name__, p) for p in params))
        entry = None
        try:
            entry = cache.get(self._charset, key, database.schema_version)
        except Exception:
            entry = None  # a broken cache degrades to the cold path
        if entry is None:
            from repro.sqldb.cache import CacheEntry
            from repro.sqldb.unparse import to_sql

            bound = bind_params(self._statement, params)
            try:
                sql_text = to_sql(bound)
            except TypeError:
                sql_text = "<prepared:%s>" % type(bound).__name__
            entry = CacheEntry(sql_text, [bound], list(self._comments))
            try:
                entry = cache.put(
                    self._charset, key, database.schema_version, entry
                )
            except Exception:
                pass  # cache insertion is best-effort
        return database.run_statement(
            entry.statements[0], comments=entry.comments,
            sql_text=entry.decoded, session=self._session, entry=entry,
        )


def parse_prepared(database, sql, charset, session=None):
    """Parse *sql* (single statement) for later execution."""
    from repro.sqldb import charset as charset_mod
    from repro.sqldb.parser import parse_sql

    decoded = charset_mod.decode_query(sql, charset)
    statements, comments = parse_sql(decoded)
    if len(statements) != 1:
        raise ParseError("can only prepare a single statement")
    return PreparedStatement(database, statements[0], comments, charset,
                             session=session)
