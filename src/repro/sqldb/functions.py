"""Builtin SQL function registry (scalar functions and aggregates).

Scalar functions receive already-evaluated Python values and return Python
values (``None`` is SQL NULL).  ``SLEEP`` is special-cased: it does not
block, it *records* the requested delay on the evaluation context so the
BenchLab simulator can account for it — this is how time-based blind SQLI
payloads remain observable without real sleeping.
"""

import hashlib

from repro.sqldb.errors import ExecutionError
from repro.sqldb.types import coerce_to_number, render_value

# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _as_text(value):
    if value is None:
        return None
    return render_value(value)


def _fn_concat(args):
    if any(a is None for a in args):
        return None
    return "".join(_as_text(a) for a in args)


def _fn_concat_ws(args):
    if not args or args[0] is None:
        return None
    sep = _as_text(args[0])
    return sep.join(_as_text(a) for a in args[1:] if a is not None)


def _fn_length(args):
    return None if args[0] is None else len(_as_text(args[0]).encode("utf-8"))


def _fn_char_length(args):
    return None if args[0] is None else len(_as_text(args[0]))


def _fn_upper(args):
    return None if args[0] is None else _as_text(args[0]).upper()


def _fn_lower(args):
    return None if args[0] is None else _as_text(args[0]).lower()


def _fn_substring(args):
    if args[0] is None:
        return None
    text = _as_text(args[0])
    start = int(coerce_to_number(args[1]))
    if start == 0:
        return ""
    if start < 0:
        start = len(text) + start + 1
        if start < 1:
            return ""
    begin = start - 1
    if len(args) >= 3:
        count = int(coerce_to_number(args[2]))
        if count <= 0:
            return ""
        return text[begin : begin + count]
    return text[begin:]


def _fn_trim(args):
    return None if args[0] is None else _as_text(args[0]).strip()


def _fn_ltrim(args):
    return None if args[0] is None else _as_text(args[0]).lstrip()


def _fn_rtrim(args):
    return None if args[0] is None else _as_text(args[0]).rstrip()


def _fn_replace(args):
    if any(a is None for a in args[:3]):
        return None
    return _as_text(args[0]).replace(_as_text(args[1]), _as_text(args[2]))


def _fn_ascii(args):
    if args[0] is None:
        return None
    text = _as_text(args[0])
    return ord(text[0]) if text else 0


def _fn_char(args):
    return "".join(chr(int(coerce_to_number(a))) for a in args if a is not None)


def _fn_hex(args):
    if args[0] is None:
        return None
    value = args[0]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return format(int(value), "X")
    return _as_text(value).encode("utf-8").hex().upper()


def _fn_unhex(args):
    if args[0] is None:
        return None
    try:
        return bytes.fromhex(_as_text(args[0])).decode("utf-8", "replace")
    except ValueError:
        return None


def _fn_md5(args):
    if args[0] is None:
        return None
    return hashlib.md5(_as_text(args[0]).encode("utf-8")).hexdigest()


def _fn_sha1(args):
    if args[0] is None:
        return None
    return hashlib.sha1(_as_text(args[0]).encode("utf-8")).hexdigest()


def _fn_abs(args):
    return None if args[0] is None else abs(coerce_to_number(args[0]))


def _fn_round(args):
    if args[0] is None:
        return None
    digits = int(coerce_to_number(args[1])) if len(args) > 1 else 0
    result = round(float(coerce_to_number(args[0])), digits)
    return int(result) if digits <= 0 else result


def _fn_floor(args):
    import math
    return None if args[0] is None else math.floor(coerce_to_number(args[0]))


def _fn_ceiling(args):
    import math
    return None if args[0] is None else math.ceil(coerce_to_number(args[0]))


def _fn_mod(args):
    a = coerce_to_number(args[0])
    b = coerce_to_number(args[1])
    if a is None or b is None or b == 0:
        return None
    # MySQL MOD takes the sign of the dividend (C semantics), same as
    # the % operator; Python's % takes the divisor's
    remainder = abs(a) % abs(b)
    return -remainder if a < 0 else remainder


def _fn_pow(args):
    if args[0] is None or args[1] is None:
        return None
    return float(coerce_to_number(args[0])) ** float(coerce_to_number(args[1]))


def _fn_if(args):
    from repro.sqldb.types import is_truthy
    return args[1] if is_truthy(args[0]) else args[2]


def _fn_ifnull(args):
    return args[1] if args[0] is None else args[0]


def _fn_nullif(args):
    from repro.sqldb.types import compare
    if args[0] is not None and args[1] is not None and \
            compare(args[0], args[1]) == 0:
        return None
    return args[0]


def _fn_coalesce(args):
    for value in args:
        if value is not None:
            return value
    return None


def _fn_greatest(args):
    if any(a is None for a in args):
        return None
    return max(args, key=coerce_to_number)


def _fn_least(args):
    if any(a is None for a in args):
        return None
    return min(args, key=coerce_to_number)


def _fn_left(args):
    if args[0] is None or args[1] is None:
        return None
    count = int(coerce_to_number(args[1]))
    return _as_text(args[0])[: max(count, 0)]


def _fn_right(args):
    if args[0] is None or args[1] is None:
        return None
    count = int(coerce_to_number(args[1]))
    if count <= 0:
        return ""
    return _as_text(args[0])[-count:]


def _fn_lpad(args):
    if any(a is None for a in args[:3]):
        return None
    text = _as_text(args[0])
    length = int(coerce_to_number(args[1]))
    pad = _as_text(args[2])
    if length <= len(text):
        return text[:length]
    if not pad:
        return None
    needed = length - len(text)
    return (pad * needed)[:needed] + text


def _fn_rpad(args):
    if any(a is None for a in args[:3]):
        return None
    text = _as_text(args[0])
    length = int(coerce_to_number(args[1]))
    pad = _as_text(args[2])
    if length <= len(text):
        return text[:length]
    if not pad:
        return None
    needed = length - len(text)
    return text + (pad * needed)[:needed]


def _fn_repeat(args):
    if args[0] is None or args[1] is None:
        return None
    return _as_text(args[0]) * max(int(coerce_to_number(args[1])), 0)


def _fn_reverse(args):
    return None if args[0] is None else _as_text(args[0])[::-1]


def _fn_instr(args):
    if args[0] is None or args[1] is None:
        return None
    return _as_text(args[0]).lower().find(_as_text(args[1]).lower()) + 1


def _fn_locate(args):
    # LOCATE(needle, haystack[, start]) — argument order flipped vs INSTR
    if args[0] is None or args[1] is None:
        return None
    needle = _as_text(args[0]).lower()
    haystack = _as_text(args[1]).lower()
    start = int(coerce_to_number(args[2])) - 1 if len(args) > 2 else 0
    return haystack.find(needle, max(start, 0)) + 1


def _fn_strcmp(args):
    from repro.sqldb.types import compare
    if args[0] is None or args[1] is None:
        return None
    return compare(_as_text(args[0]), _as_text(args[1]))


def _fn_space(args):
    if args[0] is None:
        return None
    return " " * max(int(coerce_to_number(args[0])), 0)


def _date_part(value, index, width):
    """Extract a numeric part of a 'YYYY-MM-DD HH:MM:SS' string."""
    if value is None:
        return None
    text = _as_text(value)
    parts = text.replace(":", "-").replace(" ", "-").split("-")
    if index >= len(parts):
        return 0
    try:
        return int(parts[index][:width])
    except ValueError:
        return 0


def _fn_year(args):
    return _date_part(args[0], 0, 4)


def _fn_month(args):
    return _date_part(args[0], 1, 2)


def _fn_day(args):
    return _date_part(args[0], 2, 2)


def _fn_hour(args):
    return _date_part(args[0], 3, 2)


def _fn_minute(args):
    return _date_part(args[0], 4, 2)


def _fn_second(args):
    return _date_part(args[0], 5, 2)


def _fn_date(args):
    if args[0] is None:
        return None
    return _as_text(args[0]).split(" ")[0]


_SIMPLE = {
    "LEFT": _fn_left,
    "RIGHT": _fn_right,
    "LPAD": _fn_lpad,
    "RPAD": _fn_rpad,
    "REPEAT": _fn_repeat,
    "REVERSE": _fn_reverse,
    "INSTR": _fn_instr,
    "LOCATE": _fn_locate,
    "POSITION": _fn_locate,
    "STRCMP": _fn_strcmp,
    "SPACE": _fn_space,
    "YEAR": _fn_year,
    "MONTH": _fn_month,
    "DAY": _fn_day,
    "DAYOFMONTH": _fn_day,
    "HOUR": _fn_hour,
    "MINUTE": _fn_minute,
    "SECOND": _fn_second,
    "DATE": _fn_date,
    "CONCAT": _fn_concat,
    "CONCAT_WS": _fn_concat_ws,
    "LENGTH": _fn_length,
    "CHAR_LENGTH": _fn_char_length,
    "CHARACTER_LENGTH": _fn_char_length,
    "UPPER": _fn_upper,
    "UCASE": _fn_upper,
    "LOWER": _fn_lower,
    "LCASE": _fn_lower,
    "SUBSTRING": _fn_substring,
    "SUBSTR": _fn_substring,
    "MID": _fn_substring,
    "TRIM": _fn_trim,
    "LTRIM": _fn_ltrim,
    "RTRIM": _fn_rtrim,
    "REPLACE": _fn_replace,
    "ASCII": _fn_ascii,
    "ORD": _fn_ascii,
    "CHAR": _fn_char,
    "HEX": _fn_hex,
    "UNHEX": _fn_unhex,
    "MD5": _fn_md5,
    "SHA1": _fn_sha1,
    "SHA": _fn_sha1,
    "ABS": _fn_abs,
    "ROUND": _fn_round,
    "FLOOR": _fn_floor,
    "CEILING": _fn_ceiling,
    "CEIL": _fn_ceiling,
    "MOD": _fn_mod,
    "POW": _fn_pow,
    "POWER": _fn_pow,
    "IF": _fn_if,
    "IFNULL": _fn_ifnull,
    "NULLIF": _fn_nullif,
    "COALESCE": _fn_coalesce,
    "GREATEST": _fn_greatest,
    "LEAST": _fn_least,
}

#: Aggregate function names (evaluated by the executor, not here).
AGGREGATES = frozenset(
    ["COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT"]
)


def is_aggregate(name):
    return name.upper() in AGGREGATES


def is_known_function(name):
    upper = name.upper()
    return (
        upper in _SIMPLE
        or upper in AGGREGATES
        or upper in ("NOW", "CURDATE", "CURRENT_DATE", "DATABASE", "VERSION",
                     "USER", "CURRENT_USER", "LAST_INSERT_ID", "SLEEP",
                     "BENCHMARK", "RAND")
    )


def call_scalar(name, args, context):
    """Invoke scalar function *name*.

    *context* is the :class:`repro.sqldb.expression.EvalContext`; the
    environment-dependent functions (NOW, DATABASE, SLEEP, RAND, ...) read
    it.  Raises :class:`ExecutionError` for unknown functions (MySQL error
    1305).
    """
    upper = name.upper()
    fn = _SIMPLE.get(upper)
    if fn is not None:
        try:
            return fn(args)
        except (IndexError, TypeError):
            raise ExecutionError(
                "Incorrect parameter count in the call to function '%s'"
                % name
            )
    if upper == "NOW":
        return context.database.now()
    if upper in ("CURDATE", "CURRENT_DATE"):
        return context.database.now().split(" ")[0]
    if upper == "DATABASE":
        return context.database.name
    if upper == "VERSION":
        return context.database.version
    if upper in ("USER", "CURRENT_USER"):
        return context.database.user
    if upper == "LAST_INSERT_ID":
        if context.session is not None:
            return context.session.last_insert_id
        return context.database.last_insert_id
    if upper == "SLEEP":
        context.record_sleep(float(coerce_to_number(args[0])))
        return 0
    if upper == "BENCHMARK":
        # Simulated: account a cost proportional to the iteration count.
        iterations = float(coerce_to_number(args[0]))
        context.record_sleep(iterations * 1e-7)
        return 0
    if upper == "RAND":
        return context.database.rand()
    raise ExecutionError("FUNCTION %s does not exist" % name, errno=1305)
