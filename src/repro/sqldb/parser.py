"""Recursive-descent parser producing :mod:`repro.sqldb.ast_nodes` trees.

Grammar coverage (MySQL dialect subset): SELECT with joins, WHERE,
GROUP BY / HAVING, ORDER BY, LIMIT, UNION [ALL], subqueries; INSERT
(multi-row and ``SET`` form); UPDATE; DELETE; CREATE TABLE; DROP TABLE;
SHOW TABLES; DESCRIBE.  Multiple statements separated by ``;`` are parsed
into a list — whether the *connection* accepts more than one is decided
later (see :class:`repro.sqldb.connection.Connection`), which is exactly
how MySQL treats piggy-backed queries.
"""

from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import ParseError
from repro.sqldb.lexer import TokenType, tokenize

_COMPARISON_OPS = frozenset(["=", "<=>", "!=", "<>", "<", ">", "<=", ">="])
_JOIN_KEYWORDS = frozenset(["JOIN", "INNER", "LEFT", "RIGHT", "CROSS"])
_TYPE_KEYWORDS = frozenset(
    ["INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT", "VARCHAR", "TEXT",
     "CHAR", "DATETIME", "DATE", "FLOAT", "DOUBLE", "DECIMAL", "BOOLEAN",
     "BOOL"]
)


def parse_sql(sql):
    """Parse *sql* (already charset-decoded) into a list of statements.

    Returns ``(statements, comments)``.
    """
    lexed = tokenize(sql)
    parser = Parser(lexed.tokens)
    statements = parser.parse_statements()
    return statements, lexed.comments


def parse_one(sql):
    """Parse exactly one statement; raise :class:`ParseError` otherwise."""
    statements, _ = parse_sql(sql)
    if len(statements) != 1:
        raise ParseError(
            "expected exactly one statement, got %d" % len(statements)
        )
    return statements[0]


class Parser(object):
    """Token-stream parser.  One instance parses one statement list."""

    def __init__(self, tokens):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------

    def _peek(self, ahead=0):
        idx = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self):
        tok = self._tokens[self._pos]
        if tok.type != TokenType.EOF:
            self._pos += 1
        return tok

    def _accept(self, type_, value=None):
        if self._peek().matches(type_, value):
            return self._advance()
        return None

    def _accept_kw(self, *words):
        tok = self._peek()
        if tok.type == TokenType.KEYWORD and tok.value in words:
            return self._advance()
        return None

    def _expect(self, type_, value=None):
        tok = self._peek()
        if not tok.matches(type_, value):
            raise ParseError(
                "expected %s %r, found %r near position %d"
                % (type_, value, tok.value, tok.pos)
            )
        return self._advance()

    def _expect_kw(self, word):
        tok = self._peek()
        if not tok.matches(TokenType.KEYWORD, word):
            raise ParseError(
                "expected %s, found %r near position %d"
                % (word, tok.value, tok.pos)
            )
        return self._advance()

    def _expect_ident(self):
        tok = self._peek()
        if tok.type == TokenType.IDENT:
            return self._advance().value
        # MySQL lets non-reserved keywords act as identifiers in a few
        # spots; we allow type keywords (e.g. a column named "date").
        if tok.type == TokenType.KEYWORD and tok.value in _TYPE_KEYWORDS:
            return self._advance().value.lower()
        raise ParseError(
            "expected identifier, found %r near position %d"
            % (tok.value, tok.pos)
        )

    # -- statements -----------------------------------------------------

    def parse_statements(self):
        statements = []
        while True:
            while self._accept(TokenType.OP, ";"):
                pass
            if self._peek().type == TokenType.EOF:
                break
            statements.append(self._parse_statement())
            tok = self._peek()
            if tok.type == TokenType.EOF:
                break
            if not tok.matches(TokenType.OP, ";"):
                raise ParseError(
                    "unexpected %r after statement at position %d"
                    % (tok.value, tok.pos)
                )
        # comment-only/empty input parses to zero statements; callers
        # decide (mysql_query reports an empty OK result, parse_one
        # rejects it)
        return statements

    def _parse_statement(self):
        tok = self._peek()
        if tok.type != TokenType.KEYWORD and not tok.matches(TokenType.OP, "("):
            raise ParseError(
                "statement must start with a keyword, found %r" % tok.value
            )
        if tok.matches(TokenType.OP, "(") or tok.value == "SELECT":
            return self._parse_select()
        if tok.value in ("INSERT", "REPLACE"):
            return self._parse_insert()
        if tok.value == "UPDATE":
            return self._parse_update()
        if tok.value == "DELETE":
            return self._parse_delete()
        if tok.value == "CREATE":
            if self._peek(1).matches(TokenType.KEYWORD, "INDEX") or \
                    self._peek(1).matches(TokenType.KEYWORD, "UNIQUE"):
                return self._parse_create_index()
            return self._parse_create_table()
        if tok.value == "DROP":
            if self._peek(1).matches(TokenType.KEYWORD, "INDEX"):
                return self._parse_drop_index()
            return self._parse_drop_table()
        if tok.value == "ALTER":
            return self._parse_alter_table()
        if tok.value == "TRUNCATE":
            self._advance()
            self._accept_kw("TABLE")
            return ast.TruncateTable(self._expect_ident())
        if tok.value in ("BEGIN", "START"):
            self._advance()
            self._accept_kw("TRANSACTION")
            return ast.Begin()
        if tok.value == "COMMIT":
            self._advance()
            return ast.Commit()
        if tok.value == "ROLLBACK":
            self._advance()
            return ast.Rollback()
        if tok.value == "EXPLAIN":
            self._advance()
            return ast.Explain(self._parse_select())
        if tok.value == "SHOW":
            self._advance()
            self._expect_kw("TABLES")
            return ast.ShowTables()
        if tok.value == "DESCRIBE":
            self._advance()
            return ast.Describe(self._expect_ident())
        raise ParseError("unsupported statement %r" % tok.value)

    # -- SELECT ----------------------------------------------------------

    def _parse_select(self, allow_union=True):
        if self._accept(TokenType.OP, "("):
            select = self._parse_select()
            self._expect(TokenType.OP, ")")
        else:
            self._expect_kw("SELECT")
            distinct = bool(self._accept_kw("DISTINCT"))
            self._accept_kw("ALL")
            fields = [self._parse_select_field()]
            while self._accept(TokenType.OP, ","):
                fields.append(self._parse_select_field())
            tables, joins = [], []
            if self._accept_kw("FROM"):
                tables, joins = self._parse_from()
            where = self._parse_expr() if self._accept_kw("WHERE") else None
            group_by, having = [], None
            if self._accept_kw("GROUP"):
                self._expect_kw("BY")
                group_by.append(self._parse_expr())
                while self._accept(TokenType.OP, ","):
                    group_by.append(self._parse_expr())
                if self._accept_kw("HAVING"):
                    having = self._parse_expr()
            order_by = self._parse_order_by()
            limit = self._parse_limit()
            select = ast.Select(
                fields,
                tables=tables,
                joins=joins,
                where=where,
                group_by=group_by,
                having=having,
                order_by=order_by,
                limit=limit,
                distinct=distinct,
            )
        if allow_union:
            while self._accept_kw("UNION"):
                all_flag = bool(self._accept_kw("ALL"))
                self._accept_kw("DISTINCT")
                rhs = self._parse_select(allow_union=False)
                select.unions.append((all_flag, rhs))
            if select.unions:
                # MySQL: a trailing ORDER BY / LIMIT applies to the whole
                # union; the last branch parsed greedily, so lift them up.
                last = select.unions[-1][1]
                if last.order_by and not select.order_by:
                    select.order_by, last.order_by = last.order_by, []
                if last.limit is not None and select.limit is None:
                    select.limit, last.limit = last.limit, None
                if self._peek().matches(TokenType.KEYWORD, "ORDER"):
                    select.order_by = self._parse_order_by()
                    select.limit = self._parse_limit()
        return select

    def _parse_select_field(self):
        if self._accept(TokenType.OP, "*"):
            return ast.SelectField(ast.Star())
        # table.* form
        tok = self._peek()
        if (
            tok.type == TokenType.IDENT
            and self._peek(1).matches(TokenType.OP, ".")
            and self._peek(2).matches(TokenType.OP, "*")
        ):
            table = self._advance().value
            self._advance()
            self._advance()
            return ast.SelectField(ast.Star(table=table))
        expr = self._parse_expr()
        alias = None
        if self._accept_kw("AS"):
            alias = self._expect_ident()
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectField(expr, alias)

    def _parse_from(self):
        tables = [self._parse_table_ref()]
        joins = []
        while True:
            if self._accept(TokenType.OP, ","):
                tables.append(self._parse_table_ref())
                continue
            kind = self._parse_join_kind()
            if kind is None:
                break
            table = self._parse_table_ref()
            on = None
            if kind != "CROSS":
                self._expect_kw("ON")
                on = self._parse_expr()
            joins.append(ast.Join(kind, table, on))
        return tables, joins

    def _parse_join_kind(self):
        tok = self._peek()
        if tok.type != TokenType.KEYWORD or tok.value not in _JOIN_KEYWORDS:
            return None
        if self._accept_kw("JOIN"):
            return "INNER"
        if self._accept_kw("INNER"):
            self._expect_kw("JOIN")
            return "INNER"
        if self._accept_kw("CROSS"):
            self._expect_kw("JOIN")
            return "CROSS"
        side = self._advance().value  # LEFT or RIGHT
        self._accept_kw("OUTER")
        self._expect_kw("JOIN")
        return side

    def _parse_table_ref(self):
        if self._accept(TokenType.OP, "("):
            select = self._parse_select()
            self._expect(TokenType.OP, ")")
            self._accept_kw("AS")
            alias = self._expect_ident()  # MySQL: derived tables need one
            return ast.DerivedTable(select, alias)
        name = self._expect_ident()
        alias = None
        if self._accept_kw("AS"):
            alias = self._expect_ident()
        elif self._peek().type == TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    def _parse_order_by(self):
        order_by = []
        if self._accept_kw("ORDER"):
            self._expect_kw("BY")
            while True:
                expr = self._parse_expr()
                direction = "ASC"
                if self._accept_kw("DESC"):
                    direction = "DESC"
                else:
                    self._accept_kw("ASC")
                order_by.append(ast.OrderItem(expr, direction))
                if not self._accept(TokenType.OP, ","):
                    break
        return order_by

    def _parse_limit(self):
        if not self._accept_kw("LIMIT"):
            return None
        first = self._parse_expr()
        if self._accept(TokenType.OP, ","):
            second = self._parse_expr()
            return ast.Limit(second, offset=first)
        if self._accept_kw("OFFSET"):
            offset = self._parse_expr()
            return ast.Limit(first, offset=offset)
        return ast.Limit(first)

    # -- INSERT / UPDATE / DELETE ----------------------------------------

    def _parse_insert(self):
        replace = bool(self._accept_kw("REPLACE"))
        if not replace:
            self._expect_kw("INSERT")
        ignore = False
        if self._peek().matches(TokenType.IDENT, "IGNORE") or \
                self._peek().matches(TokenType.KEYWORD, "IGNORE"):
            self._advance()
            ignore = True
        self._accept_kw("INTO")
        table = self._expect_ident()
        columns = []
        if self._accept(TokenType.OP, "("):
            columns.append(self._expect_ident())
            while self._accept(TokenType.OP, ","):
                columns.append(self._expect_ident())
            self._expect(TokenType.OP, ")")
        if self._accept_kw("SET"):
            # INSERT ... SET col = expr, ...
            columns, row = [], []
            while True:
                columns.append(self._expect_ident())
                self._expect(TokenType.OP, "=")
                row.append(self._parse_expr())
                if not self._accept(TokenType.OP, ","):
                    break
            on_duplicate = self._parse_on_duplicate()
            return ast.Insert(table, columns, [row], ignore=ignore,
                              replace=replace, on_duplicate=on_duplicate)
        self._expect_kw("VALUES")
        rows = []
        while True:
            self._expect(TokenType.OP, "(")
            row = [self._parse_expr()]
            while self._accept(TokenType.OP, ","):
                row.append(self._parse_expr())
            self._expect(TokenType.OP, ")")
            rows.append(row)
            if not self._accept(TokenType.OP, ","):
                break
        on_duplicate = self._parse_on_duplicate()
        return ast.Insert(table, columns, rows, ignore=ignore,
                          replace=replace, on_duplicate=on_duplicate)

    def _parse_on_duplicate(self):
        """Optional ``ON DUPLICATE KEY UPDATE col = expr, ...`` tail."""
        if not self._accept_kw("ON"):
            return []
        self._expect_kw("DUPLICATE")
        self._expect_kw("KEY")
        self._expect_kw("UPDATE")
        assignments = []
        while True:
            col = self._expect_ident()
            self._expect(TokenType.OP, "=")
            assignments.append((col, self._parse_expr()))
            if not self._accept(TokenType.OP, ","):
                break
        return assignments

    def _parse_update(self):
        self._expect_kw("UPDATE")
        table = self._expect_ident()
        self._expect_kw("SET")
        assignments = []
        while True:
            col = self._expect_ident()
            self._expect(TokenType.OP, "=")
            assignments.append((col, self._parse_expr()))
            if not self._accept(TokenType.OP, ","):
                break
        where = self._parse_expr() if self._accept_kw("WHERE") else None
        order_by = self._parse_order_by()
        limit = self._parse_limit()
        return ast.Update(table, assignments, where, order_by, limit)

    def _parse_delete(self):
        self._expect_kw("DELETE")
        self._expect_kw("FROM")
        table = self._expect_ident()
        where = self._parse_expr() if self._accept_kw("WHERE") else None
        order_by = self._parse_order_by()
        limit = self._parse_limit()
        return ast.Delete(table, where, order_by, limit)

    # -- DDL ---------------------------------------------------------------

    def _parse_create_table(self):
        self._expect_kw("CREATE")
        self._expect_kw("TABLE")
        if_not_exists = False
        if self._accept_kw("IF"):
            self._expect_kw("NOT")
            self._expect_kw("EXISTS")
            if_not_exists = True
        name = self._expect_ident()
        self._expect(TokenType.OP, "(")
        columns = [self._parse_column_def()]
        while self._accept(TokenType.OP, ","):
            if self._accept_kw("PRIMARY"):
                self._expect_kw("KEY")
                self._expect(TokenType.OP, "(")
                pk_col = self._expect_ident()
                self._expect(TokenType.OP, ")")
                for col in columns:
                    if col.name == pk_col:
                        col.primary_key = True
                        break
                else:
                    raise ParseError("PRIMARY KEY on unknown column %r" % pk_col)
                continue
            columns.append(self._parse_column_def())
        self._expect(TokenType.OP, ")")
        return ast.CreateTable(name, columns, if_not_exists)

    def _parse_column_def(self):
        name = self._expect_ident()
        tok = self._peek()
        if tok.type == TokenType.KEYWORD and tok.value in _TYPE_KEYWORDS:
            type_name = self._advance().value
        else:
            raise ParseError("expected column type, found %r" % tok.value)
        length = None
        if self._accept(TokenType.OP, "("):
            length = int(self._expect(TokenType.INT).value)
            if self._accept(TokenType.OP, ","):
                self._expect(TokenType.INT)  # DECIMAL(p, s): scale ignored
            self._expect(TokenType.OP, ")")
        col = ast.ColumnDef(name, type_name, length)
        while True:
            if self._accept_kw("NOT"):
                self._expect_kw("NULL")
                col.not_null = True
            elif self._accept_kw("NULL"):
                pass
            elif self._accept_kw("PRIMARY"):
                self._expect_kw("KEY")
                col.primary_key = True
            elif self._accept_kw("AUTO_INCREMENT"):
                col.auto_increment = True
            elif self._accept_kw("UNIQUE"):
                col.unique = True
            elif self._accept_kw("DEFAULT"):
                col.default = self._parse_primary()
            else:
                break
        return col

    def _parse_alter_table(self):
        self._expect_kw("ALTER")
        self._expect_kw("TABLE")
        table = self._expect_ident()
        if self._accept_kw("ADD"):
            self._accept_kw("COLUMN")
            return ast.AlterTableAddColumn(table, self._parse_column_def())
        if self._accept_kw("DROP"):
            self._accept_kw("COLUMN")
            return ast.AlterTableDropColumn(table, self._expect_ident())
        raise ParseError("only ADD/DROP COLUMN are supported in ALTER")

    def _parse_create_index(self):
        self._expect_kw("CREATE")
        self._accept_kw("UNIQUE")  # uniqueness is a column property here
        self._expect_kw("INDEX")
        name = self._expect_ident()
        self._expect_kw("ON")
        table = self._expect_ident()
        self._expect(TokenType.OP, "(")
        column = self._expect_ident()
        self._expect(TokenType.OP, ")")
        return ast.CreateIndex(name, table, column)

    def _parse_drop_index(self):
        self._expect_kw("DROP")
        self._expect_kw("INDEX")
        name = self._expect_ident()
        self._expect_kw("ON")
        table = self._expect_ident()
        return ast.DropIndex(name, table)

    def _parse_drop_table(self):
        self._expect_kw("DROP")
        self._expect_kw("TABLE")
        if_exists = False
        if self._accept_kw("IF"):
            self._expect_kw("EXISTS")
            if_exists = True
        return ast.DropTable(self._expect_ident(), if_exists)

    # -- expressions -------------------------------------------------------
    #
    # Precedence, lowest to highest (MySQL):
    #   OR/|| < XOR < AND/&& < NOT < comparison/IN/LIKE/BETWEEN/IS
    #   < | < & < << >> < +- < */ DIV MOD % < unary < primary

    def _parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        operands = [self._parse_xor()]
        while self._accept_kw("OR") or self._accept(TokenType.OP, "||"):
            operands.append(self._parse_xor())
        if len(operands) == 1:
            return operands[0]
        return ast.Cond("OR", operands)

    def _parse_xor(self):
        operands = [self._parse_and()]
        while self._accept_kw("XOR"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return ast.Cond("XOR", operands)

    def _parse_and(self):
        operands = [self._parse_not()]
        while self._accept_kw("AND") or self._accept(TokenType.OP, "&&"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return operands[0]
        return ast.Cond("AND", operands)

    def _parse_not(self):
        if self._accept_kw("NOT") or self._accept(TokenType.OP, "!"):
            return ast.Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_bit_or()
        while True:
            tok = self._peek()
            if tok.type == TokenType.OP and tok.value in _COMPARISON_OPS:
                op = self._advance().value
                if op == "<>":
                    op = "!="
                right = self._parse_bit_or()
                left = ast.BinaryOp(op, left, right)
                continue
            negated = False
            save = self._pos
            if self._accept_kw("NOT"):
                negated = True
            if self._accept_kw("IN"):
                left = self._parse_in_tail(left, negated)
                continue
            if self._accept_kw("LIKE"):
                left = ast.Like(left, self._parse_bit_or(), negated, "LIKE")
                continue
            if self._accept_kw("REGEXP") or self._accept_kw("RLIKE"):
                left = ast.Like(left, self._parse_bit_or(), negated, "REGEXP")
                continue
            if self._accept_kw("BETWEEN"):
                low = self._parse_bit_or()
                self._expect_kw("AND")
                high = self._parse_bit_or()
                left = ast.Between(left, low, high, negated)
                continue
            if negated:
                self._pos = save  # bare NOT belongs to _parse_not
                break
            if self._accept_kw("IS"):
                neg = bool(self._accept_kw("NOT"))
                self._expect_kw("NULL")
                left = ast.IsNull(left, neg)
                continue
            break
        return left

    def _parse_in_tail(self, left, negated):
        self._expect(TokenType.OP, "(")
        if self._peek().matches(TokenType.KEYWORD, "SELECT"):
            sub = self._parse_select()
            self._expect(TokenType.OP, ")")
            return ast.InList(left, ast.Subquery(sub), negated)
        items = [self._parse_expr()]
        while self._accept(TokenType.OP, ","):
            items.append(self._parse_expr())
        self._expect(TokenType.OP, ")")
        return ast.InList(left, items, negated)

    def _parse_bit_or(self):
        left = self._parse_bit_and()
        while self._accept(TokenType.OP, "|"):
            left = ast.BinaryOp("|", left, self._parse_bit_and())
        return left

    def _parse_bit_and(self):
        left = self._parse_shift()
        while self._accept(TokenType.OP, "&"):
            left = ast.BinaryOp("&", left, self._parse_shift())
        return left

    def _parse_shift(self):
        left = self._parse_additive()
        while True:
            if self._accept(TokenType.OP, "<<"):
                left = ast.BinaryOp("<<", left, self._parse_additive())
            elif self._accept(TokenType.OP, ">>"):
                left = ast.BinaryOp(">>", left, self._parse_additive())
            else:
                return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            if self._accept(TokenType.OP, "+"):
                left = ast.BinaryOp("+", left, self._parse_multiplicative())
            elif self._accept(TokenType.OP, "-"):
                left = ast.BinaryOp("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while True:
            if self._accept(TokenType.OP, "*"):
                left = ast.BinaryOp("*", left, self._parse_unary())
            elif self._accept(TokenType.OP, "/"):
                left = ast.BinaryOp("/", left, self._parse_unary())
            elif self._accept(TokenType.OP, "%"):
                left = ast.BinaryOp("%", left, self._parse_unary())
            elif self._accept_kw("DIV"):
                left = ast.BinaryOp("DIV", left, self._parse_unary())
            elif self._accept_kw("MOD"):
                left = ast.BinaryOp("%", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self):
        if self._accept(TokenType.OP, "-"):
            return ast.UnaryOp("-", self._parse_unary())
        if self._accept(TokenType.OP, "+"):
            return self._parse_unary()
        if self._accept(TokenType.OP, "~"):
            return ast.UnaryOp("~", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        tok = self._peek()
        if tok.type == TokenType.INT:
            self._advance()
            return ast.Literal(int(tok.value), "int")
        if tok.type == TokenType.FLOAT:
            self._advance()
            return ast.Literal(float(tok.value), "float")
        if tok.type == TokenType.STRING:
            self._advance()
            return ast.Literal(tok.value, "string")
        if tok.type == TokenType.HEX:
            self._advance()
            return ast.Literal(tok.value, "string")
        if tok.type == TokenType.PARAM:
            self._advance()
            return ast.Param()
        if tok.type == TokenType.KEYWORD:
            if tok.value == "NULL":
                self._advance()
                return ast.Literal(None, "null")
            if tok.value in ("TRUE", "FALSE"):
                self._advance()
                return ast.Literal(tok.value == "TRUE", "bool")
            if tok.value == "CASE":
                return self._parse_case()
            if tok.value == "EXISTS":
                self._advance()
                self._expect(TokenType.OP, "(")
                sub = self._parse_select()
                self._expect(TokenType.OP, ")")
                return ast.Exists(sub)
            if tok.value == "NOT":
                self._advance()
                return ast.Not(self._parse_primary())
            if tok.value == "CAST":
                return self._parse_cast()
            if tok.value == "CONVERT":
                return self._parse_convert()
            # IF(...), CHAR(...) and other keyword-named functions;
            # VALUES(col) is the ON DUPLICATE KEY UPDATE accessor
            if tok.value in ("IF", "MOD", "CHAR", "DATE", "REPLACE",
                             "LEFT", "RIGHT", "VALUES") and \
                    self._peek(1).matches(TokenType.OP, "("):
                name = self._advance().value
                return self._parse_func_call(name)
        if tok.matches(TokenType.OP, "("):
            self._advance()
            if self._peek().matches(TokenType.KEYWORD, "SELECT"):
                sub = self._parse_select()
                self._expect(TokenType.OP, ")")
                return ast.Subquery(sub)
            expr = self._parse_expr()
            self._expect(TokenType.OP, ")")
            return expr
        if tok.matches(TokenType.OP, "*"):
            self._advance()
            return ast.Star()
        if tok.type == TokenType.IDENT:
            self._advance()
            if self._peek().matches(TokenType.OP, "("):
                return self._parse_func_call(tok.value)
            if self._accept(TokenType.OP, "."):
                col = self._expect_ident()
                return ast.ColumnRef(col, table=tok.value)
            return ast.ColumnRef(tok.value)
        raise ParseError(
            "unexpected token %r at position %d" % (tok.value, tok.pos)
        )

    def _parse_func_call(self, name):
        self._expect(TokenType.OP, "(")
        if self._accept(TokenType.OP, ")"):
            return ast.FuncCall(name, [])
        distinct = bool(self._accept_kw("DISTINCT"))
        if self._accept(TokenType.OP, "*"):
            self._expect(TokenType.OP, ")")
            return ast.FuncCall(name, [ast.Star()], distinct)
        args = [self._parse_expr()]
        while self._accept(TokenType.OP, ","):
            args.append(self._parse_expr())
        self._expect(TokenType.OP, ")")
        return ast.FuncCall(name, args, distinct)

    def _parse_cast(self):
        self._expect_kw("CAST")
        self._expect(TokenType.OP, "(")
        expr = self._parse_expr()
        self._expect_kw("AS")
        type_name = self._parse_cast_type()
        self._expect(TokenType.OP, ")")
        return ast.Cast(expr, type_name)

    def _parse_convert(self):
        self._expect_kw("CONVERT")
        self._expect(TokenType.OP, "(")
        expr = self._parse_expr()
        self._expect(TokenType.OP, ",")
        type_name = self._parse_cast_type()
        self._expect(TokenType.OP, ")")
        return ast.Cast(expr, type_name)

    def _parse_cast_type(self):
        tok = self._peek()
        allowed = _TYPE_KEYWORDS | {"SIGNED", "UNSIGNED"}
        if tok.type == TokenType.KEYWORD and tok.value in allowed:
            type_name = self._advance().value
            if self._accept(TokenType.OP, "("):
                self._expect(TokenType.INT)
                self._expect(TokenType.OP, ")")
            # CAST(x AS UNSIGNED INTEGER) — swallow the optional INTEGER
            self._accept_kw("INTEGER")
            self._accept_kw("INT")
            return type_name
        raise ParseError("expected cast type, found %r" % tok.value)

    def _parse_case(self):
        self._expect_kw("CASE")
        operand = None
        if not self._peek().matches(TokenType.KEYWORD, "WHEN"):
            operand = self._parse_expr()
        whens = []
        while self._accept_kw("WHEN"):
            cond = self._parse_expr()
            self._expect_kw("THEN")
            whens.append((cond, self._parse_expr()))
        if not whens:
            raise ParseError("CASE requires at least one WHEN branch")
        default = None
        if self._accept_kw("ELSE"):
            default = self._parse_expr()
        self._expect_kw("END")
        return ast.Case(whens, operand, default)
