"""Write-ahead log: the durability layer of the mini-MySQL substrate.

Everything the in-memory engine promises to keep after a crash flows
through this module — nothing else in the package may touch the on-disk
WAL or checkpoint files (a lint gate enforces it).  The design follows
the classic redo-only WAL shape (the ``learndb`` pager is the nearest
ancestor in the related work, but page-less: this engine's unit of
durability is the *logical statement*, re-executed deterministically):

* the **log** is a single append-only file of length-prefixed records::

      record := u32 payload_length | u32 crc32(payload) | payload
      payload := JSON {lsn, op, tx, sql, clock, rand, failed}

  ``op`` is ``stmt`` for a logged statement or a ``begin`` / ``commit``
  / ``rollback`` transaction marker.  Every record carries a strictly
  increasing **LSN**.  ``clock`` and ``rand`` snapshot the engine's
  virtual clock and RNG-draw count *before* the statement ran, so
  replay of ``NOW()``/``RAND()`` is bit-identical;
* **COMMIT is the durability point**: autocommit statements and
  ``commit`` markers are fsynced (per-commit or batched, see *sync
  modes* below); anything after the last fsync may be lost in a crash
  — which is fine, because the client was never acknowledged;
* a **torn tail** (half-written record at the end of the file, the
  normal artifact of a kill) is detected by the length/CRC framing and
  silently truncated on recovery.  A CRC failure *followed by more
  valid data* cannot come from a crash — that is bit rot mid-log, and
  it raises :class:`~repro.sqldb.errors.WalCorruptionError` instead of
  being guessed around;
* a **checkpoint** is a full catalog+rows snapshot written atomically
  (tmp file + ``os.replace`` + fsync), after which the log is rotated
  (truncated); records at or below the checkpoint LSN are dead.

Hot-path contract: when no database has a WAL attached, the only cost
production code pays is ``if wal.ATTACHED:`` — one module-attribute
read and a falsy test, the same guard discipline as
:mod:`repro.faults` (and benchmarked by ``bench_fault_overhead``).
"""

import json
import os
import struct
import zlib

from repro import faults as faults_mod
from repro.core.resilience import make_lock, make_rlock
from repro.sqldb.errors import WalCorruptionError, WalError

#: number of databases with a WAL attached, process-wide.  Durability
#: hooks in the engine guard on this module attribute so that WAL-off
#: mode is the exact status quo (one attribute read, nothing else).
ATTACHED = 0

_attach_lock = make_lock()

#: record framing: little-endian u32 payload length + u32 CRC32
_HEADER = struct.Struct("<II")

#: sanity bound on one record (a length field larger than this is framing
#: damage, not a real record)
MAX_RECORD_BYTES = 16 * 1024 * 1024

#: default file names inside a data directory
LOG_NAME = "wal.log"
CHECKPOINT_NAME = "checkpoint.json"
QM_STORE_NAME = "qm_store.json"


def _note_attached(delta):
    global ATTACHED
    with _attach_lock:
        ATTACHED = max(0, ATTACHED + delta)


def log_path(data_dir):
    return os.path.join(data_dir, LOG_NAME)


def checkpoint_path(data_dir):
    return os.path.join(data_dir, CHECKPOINT_NAME)


def qm_store_path(data_dir):
    """Where the SEPTIC QM store co-persists with the data plane."""
    return os.path.join(data_dir, QM_STORE_NAME)


class WalRecord(object):
    """One decoded log record."""

    __slots__ = ("lsn", "op", "tx", "sql", "clock", "rand", "failed")

    #: record kinds
    STMT = "stmt"
    BEGIN = "begin"
    COMMIT = "commit"
    ROLLBACK = "rollback"

    def __init__(self, lsn, op, tx=0, sql=None, clock=0, rand=0,
                 failed=False):
        self.lsn = lsn
        self.op = op
        #: transaction id (0 = autocommit)
        self.tx = tx
        #: decoded statement text (``stmt`` records only)
        self.sql = sql
        #: virtual-clock ticks before the statement ran
        self.clock = clock
        #: RNG draws before the statement ran
        self.rand = rand
        #: the statement raised an ExecutionError (it may still have had
        #: partial effects — MySQL keeps the rows a multi-row INSERT
        #: managed before the failing one); replay re-runs it and
        #: expects the same error
        self.failed = failed

    def to_payload(self):
        body = {"lsn": self.lsn, "op": self.op}
        if self.tx:
            body["tx"] = self.tx
        if self.sql is not None:
            body["sql"] = self.sql
            body["clock"] = self.clock
            body["rand"] = self.rand
        if self.failed:
            body["failed"] = True
        return json.dumps(body, sort_keys=True).encode("utf-8")

    @classmethod
    def from_payload(cls, payload):
        body = json.loads(payload.decode("utf-8"))
        return cls(
            lsn=body["lsn"],
            op=body["op"],
            tx=body.get("tx", 0),
            sql=body.get("sql"),
            clock=body.get("clock", 0),
            rand=body.get("rand", 0),
            failed=body.get("failed", False),
        )

    def __repr__(self):
        if self.op == self.STMT:
            return "WalRecord(%d, stmt tx=%d, %r)" % (self.lsn, self.tx,
                                                      (self.sql or "")[:40])
        return "WalRecord(%d, %s tx=%d)" % (self.lsn, self.op, self.tx)


class ScanResult(object):
    """What :func:`scan_log` found in a log file."""

    __slots__ = ("records", "clean_offset", "torn_bytes")

    def __init__(self, records, clean_offset, torn_bytes):
        #: every intact record, in file (= LSN) order
        self.records = records
        #: byte offset where the intact prefix ends
        self.clean_offset = clean_offset
        #: bytes of torn/partial tail found after the intact prefix
        self.torn_bytes = torn_bytes


def scan_log(path):
    """Read every intact record of the log at *path*.

    Returns a :class:`ScanResult`.  A partial record at end-of-file is a
    torn tail (normal after a kill): scanning stops and reports the
    clean prefix.  A CRC-failing record with more data *after* it is
    mid-log corruption and raises :class:`WalCorruptionError` carrying
    the clean-prefix records, so callers can still act on the undamaged
    history.
    """
    if faults_mod.ACTIVE is not None:
        faults_mod.fire("wal.recover")
    if not os.path.exists(path):
        return ScanResult([], 0, 0)
    with open(path, "rb") as handle:
        data = handle.read()
    records = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _HEADER.size:
            break  # torn header
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if length > MAX_RECORD_BYTES or end > total:
            break  # torn payload (or length field of a torn header)
        payload = data[offset + _HEADER.size:end]
        damaged = (zlib.crc32(payload) & 0xFFFFFFFF) != crc
        record = None
        if not damaged:
            try:
                record = WalRecord.from_payload(payload)
            except (ValueError, KeyError, UnicodeDecodeError):
                damaged = True
        if damaged:
            if end < total:
                raise WalCorruptionError(
                    "WAL record at byte %d fails its checksum with valid "
                    "data after it (mid-log corruption, not a torn tail)"
                    % offset,
                    offset=offset,
                    clean_records=records,
                )
            break  # damaged final record == torn tail
        records.append(record)
        offset = end
    return ScanResult(records, offset, total - offset)


class LogStream(object):
    """Iterate a log's intact records in bounded memory.

    :func:`scan_log` materialises every record before returning — fine
    for recovery (which buffers open transactions anyway) but wasteful
    for audits of large logs.  Iterating a ``LogStream`` reads the file
    in *chunk_size* slices and yields records as they frame; after the
    iterator is exhausted, :attr:`clean_offset`, :attr:`torn_bytes`,
    :attr:`records_seen` and :attr:`last_lsn` describe what was found.
    Mid-log corruption raises :class:`WalCorruptionError` exactly like
    :func:`scan_log` (but with an empty ``clean_records`` — the clean
    prefix was already yielded, not retained).
    """

    def __init__(self, path, chunk_size=1 << 16):
        self.path = path
        self.chunk_size = max(chunk_size, _HEADER.size)
        self.clean_offset = 0
        self.torn_bytes = 0
        self.records_seen = 0
        self.last_lsn = 0

    def __iter__(self):
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("wal.recover")
        if not os.path.exists(self.path):
            return
        total = os.path.getsize(self.path)
        buf = b""
        with open(self.path, "rb") as handle:
            while True:
                while len(buf) < _HEADER.size:
                    chunk = handle.read(self.chunk_size)
                    if not chunk:
                        break
                    buf += chunk
                if len(buf) < _HEADER.size:
                    self.torn_bytes = total - self.clean_offset
                    return  # torn header (or clean EOF)
                length, crc = _HEADER.unpack_from(buf, 0)
                need = _HEADER.size + length
                if length > MAX_RECORD_BYTES:
                    self.torn_bytes = total - self.clean_offset
                    return  # length field of a torn header
                while len(buf) < need:
                    chunk = handle.read(self.chunk_size)
                    if not chunk:
                        break
                    buf += chunk
                if len(buf) < need:
                    self.torn_bytes = total - self.clean_offset
                    return  # torn payload
                payload = bytes(buf[_HEADER.size:need])
                damaged = (zlib.crc32(payload) & 0xFFFFFFFF) != crc
                record = None
                if not damaged:
                    try:
                        record = WalRecord.from_payload(payload)
                    except (ValueError, KeyError, UnicodeDecodeError):
                        damaged = True
                if damaged:
                    if self.clean_offset + need < total:
                        raise WalCorruptionError(
                            "WAL record at byte %d fails its checksum "
                            "with valid data after it (mid-log "
                            "corruption, not a torn tail)"
                            % self.clean_offset,
                            offset=self.clean_offset,
                            clean_records=[],
                        )
                    self.torn_bytes = total - self.clean_offset
                    return  # damaged final record == torn tail
                self.clean_offset += need
                self.records_seen += 1
                self.last_lsn = record.lsn
                buf = buf[need:]
                yield record


def scan_log_stream(path, chunk_size=1 << 16):
    """A :class:`LogStream` over the log at *path* — the streaming
    counterpart of :func:`scan_log`."""
    return LogStream(path, chunk_size=chunk_size)


class WriteAheadLog(object):
    """The append side of the log, plus checkpoint management.

    *sync_mode* selects when appends become durable:

    ``"commit"`` (default)
        fsync at every durability point (each autocommit statement and
        each COMMIT marker) — the strict, per-commit discipline;
    ``"batch"``
        fsync once every *batch_commits* durability points (and on
        checkpoint/close) — group commit, the throughput option; a
        crash may lose the tail of acknowledged-but-unsynced commits,
        which the overhead benchmark quantifies against ``"commit"``;
    ``"off"``
        never fsync (tests and benchmarks only).
    """

    def __init__(self, data_dir, sync_mode="commit", batch_commits=16,
                 start_lsn=1):
        if sync_mode not in ("commit", "batch", "off"):
            raise ValueError("unknown WAL sync mode %r" % sync_mode)
        self.data_dir = data_dir
        self.path = log_path(data_dir)
        self.sync_mode = sync_mode
        self.batch_commits = max(1, batch_commits)
        self._lock = make_rlock()
        #: next LSN to stamp
        self.next_lsn = start_lsn
        #: highest LSN known to be on stable storage (everything at or
        #: below it survives a crash); group commit keys off this
        self.synced_lsn = start_lsn - 1
        #: durability points (autocommit statements + commit markers)
        self.commits = 0
        self._commits_since_sync = 0
        #: bookkeeping counters (benchmarks and tests read these)
        self.records_appended = 0
        self.fsync_calls = 0
        self.bytes_written = 0
        # unbuffered: every append reaches the OS immediately, so an
        # in-process "kill" loses nothing to user-space buffers and the
        # fsync boundary models exactly what a real power cut loses
        self._handle = open(self.path, "ab", buffering=0)
        self.closed = False

    # -- the append path ---------------------------------------------------

    def append(self, op, tx=0, sql=None, clock=0, rand=0, failed=False,
               durability_point=False):
        """Append one record; returns its LSN.

        With *durability_point* the record is a commit point: the log is
        fsynced per the sync mode before returning, so the caller may
        acknowledge the client.
        """
        with self._lock:
            if self.closed:
                raise WalError("WAL is closed")
            if faults_mod.ACTIVE is not None:
                faults_mod.fire("wal.append")
            record = WalRecord(self.next_lsn, op, tx=tx, sql=sql,
                               clock=clock, rand=rand, failed=failed)
            payload = record.to_payload()
            blob = _HEADER.pack(len(payload),
                                zlib.crc32(payload) & 0xFFFFFFFF) + payload
            self._handle.write(blob)
            self.next_lsn += 1
            self.records_appended += 1
            self.bytes_written += len(blob)
            if durability_point:
                self.commits += 1
                self._commits_since_sync += 1
                if self.sync_mode == "commit" or (
                    self.sync_mode == "batch"
                    and self._commits_since_sync >= self.batch_commits
                ):
                    self.fsync()
            return record.lsn

    def append_record(self, record, durability_point=False):
        """Append an already-stamped :class:`WalRecord` verbatim.

        The replication apply path: a replica writes the records its
        primary shipped into its *own* log, keeping the primary's LSNs,
        so the replica's on-disk history is byte-for-byte replayable by
        the ordinary recovery path — and promotion needs no log rewrite.
        The log's LSN counter follows the record (``next_lsn`` becomes
        ``record.lsn + 1``); appending a record at or below the current
        frontier would shadow existing history and raises
        :class:`~repro.sqldb.errors.WalError` instead.
        """
        with self._lock:
            if self.closed:
                raise WalError("WAL is closed")
            if record.lsn < self.next_lsn:
                raise WalError(
                    "cannot append record LSN %d below the log frontier %d"
                    % (record.lsn, self.next_lsn)
                )
            if faults_mod.ACTIVE is not None:
                faults_mod.fire("wal.append")
            payload = record.to_payload()
            blob = _HEADER.pack(len(payload),
                                zlib.crc32(payload) & 0xFFFFFFFF) + payload
            self._handle.write(blob)
            self.next_lsn = record.lsn + 1
            self.records_appended += 1
            self.bytes_written += len(blob)
            if durability_point:
                self.commits += 1
                self._commits_since_sync += 1
                if self.sync_mode == "commit" or (
                    self.sync_mode == "batch"
                    and self._commits_since_sync >= self.batch_commits
                ):
                    self.fsync()
            return record.lsn

    def fsync(self):
        """Flush buffered appends to stable storage."""
        with self._lock:
            if self.closed:
                return
            if faults_mod.ACTIVE is not None:
                faults_mod.fire("wal.fsync")
            self._handle.flush()
            if self.sync_mode != "off":
                os.fsync(self._handle.fileno())
            self.fsync_calls += 1
            self._commits_since_sync = 0
            self.synced_lsn = self.next_lsn - 1

    def sync_to(self, lsn):
        """Group commit: make every record up to *lsn* durable.

        One fsync covers every append that happened before it, so N
        concurrent committers asking for overlapping horizons pay for a
        single flush — the caller that arrives after a winner's fsync
        already covered its LSN pays nothing at all.  Returns ``True``
        when this call actually flushed, ``False`` when the horizon was
        already durable (the coalesced case the throughput bench
        counts).
        """
        with self._lock:
            if self.closed or lsn <= self.synced_lsn:
                return False
            self.fsync()
            return True

    @property
    def last_lsn(self):
        """LSN of the most recently appended record (0 when empty)."""
        with self._lock:
            return self.next_lsn - 1

    @property
    def pending_unsynced_commits(self):
        """Durability points appended but not yet fsynced.

        Always 0 in ``commit`` mode (every durability point syncs
        inline).  In ``batch`` mode this is the group-commit backlog —
        the acknowledged commits a crash right now would lose.  Clean
        shutdown (:meth:`close`) and :meth:`write_checkpoint` both
        drain it; :meth:`abandon` discards it, which is the point of
        the crash path.
        """
        with self._lock:
            return self._commits_since_sync

    # -- checkpoints -------------------------------------------------------

    def write_checkpoint(self, state):
        """Durably write *state* as the checkpoint, then rotate the log.

        *state* must be a JSON-serializable dict; this method stamps it
        with the current LSN frontier and a CRC32 over the canonical
        body.  The sequence is crash-safe at every step:

        1. the new checkpoint lands in a tmp file and replaces the old
           one atomically (a kill mid-write leaves the old one valid);
        2. only after the replace is fsynced is the log truncated (a
           kill in between leaves stale records the replay watermark
           skips).

        Returns the checkpoint LSN.
        """
        with self._lock:
            if faults_mod.ACTIVE is not None:
                faults_mod.fire("wal.checkpoint")
            self.fsync()
            lsn = self.next_lsn - 1
            body = dict(state)
            body["lsn"] = lsn
            blob = json.dumps(body, sort_keys=True)
            document = {
                "crc": zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF,
                "body": body,
            }
            target = checkpoint_path(self.data_dir)
            tmp = target + ".tmp"
            with open(tmp, "w") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.flush()
                if self.sync_mode != "off":
                    os.fsync(handle.fileno())
            os.replace(tmp, target)
            # rotate: everything <= lsn now lives in the checkpoint
            self._handle.close()
            with open(self.path, "wb"):
                pass  # truncate
            self._handle = open(self.path, "ab", buffering=0)
            return lsn

    def close(self):
        """Flush, fsync and release the log handle (clean shutdown)."""
        with self._lock:
            if self.closed:
                return
            self.fsync()
            self._handle.close()
            self.closed = True

    def abandon(self):
        """Drop the log handle *without* syncing — the crash path.

        Used by restart simulation: whatever reached the OS stays,
        nothing else is made durable, exactly as if the process died.
        """
        with self._lock:
            if self.closed:
                return
            try:
                self._handle.close()
            except OSError:
                pass
            self.closed = True

    def stats_dict(self):
        with self._lock:
            return {
                "next_lsn": self.next_lsn,
                "synced_lsn": self.synced_lsn,
                "records_appended": self.records_appended,
                "commits": self.commits,
                "fsync_calls": self.fsync_calls,
                "bytes_written": self.bytes_written,
                "sync_mode": self.sync_mode,
            }

    def __repr__(self):
        return "WriteAheadLog(%r, next_lsn=%d, %s)" % (
            self.path, self.next_lsn, self.sync_mode
        )


def load_checkpoint(data_dir):
    """The checkpoint body for *data_dir*, or ``None`` when absent.

    A checkpoint whose CRC does not match is worse than none — the full
    catalog snapshot cannot be trusted — so it raises
    :class:`WalCorruptionError` instead of being silently skipped.
    """
    path = checkpoint_path(data_dir)
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        try:
            document = json.load(handle)
        except ValueError as exc:
            raise WalCorruptionError(
                "checkpoint file %r is not valid JSON: %s" % (path, exc)
            )
    try:
        body = document["body"]
        crc = document["crc"]
    except (KeyError, TypeError):
        raise WalCorruptionError(
            "checkpoint file %r has an unexpected layout" % path
        )
    blob = json.dumps(body, sort_keys=True)
    if (zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF) != crc:
        raise WalCorruptionError(
            "checkpoint file %r fails its checksum" % path
        )
    return body


def truncate_log(path, clean_offset):
    """Cut a torn/corrupt tail off the log (recovery's cleanup step)."""
    with open(path, "r+b") as handle:
        handle.truncate(clean_offset)
        handle.flush()
        os.fsync(handle.fileno())


# -- raw byte access (crash simulation) ---------------------------------------
#
# The crash-point sweep needs the log as bytes (to kill the engine at
# every byte boundary) and needs to plant truncated logs in victim
# directories.  It goes through these helpers because *only this module*
# may touch WAL files directly — the lint suite enforces that.

def read_log_bytes(path):
    """The raw bytes of the log at *path* (empty when absent)."""
    if not os.path.exists(path):
        return b""
    with open(path, "rb") as handle:
        return handle.read()


def write_log_bytes(path, data):
    """Write *data* verbatim as a log file (crash-simulation setup)."""
    with open(path, "wb") as handle:
        handle.write(data)


def iter_frames(data):
    """Yield ``(record, end_offset)`` for every intact frame in *data*.

    Stops at the first damaged or partial frame (callers feed it known-
    clean golden logs; use :func:`scan_log` for real recovery).
    """
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if length > MAX_RECORD_BYTES or end > total:
            return
        payload = data[offset + _HEADER.size:end]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            return
        try:
            record = WalRecord.from_payload(payload)
        except (ValueError, KeyError, UnicodeDecodeError):
            return
        yield record, end
        offset = end
