"""Expression evaluation over rows.

The evaluator walks the AST (not the item stack — the stack is SEPTIC's
read-only view).  Rows are dicts keyed by both plain column name and
``table.column``; :class:`EvalContext` carries the database handle, the
current row and bookkeeping such as simulated SLEEP time.
"""

from repro.sqldb import ast_nodes as ast
from repro.sqldb import functions
from repro.sqldb.errors import ExecutionError
from repro.sqldb.types import (
    coerce_to_number,
    compare,
    is_truthy,
    null_safe_equal,
)


class EvalContext(object):
    """Everything an expression needs to evaluate against one row."""

    def __init__(self, database, row=None, executor=None, session=None):
        self.database = database
        self.row = row or {}
        #: executor is needed to run subqueries; None forbids them.
        self.executor = executor
        #: the per-connection session (LAST_INSERT_ID, transactions);
        #: defaults to the database's own when not supplied
        if session is None and database is not None:
            session = database.default_session
        self.session = session
        #: accumulated simulated SLEEP() seconds for this statement
        self.sleep_seconds = 0.0
        #: MVCC snapshot the statement reads under (None = latest state,
        #: the DML-target behaviour); set by the executor for SELECTs
        self.read_view = None
        #: the WriteTxn mutating statements install versions under
        self.write_txn = None

    def child(self, row):
        ctx = EvalContext(self.database, row, self.executor, self.session)
        ctx._parent = self
        ctx.read_view = self.read_view
        ctx.write_txn = self.write_txn
        return ctx

    def record_sleep(self, seconds):
        self.sleep_seconds += seconds
        parent = getattr(self, "_parent", None)
        while parent is not None:
            parent.sleep_seconds += seconds
            parent = getattr(parent, "_parent", None)

    def lookup(self, name, table=None):
        key = "%s.%s" % (table.lower(), name.lower()) if table else name.lower()
        if key in self.row:
            return self.row[key]
        if table is None:
            # fall back to any qualified match
            suffix = "." + name.lower()
            matches = [k for k in self.row if k.endswith(suffix)]
            if len(matches) == 1:
                return self.row[matches[0]]
            if len(matches) > 1:
                raise ExecutionError(
                    "Column '%s' in field list is ambiguous" % name
                )
        raise ExecutionError("Unknown column '%s'" % name, errno=1054)


def evaluate(node, ctx):
    """Evaluate expression *node* in *ctx*, returning a Python value."""
    if isinstance(node, ast.Literal):
        if node.type_tag == "bool":
            return 1 if node.value else 0
        return node.value
    if isinstance(node, ast.Param):
        raise ExecutionError("unbound parameter in expression")
    if isinstance(node, ast.ColumnRef):
        return ctx.lookup(node.name, node.table)
    if isinstance(node, ast.FuncCall):
        if functions.is_aggregate(node.name):
            # Aggregates are computed by the executor; by the time a plain
            # row evaluation sees one, its value was precomputed and stored
            # in the row under a synthetic key.
            key = "__agg__%s" % _agg_key(node)
            if key in ctx.row:
                return ctx.row[key]
            raise ExecutionError(
                "Invalid use of group function '%s'" % node.name
            )
        args = [evaluate(arg, ctx) for arg in node.args]
        return functions.call_scalar(node.name, args, ctx)
    if isinstance(node, ast.UnaryOp):
        value = evaluate(node.operand, ctx)
        if value is None:
            return None
        num = coerce_to_number(value)
        if node.op == "-":
            return -num
        if node.op == "~":
            return ~int(num) & 0xFFFFFFFFFFFFFFFF
        raise ExecutionError("unknown unary operator %r" % node.op)
    if isinstance(node, ast.BinaryOp):
        return _binary(node, ctx)
    if isinstance(node, ast.Cond):
        return _cond(node, ctx)
    if isinstance(node, ast.Not):
        value = is_truthy(evaluate(node.operand, ctx))
        if value is None:
            return None
        return 0 if value else 1
    if isinstance(node, ast.InList):
        return _in_list(node, ctx)
    if isinstance(node, ast.Between):
        value = evaluate(node.expr, ctx)
        low = evaluate(node.low, ctx)
        high = evaluate(node.high, ctx)
        if value is None or low is None or high is None:
            return None
        result = compare(value, low) >= 0 and compare(value, high) <= 0
        if node.negated:
            result = not result
        return 1 if result else 0
    if isinstance(node, ast.IsNull):
        result = evaluate(node.expr, ctx) is None
        if node.negated:
            result = not result
        return 1 if result else 0
    if isinstance(node, ast.Like):
        return _like(node, ctx)
    if isinstance(node, ast.Case):
        return _case(node, ctx)
    if isinstance(node, ast.Cast):
        return _cast(node, ctx)
    if isinstance(node, ast.Subquery):
        return _scalar_subquery(node.select, ctx)
    if isinstance(node, ast.Exists):
        rows = _run_subquery(node.select, ctx)
        result = bool(rows)
        if node.negated:
            result = not result
        return 1 if result else 0
    if isinstance(node, ast.Star):
        raise ExecutionError("'*' not allowed in this context")
    raise ExecutionError("cannot evaluate %r" % type(node).__name__)


def _agg_key(node):
    """Stable textual key for an aggregate call (executor uses the same)."""
    return repr(node)


def _binary(node, ctx):
    op = node.op
    left = evaluate(node.left, ctx)
    right = evaluate(node.right, ctx)
    if op == "<=>":
        return null_safe_equal(left, right)
    if op in ("=", "!=", "<", ">", "<=", ">="):
        cmp = compare(left, right)
        if cmp is None:
            return None
        result = {
            "=": cmp == 0,
            "!=": cmp != 0,
            "<": cmp < 0,
            ">": cmp > 0,
            "<=": cmp <= 0,
            ">=": cmp >= 0,
        }[op]
        return 1 if result else 0
    if left is None or right is None:
        return None
    a = coerce_to_number(left)
    b = coerce_to_number(right)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0:
            return None  # MySQL: division by zero yields NULL
        return a / b
    if op == "DIV":
        if b == 0:
            return None
        # MySQL DIV truncates toward zero; Python's // floors toward
        # -inf, so -7 DIV 2 would come out -4 instead of MySQL's -3
        quotient = abs(a) // abs(b)
        return int(-quotient if (a < 0) != (b < 0) else quotient)
    if op == "%":
        if b == 0:
            return None  # MySQL: MOD by zero yields NULL, like division
        # MySQL MOD takes the sign of the dividend (C semantics);
        # Python's % takes the divisor's: 5 % -3 is MySQL 2, Python -1
        remainder = abs(a) % abs(b)
        return -remainder if a < 0 else remainder
    if op == "|":
        return int(a) | int(b)
    if op == "&":
        return int(a) & int(b)
    if op == "<<":
        return (int(a) << int(b)) & 0xFFFFFFFFFFFFFFFF
    if op == ">>":
        return int(a) >> int(b)
    raise ExecutionError("unknown operator %r" % op)


def _cond(node, ctx):
    if node.op == "AND":
        saw_null = False
        for operand in node.operands:
            value = is_truthy(evaluate(operand, ctx))
            if value is None:
                saw_null = True
            elif not value:
                return 0
        return None if saw_null else 1
    if node.op == "OR":
        saw_null = False
        for operand in node.operands:
            value = is_truthy(evaluate(operand, ctx))
            if value is None:
                saw_null = True
            elif value:
                return 1
        return None if saw_null else 0
    if node.op == "XOR":
        result = 0
        for operand in node.operands:
            value = is_truthy(evaluate(operand, ctx))
            if value is None:
                return None
            result ^= 1 if value else 0
        return result
    raise ExecutionError("unknown condition %r" % node.op)


def _in_list(node, ctx):
    value = evaluate(node.expr, ctx)
    if isinstance(node.items, ast.Subquery):
        rows = _run_subquery(node.items.select, ctx)
        candidates = [row[0] for row in rows]
    else:
        candidates = [evaluate(item, ctx) for item in node.items]
    if value is None:
        return None
    found = any(
        c is not None and compare(value, c) == 0 for c in candidates
    )
    if not found and any(c is None for c in candidates):
        return None
    result = not found if node.negated else found
    return 1 if result else 0


def _like(node, ctx):
    import re

    value = evaluate(node.expr, ctx)
    pattern = evaluate(node.pattern, ctx)
    if value is None or pattern is None:
        return None
    text = str(value)
    pat = str(pattern)
    if node.op == "REGEXP":
        try:
            result = re.search(pat, text, re.IGNORECASE) is not None
        except re.error:
            raise ExecutionError("Got error from regexp: %r" % pat)
    else:
        regex = _like_to_regex(pat)
        result = re.match(regex, text, re.IGNORECASE | re.DOTALL) is not None
    if node.negated:
        result = not result
    return 1 if result else 0


def _like_to_regex(pattern):
    import re

    out = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern) and pattern[i + 1] in "%_":
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return "".join(out) + r"\Z"


def _case(node, ctx):
    if node.operand is not None:
        subject = evaluate(node.operand, ctx)
        for cond, result in node.whens:
            candidate = evaluate(cond, ctx)
            if subject is not None and candidate is not None and \
                    compare(subject, candidate) == 0:
                return evaluate(result, ctx)
    else:
        for cond, result in node.whens:
            if is_truthy(evaluate(cond, ctx)):
                return evaluate(result, ctx)
    if node.default is not None:
        return evaluate(node.default, ctx)
    return None


def _cast(node, ctx):
    value = evaluate(node.expr, ctx)
    if value is None:
        return None
    type_name = node.type_name
    if type_name in ("SIGNED", "UNSIGNED", "INT", "INTEGER", "BIGINT",
                     "SMALLINT", "TINYINT"):
        number = int(coerce_to_number(value))
        if type_name == "UNSIGNED" and number < 0:
            number += 1 << 64  # MySQL's unsigned wraparound
        return number
    if type_name in ("FLOAT", "DOUBLE", "DECIMAL"):
        return float(coerce_to_number(value))
    if type_name in ("CHAR", "VARCHAR", "TEXT", "DATETIME", "DATE"):
        from repro.sqldb.types import render_value
        return render_value(value)
    raise ExecutionError("cannot CAST to %s" % type_name)


def _run_subquery(select, ctx):
    if ctx.executor is None:
        raise ExecutionError("subqueries not allowed in this context")
    return ctx.executor.run_select_rows(select, outer_ctx=ctx)


def _scalar_subquery(select, ctx):
    rows = _run_subquery(select, ctx)
    if not rows:
        return None
    if len(rows) > 1:
        raise ExecutionError("Subquery returns more than 1 row", errno=1242)
    if len(rows[0]) != 1:
        raise ExecutionError("Operand should contain 1 column(s)", errno=1241)
    return rows[0][0]
