"""Streaming operator trees — the *execute* half of the plan/execute split.

Physical plans produced by :mod:`repro.sqldb.planner` are trees of
:class:`PlanNode` operators in the classic Volcano/iterator style: every
operator exposes :meth:`PlanNode.rows`, a generator that pulls from its
children lazily.  Non-blocking operators (scans, Filter, Project,
Distinct, Limit) never materialize their input, which is what makes
``LIMIT n`` stop the upstream scan after *n* rows.  Blocking operators
(joins, Aggregate, Sort, TopK, Union, the DML sinks) buffer exactly the
rows their algorithm requires and report the high-water mark through
:attr:`StageStats.peak_materialized_rows`.

Two stream shapes flow through a tree:

* below :class:`Project`: *env rows* — dicts keyed ``"alias.col"`` plus
  ``"__source__alias"`` pointing at the stored row dict;
* at and above :class:`Project`: ``(env_row, out_tuple)`` pairs
  (:class:`Union` yields ``(None, out_tuple)``).

Every execution threads an :class:`ExecState` through the tree; its
:class:`StageStats` records per-node rows-out, open/close ticks on a
deterministic virtual clock, and the strategy counters that
:attr:`Executor.plan_stats` rolls up.  ``EXPLAIN`` is a straight
rendering of the tree (:func:`render_explain`), as are the golden-plan
snapshots (:func:`render_tree`) — there is no parallel bookkeeping.
"""

import functools
import heapq

from repro import faults as faults_mod
from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import ExecutionError
from repro.sqldb.expression import evaluate, _agg_key
from repro.sqldb.storage import ResultSet
from repro.sqldb.types import compare, is_truthy, sort_key


class ExecutionResult(object):
    """Uniform result wrapper: a result set or an affected-row count."""

    __slots__ = ("result_set", "affected_rows", "last_insert_id",
                 "sleep_seconds")

    def __init__(self, result_set=None, affected_rows=0, last_insert_id=None,
                 sleep_seconds=0.0):
        self.result_set = result_set
        self.affected_rows = affected_rows
        self.last_insert_id = last_insert_id
        #: simulated SLEEP()/BENCHMARK() seconds accumulated while executing
        self.sleep_seconds = sleep_seconds

    @property
    def is_select(self):
        return self.result_set is not None

    def __repr__(self):
        if self.is_select:
            return "ExecutionResult(%r)" % (self.result_set,)
        return "ExecutionResult(affected=%d)" % self.affected_rows


class StageStats(object):
    """Per-execution instrumentation rollup.

    Plan nodes are shared between executions (and threads) through the
    pipeline cache, so no counter lives on a node: every row event lands
    here, keyed by ``node_id``.  The clock is virtual — a tick per row
    event — which keeps stage timings deterministic."""

    __slots__ = ("nodes", "order", "ticks", "peak_materialized_rows",
                 "counters")

    def __init__(self):
        self.nodes = {}
        self.order = []
        self.ticks = 0
        #: high-water mark of rows buffered at once by blocking operators
        self.peak_materialized_rows = 0
        #: strategy counters (same keys as Executor.plan_stats)
        self.counters = {}

    def tick(self):
        self.ticks += 1
        return self.ticks

    def enter(self, node):
        """Record for *node*, created at first open (idempotent)."""
        rec = self.nodes.get(node.node_id)
        if rec is None:
            rec = {
                "label": node.label(),
                "kind": node.kind,
                "children": tuple(c.node_id for c in node.child_nodes()),
                "rows_out": 0,
                "open_tick": self.tick(),
                "close_tick": None,
            }
            self.nodes[node.node_id] = rec
            self.order.append(node.node_id)
        return rec

    def count(self, name, amount=1):
        self.counters[name] = self.counters.get(name, 0) + amount

    def note_materialized(self, count):
        if count > self.peak_materialized_rows:
            self.peak_materialized_rows = count

    def rows_in(self, node_id):
        """Rows a node consumed = sum of its children's rows-out."""
        rec = self.nodes.get(node_id)
        if rec is None:
            return 0
        return sum(self.nodes[c]["rows_out"] for c in rec["children"]
                   if c in self.nodes)

    def node_records(self):
        """Per-node records in open order, rows-in derived from the
        children's rows-out (an operator never drops rows on input)."""
        out = []
        for node_id in self.order:
            rec = dict(self.nodes[node_id])
            rec["node_id"] = node_id
            rec["rows_in"] = self.rows_in(node_id)
            out.append(rec)
        return out

    def find(self, kind):
        return [rec for rec in self.node_records() if rec["kind"] == kind]

    def render_timings(self):
        """One line per node: ``label in=N out=M t=open..close``."""
        parts = []
        for rec in self.node_records():
            close = rec["close_tick"]
            parts.append("%s in=%d out=%d t=%d..%s" % (
                rec["label"], rec["rows_in"], rec["rows_out"],
                rec["open_tick"], close if close is not None else "-",
            ))
        return "; ".join(parts)


class ExecState(object):
    """One execution of a plan: evaluation context + instrumentation."""

    __slots__ = ("ctx", "stats", "outer_row")

    def __init__(self, ctx, stats=None, outer_row=None):
        self.ctx = ctx
        self.stats = StageStats() if stats is None else stats
        self.outer_row = outer_row


class PlanNode(object):
    """Base operator.  Subclasses implement :meth:`_generate`, a
    generator (or iterable) over the node's output stream; :meth:`rows`
    wraps it with the per-execution instrumentation and the
    ``operator.next`` fault site (fired once per open, not per row —
    the disarmed-guard budget is per-open)."""

    kind = "node"
    blocking = False
    __slots__ = ("node_id", "children")

    def __init__(self, children=()):
        self.node_id = 0
        self.children = tuple(children)

    def label(self):
        return self.kind

    def child_nodes(self):
        """Children as seen by instrumentation/rendering."""
        return self.children

    def rows(self, state):
        rec = state.stats.enter(self)
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("operator.next")
        stats = state.stats
        for row in self._generate(state):
            rec["rows_out"] += 1
            stats.ticks += 1
            yield row
        rec["close_tick"] = stats.tick()

    def _generate(self, state):
        raise NotImplementedError

    def __repr__(self):
        return "<%s #%d>" % (self.label(), self.node_id)


def _env_rows(stored_rows, alias, outer_row):
    """Wrap stored rows as env rows under *alias*."""
    source_key = "__source__%s" % alias
    prefix = alias + "."
    for stored in stored_rows:
        env = {} if outer_row is None else dict(outer_row)
        for col_name, value in stored.items():
            env[prefix + col_name] = value
        env[source_key] = stored
        yield env


# -- leaf scans --------------------------------------------------------


class SeqScan(PlanNode):
    """Full-table scan.  ``counted`` marks the first-table fallback scan
    (the one ``plan_stats["full_scans"]`` has always counted); join and
    comma-list right sides scan too but were never counted."""

    kind = "seq_scan"
    __slots__ = ("table_name", "alias", "counted")

    def __init__(self, table_name, alias, counted=True):
        PlanNode.__init__(self)
        self.table_name = table_name
        self.alias = alias
        self.counted = counted

    def label(self):
        if self.alias != self.table_name:
            return "SeqScan(%s AS %s)" % (self.table_name, self.alias)
        return "SeqScan(%s)" % self.table_name

    def _generate(self, state):
        table = state.ctx.database.table(self.table_name)
        if self.counted:
            state.stats.count("full_scans")
        return _env_rows(table.iter_rows(state.ctx.read_view),
                         self.alias, state.outer_row)


class IndexEqScan(PlanNode):
    """Index bucket probe for ``col = literal``."""

    kind = "index_eq_scan"
    __slots__ = ("table_name", "alias", "column", "value")

    def __init__(self, table_name, alias, column, value):
        PlanNode.__init__(self)
        self.table_name = table_name
        self.alias = alias
        self.column = column
        self.value = value

    def label(self):
        return "IndexEqScan(%s.%s = %r)" % (self.table_name, self.column,
                                            self.value)

    def _generate(self, state):
        table = state.ctx.database.table(self.table_name)
        state.stats.count("index_eq")
        stored = table.index_lookup_iter(self.column, self.value,
                                         view=state.ctx.read_view)
        return _env_rows(stored, self.alias, state.outer_row)


class IndexRangeScan(PlanNode):
    """Bisect scan over a sorted index for an inequality/BETWEEN."""

    kind = "index_range_scan"
    __slots__ = ("table_name", "alias", "column", "low", "high",
                 "low_incl", "high_incl")

    def __init__(self, table_name, alias, column, low, high,
                 low_incl, high_incl):
        PlanNode.__init__(self)
        self.table_name = table_name
        self.alias = alias
        self.column = column
        self.low = low
        self.high = high
        self.low_incl = low_incl
        self.high_incl = high_incl

    def label(self):
        bounds = []
        if self.low is not None:
            bounds.append("%s %r" % (">=" if self.low_incl else ">",
                                     self.low))
        if self.high is not None:
            bounds.append("%s %r" % ("<=" if self.high_incl else "<",
                                     self.high))
        return "IndexRangeScan(%s.%s %s)" % (self.table_name, self.column,
                                             ", ".join(bounds))

    def _generate(self, state):
        table = state.ctx.database.table(self.table_name)
        state.stats.count("index_range")
        stored = table.index_range_iter(self.column, self.low, self.high,
                                        self.low_incl, self.high_incl,
                                        view=state.ctx.read_view)
        return _env_rows(stored, self.alias, state.outer_row)


class SingleRow(PlanNode):
    """The one-row source behind a FROM-less SELECT."""

    kind = "single_row"
    __slots__ = ()

    def label(self):
        return "SingleRow"

    def _generate(self, state):
        yield {} if state.outer_row is None else dict(state.outer_row)


class DerivedScan(PlanNode):
    """A FROM-clause subquery under its alias: runs the inner plan and
    re-keys its output tuples as env rows.  The inner tree shares the
    execution's :class:`StageStats` (its nodes show up in the same
    instrumentation rollup)."""

    kind = "derived_scan"
    __slots__ = ("alias", "display_alias", "plan")

    def __init__(self, alias, display_alias, plan):
        PlanNode.__init__(self)
        self.alias = alias
        #: raw-case alias, the way EXPLAIN has always displayed it
        self.display_alias = display_alias
        self.plan = plan

    def label(self):
        return "Derived(%s)" % self.display_alias

    def child_nodes(self):
        return (self.plan.root,)

    def _generate(self, state):
        names = [c.lower() for c in self.plan.columns]
        outer = state.outer_row
        prefix = self.alias + "."
        for _, values in self.plan.root.rows(state):
            env = {} if outer is None else dict(outer)
            for name, value in zip(names, values):
                env[prefix + name] = value
            yield env


# -- streaming operators -----------------------------------------------


class Filter(PlanNode):
    kind = "filter"
    __slots__ = ("expr", "role")

    def __init__(self, child, expr, role="where"):
        PlanNode.__init__(self, (child,))
        self.expr = expr
        self.role = role

    def label(self):
        return "Filter(%s)" % self.role

    def _generate(self, state):
        ctx = state.ctx
        expr = self.expr
        for row in self.children[0].rows(state):
            if is_truthy(evaluate(expr, ctx.child(row))):
                yield row


class Project(PlanNode):
    """Env rows in, ``(env_row, out_tuple)`` pairs out.  Specs are fixed
    at plan time: ``("col", "alias.col")`` for plain column pulls,
    ``("expr", node)`` for anything evaluated."""

    kind = "project"
    __slots__ = ("columns", "specs")

    def __init__(self, child, columns, specs):
        PlanNode.__init__(self, (child,))
        self.columns = list(columns)
        self.specs = tuple(specs)

    def label(self):
        return "Project(%s)" % ", ".join(self.columns)

    def _generate(self, state):
        ctx = state.ctx
        specs = self.specs
        for row in self.children[0].rows(state):
            out = []
            for tag, payload in specs:
                if tag == "col":
                    out.append(row.get(payload))
                else:
                    out.append(evaluate(payload, ctx.child(row)))
            yield (row, tuple(out))


class Distinct(PlanNode):
    """Streaming DISTINCT: a seen-set over case-folded output tuples."""

    kind = "distinct"
    __slots__ = ()

    def __init__(self, child):
        PlanNode.__init__(self, (child,))

    def label(self):
        return "Distinct"

    def _generate(self, state):
        seen = set()
        for src, out in self.children[0].rows(state):
            key = _fold_row(out)
            if key not in seen:
                seen.add(key)
                yield (src, out)


class Limit(PlanNode):
    """Streaming LIMIT/OFFSET: stops pulling from upstream once the
    window is emitted — the early-exit that makes ``LIMIT n`` scan
    O(n), not O(table)."""

    kind = "limit"
    __slots__ = ("count_expr", "offset_expr")

    def __init__(self, child, count_expr, offset_expr):
        PlanNode.__init__(self, (child,))
        self.count_expr = count_expr
        self.offset_expr = offset_expr

    def label(self):
        return "Limit"

    def _generate(self, state):
        ctx = state.ctx
        count = max(int(evaluate(self.count_expr, ctx)), 0)
        offset = 0
        if self.offset_expr is not None:
            offset = max(int(evaluate(self.offset_expr, ctx)), 0)
        if count == 0:
            return
        emitted = 0
        for pair in self.children[0].rows(state):
            if offset > 0:
                offset -= 1
                continue
            yield pair
            emitted += 1
            if emitted >= count:
                break


# -- blocking operators ------------------------------------------------


class NestedLoopJoin(PlanNode):
    """Nested-loop join; buffers the inner side only (the outer side
    streams).  ``counted`` distinguishes explicit JOIN clauses (counted
    in ``plan_stats``) from comma-list cross products (never were)."""

    kind = "nested_loop_join"
    blocking = True
    __slots__ = ("join_kind", "on", "right_cols", "counted")

    def __init__(self, left, right, join_kind, on, right_cols,
                 counted=True):
        PlanNode.__init__(self, (left, right))
        self.join_kind = join_kind
        self.on = on
        self.right_cols = tuple(right_cols)
        self.counted = counted

    def label(self):
        return "NestedLoopJoin(%s)" % self.join_kind

    def _generate(self, state):
        ctx = state.ctx
        kind = self.join_kind
        on = self.on
        if self.counted:
            state.stats.count("nested_loop_joins")
        if kind == "RIGHT":
            left_rows = list(self.children[0].rows(state))
            state.stats.note_materialized(len(left_rows))
            left_keys = [
                key for key in (left_rows[0] if left_rows else {})
                if not key.startswith("__source__")
            ]
            null_left = {key: None for key in left_keys}
            for b in self.children[1].rows(state):
                matched = False
                for a in left_rows:
                    merged = _merge(a, b)
                    if on is None or is_truthy(
                        evaluate(on, ctx.child(merged))
                    ):
                        matched = True
                        yield merged
                if not matched:
                    yield _merge(null_left, b)
            return
        right_rows = list(self.children[1].rows(state))
        state.stats.note_materialized(len(right_rows))
        if kind in ("INNER", "CROSS"):
            for a in self.children[0].rows(state):
                for b in right_rows:
                    merged = _merge(a, b)
                    if on is None or is_truthy(
                        evaluate(on, ctx.child(merged))
                    ):
                        yield merged
            return
        if kind == "LEFT":
            null_right = {
                "%s.%s" % (alias, col): None
                for alias, col in self.right_cols
            }
            for a in self.children[0].rows(state):
                matched = False
                for b in right_rows:
                    merged = _merge(a, b)
                    if on is None or is_truthy(
                        evaluate(on, ctx.child(merged))
                    ):
                        matched = True
                        yield merged
                if not matched:
                    yield _merge(a, null_right)
            return
        raise ExecutionError("unsupported join kind %r" % kind)


class HashJoin(PlanNode):
    """Hash equi-join, building on the smaller input.

    Matches are bucketed per *outer* row (outer = left, or right for
    RIGHT JOIN) and emitted in outer-major order, which reproduces the
    nested-loop output order exactly regardless of which side the hash
    table was built on.  The full ON expression re-checks every hash
    candidate; NULL keys never match; outer joins null-extend."""

    kind = "hash_join"
    blocking = True
    __slots__ = ("join_kind", "on", "left_key", "right_key", "right_cols",
                 "right_table")

    def __init__(self, left, right, join_kind, on, left_key, right_key,
                 right_cols, right_table):
        PlanNode.__init__(self, (left, right))
        self.join_kind = join_kind
        self.on = on
        self.left_key = left_key
        self.right_key = right_key
        self.right_cols = tuple(right_cols)
        #: base-table name of the build/probe side, for EXPLAIN
        self.right_table = right_table

    def label(self):
        return "HashJoin(%s %s = %s)" % (self.join_kind, self.left_key,
                                         self.right_key)

    def _generate(self, state):
        ctx = state.ctx
        on = self.on
        left_rows = list(self.children[0].rows(state))
        right_rows = list(self.children[1].rows(state))
        state.stats.note_materialized(len(left_rows) + len(right_rows))
        state.stats.count("hash_joins")
        outer_is_left = self.join_kind != "RIGHT"
        if outer_is_left:
            outer_rows, inner_rows = left_rows, right_rows
            outer_key, inner_key = self.left_key, self.right_key
        else:
            outer_rows, inner_rows = right_rows, left_rows
            outer_key, inner_key = self.right_key, self.left_key

        def merged_for(outer, inner):
            return _merge(outer, inner) if outer_is_left \
                else _merge(inner, outer)

        matches = [[] for _ in outer_rows]
        if len(inner_rows) <= len(outer_rows):
            # build on inner, probe outer
            buckets = {}
            for inner in inner_rows:
                value = inner.get(inner_key)
                if value is None:
                    continue
                buckets.setdefault(sort_key(value), []).append(inner)
            for pos, outer in enumerate(outer_rows):
                value = outer.get(outer_key)
                if value is None:
                    continue
                for inner in buckets.get(sort_key(value), ()):
                    merged = merged_for(outer, inner)
                    if is_truthy(evaluate(on, ctx.child(merged))):
                        matches[pos].append(merged)
        else:
            # build on outer, probe inner (inner order per bucket is
            # preserved, so the emitted order is unchanged)
            buckets = {}
            for pos, outer in enumerate(outer_rows):
                value = outer.get(outer_key)
                if value is None:
                    continue
                buckets.setdefault(sort_key(value), []).append(pos)
            for inner in inner_rows:
                value = inner.get(inner_key)
                if value is None:
                    continue
                for pos in buckets.get(sort_key(value), ()):
                    merged = merged_for(outer_rows[pos], inner)
                    if is_truthy(evaluate(on, ctx.child(merged))):
                        matches[pos].append(merged)
        if self.join_kind == "INNER":
            for bucket in matches:
                for merged in bucket:
                    yield merged
            return
        if outer_is_left:
            null_inner = {
                "%s.%s" % (alias, col): None
                for alias, col in self.right_cols
            }
            for pos, outer in enumerate(outer_rows):
                if matches[pos]:
                    for merged in matches[pos]:
                        yield merged
                else:
                    yield _merge(outer, null_inner)
        else:
            left_keys = [
                key for key in (left_rows[0] if left_rows else {})
                if not key.startswith("__source__")
            ]
            null_inner = {key: None for key in left_keys}
            for pos, outer in enumerate(outer_rows):
                if matches[pos]:
                    for merged in matches[pos]:
                        yield merged
                else:
                    yield _merge(null_inner, outer)


class Aggregate(PlanNode):
    """GROUP BY / aggregate evaluation.  Blocking by nature: every
    group needs all of its members before an aggregate has a value.
    Emits one representative env row per group (insertion order) with
    ``__agg__``-keyed aggregate results spliced in."""

    kind = "aggregate"
    blocking = True
    __slots__ = ("group_by", "aggregates")

    def __init__(self, child, group_by, aggregates):
        PlanNode.__init__(self, (child,))
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    def label(self):
        return "Aggregate(group_by=%d, aggs=%d)" % (len(self.group_by),
                                                    len(self.aggregates))

    def _generate(self, state):
        ctx = state.ctx
        rows = list(self.children[0].rows(state))
        state.stats.note_materialized(len(rows))
        groups = {}
        order = []
        if self.group_by:
            for row in rows:
                key = tuple(
                    _group_key(evaluate(expr, ctx.child(row)))
                    for expr in self.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            groups[()] = rows
            order.append(())
        for key in order:
            members = groups[key]
            rep = dict(members[0]) if members else {}
            for agg in self.aggregates:
                rep["__agg__%s" % _agg_key(agg)] = _eval_aggregate(
                    agg, members, ctx
                )
            yield rep


class Sort(PlanNode):
    """Full ORDER BY sort (no LIMIT to fuse with): materializes, then
    runs a stable multi-key sort honouring per-key direction."""

    kind = "sort"
    blocking = True
    __slots__ = ("order_by", "columns")

    def __init__(self, child, order_by, columns):
        PlanNode.__init__(self, (child,))
        self.order_by = tuple(order_by)
        self.columns = list(columns)

    def label(self):
        return "Sort(%d keys)" % len(self.order_by)

    def _generate(self, state):
        ctx = state.ctx
        state.stats.count("full_sorts")
        keys_for = _pair_key_fn(self.order_by, self.columns, ctx)
        decorated = [
            (keys_for(pair), position, pair)
            for position, pair in enumerate(self.children[0].rows(state))
        ]
        state.stats.note_materialized(len(decorated))
        for pos in range(len(self.order_by) - 1, -1, -1):
            reverse = self.order_by[pos].direction == "DESC"
            decorated.sort(key=lambda item: item[0][pos], reverse=reverse)
        for _, _, pair in decorated:
            yield pair


class TopK(PlanNode):
    """ORDER BY fused with LIMIT: streams the decorated input into
    ``heapq.nsmallest`` over the same total order :class:`Sort`
    produces (per-key direction, stable by original position), holding
    at most ``offset + count`` rows — never the full input."""

    kind = "topk"
    blocking = True
    __slots__ = ("order_by", "columns", "count_expr", "offset_expr")

    def __init__(self, child, order_by, columns, count_expr, offset_expr):
        PlanNode.__init__(self, (child,))
        self.order_by = tuple(order_by)
        self.columns = list(columns)
        self.count_expr = count_expr
        self.offset_expr = offset_expr

    def label(self):
        return "TopK(%d keys)" % len(self.order_by)

    def _generate(self, state):
        ctx = state.ctx
        count = max(int(evaluate(self.count_expr, ctx)), 0)
        offset = 0
        if self.offset_expr is not None:
            offset = max(int(evaluate(self.offset_expr, ctx)), 0)
        k = offset + count
        state.stats.count("topk_orders")
        keys_for = _pair_key_fn(self.order_by, self.columns, ctx)
        descending = [o.direction == "DESC" for o in self.order_by]

        def compare_items(a, b):
            for pos, desc in enumerate(descending):
                key_a, key_b = a[0][pos], b[0][pos]
                if key_a == key_b:
                    continue
                less = key_a < key_b
                if desc:
                    less = not less
                return -1 if less else 1
            return -1 if a[1] < b[1] else 1     # stability tiebreak

        decorated = (
            (keys_for(pair), position, pair)
            for position, pair in enumerate(self.children[0].rows(state))
        )
        top = heapq.nsmallest(k, decorated,
                              key=functools.cmp_to_key(compare_items))
        state.stats.note_materialized(len(top))
        for _, _, pair in top:
            yield pair


class Union(PlanNode):
    """UNION merge: children are the head select followed by every
    branch; ``all_flags[i]`` is the ALL flag of branch ``i``.  The
    union-level ORDER BY (position or output name only) and LIMIT apply
    to the merged rows.  Yields ``(None, out_tuple)`` pairs — no single
    env row describes a merged output row."""

    kind = "union"
    blocking = True
    __slots__ = ("all_flags", "order_by", "limit", "columns")

    def __init__(self, children, all_flags, order_by, limit, columns):
        PlanNode.__init__(self, children)
        self.all_flags = tuple(all_flags)
        self.order_by = tuple(order_by)
        self.limit = limit
        self.columns = list(columns)

    def label(self):
        return "Union(%d branches)" % (len(self.children) - 1)

    def _generate(self, state):
        ctx = state.ctx
        rows = [out for _, out in self.children[0].rows(state)]
        dedupe = False
        for branch, all_flag in zip(self.children[1:], self.all_flags):
            for _, out in branch.rows(state):
                rows.append(out)
            if not all_flag:
                dedupe = True
        state.stats.note_materialized(len(rows))
        if dedupe:
            seen = set()
            deduped = []
            for row in rows:
                key = _fold_row(row)
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        if self.order_by:
            rows = _order_union_rows(rows, self.order_by, self.columns)
        if self.limit is not None:
            count = max(int(evaluate(self.limit.count, ctx)), 0)
            offset = 0
            if self.limit.offset is not None:
                offset = max(int(evaluate(self.limit.offset, ctx)), 0)
            rows = rows[offset:offset + count]
        for out in rows:
            yield (None, out)


# -- distributed gather operators --------------------------------------
#
# Leaves and merge nodes for cross-shard plans built by
# :class:`repro.sqldb.planner.DistributedPlanner`.  These trees never
# touch local tables: :class:`ShardScan` pulls already-projected result
# tuples from a shard through the execution context (the shard router
# supplies a context whose ``shard_rows`` runs SQL text on one shard),
# so everything above speaks the ``(None, out_tuple)`` pair shape a
# :class:`Union` produces.  The merge nodes hold only what their
# algebra requires: the union gather streams, the aggregate gather
# holds one accumulator per group, and the top-k gather a bounded heap
# of ``offset + count`` rows — O(limit), never O(table).


class ShardScan(PlanNode):
    """Leaf of a distributed plan: run *sql* on shard ordinal *shard*
    and stream its result tuples as ``(None, out_tuple)`` pairs.  A
    shard error — including a SEPTIC block on that shard — propagates
    and aborts the whole gather."""

    kind = "shard_scan"
    __slots__ = ("shard", "sql")

    def __init__(self, shard, sql):
        PlanNode.__init__(self)
        self.shard = shard
        self.sql = sql

    def label(self):
        return "ShardScan(shard=%d: %s)" % (self.shard, self.sql)

    def _generate(self, state):
        for out in state.ctx.shard_rows(self.shard, self.sql):
            yield (None, tuple(out))


class GatherUnion(PlanNode):
    """Concatenate shard streams.  Hash partitions are disjoint, so a
    plain cross-shard SELECT needs no dedupe — this gather is fully
    streaming and holds no rows."""

    kind = "gather_union"
    __slots__ = ()

    def label(self):
        return "Gather(union, %d shards)" % len(self.children)

    def _generate(self, state):
        for child in self.children:
            for pair in child.rows(state):
                yield pair


def _merge_partial(op, a, b):
    """Combine two per-shard partial aggregate values (``None`` = the
    shard saw no non-NULL input, same as single-node semantics)."""
    if b is None:
        return a
    if a is None:
        return b
    if op == "sum":
        return a + b
    if op == "min":
        return a if sort_key(a) <= sort_key(b) else b
    return a if sort_key(a) >= sort_key(b) else b      # "max"


class GatherAggregate(PlanNode):
    """Partial→final aggregate merge.

    Each shard computes partial aggregates over its own rows; this node
    re-groups the partial rows by the group-by key columns
    (*key_indexes*), combines the remaining columns per *merges*
    (``"key"`` keeps the first seen value, ``"sum"``/``"min"``/``"max"``
    fold), then projects the output per *finals*: ``("col", i)`` passes
    a merged column through (COUNT and SUM finalize as SUM of partials,
    MIN/MAX as MIN/MAX), ``("avg", i, j)`` divides a merged SUM by a
    merged COUNT.  Holds one accumulator per group — O(groups), not
    O(rows)."""

    kind = "gather_aggregate"
    blocking = True
    __slots__ = ("key_indexes", "merges", "finals", "describe")

    def __init__(self, children, key_indexes, merges, finals, describe):
        PlanNode.__init__(self, children)
        self.key_indexes = tuple(key_indexes)
        self.merges = tuple(merges)
        self.finals = tuple(finals)
        self.describe = describe

    def label(self):
        return "Gather(partial-agg: %s)" % self.describe

    def _generate(self, state):
        groups = {}
        for child in self.children:
            for _, out in child.rows(state):
                key = tuple(_group_key(out[i]) for i in self.key_indexes)
                acc = groups.get(key)
                if acc is None:
                    groups[key] = list(out)
                    state.stats.note_materialized(len(groups))
                else:
                    for idx, op in enumerate(self.merges):
                        if op != "key":
                            acc[idx] = _merge_partial(op, acc[idx],
                                                      out[idx])
        for acc in groups.values():
            out = []
            for spec in self.finals:
                if spec[0] == "avg":
                    total, count = acc[spec[1]], acc[spec[2]]
                    out.append(None if not count or total is None
                               else total / float(count))
                else:
                    out.append(acc[spec[1]])
            yield (None, tuple(out))


class GatherTopK(PlanNode):
    """Merge per-shard top-k streams under the global ORDER BY.

    Every shard already returns at most ``offset + count`` rows (the
    planner pushes the fused limit down), and this node keeps a bounded
    heap of the same size — the cross-shard peak stays O(limit) however
    large the table is.  Order keys are output-column positions
    (*key_indexes*) compared through :func:`sort_key` with per-key
    direction; arrival order breaks ties, matching the single-node
    :class:`TopK` stability contract."""

    kind = "gather_topk"
    blocking = True
    __slots__ = ("key_indexes", "descending", "count", "offset")

    def __init__(self, children, key_indexes, descending, count, offset=0):
        PlanNode.__init__(self, children)
        self.key_indexes = tuple(key_indexes)
        self.descending = tuple(descending)
        self.count = count
        self.offset = offset

    def label(self):
        return "Gather(merge-topk, k=%d)" % (self.count + self.offset)

    def _rank(self, a, b):
        """-1 when *a* outranks *b* in the final output order."""
        for pos, desc in enumerate(self.descending):
            key_a, key_b = a[0][pos], b[0][pos]
            if key_a == key_b:
                continue
            less = key_a < key_b
            if desc:
                less = not less
            return -1 if less else 1
        return -1 if a[1] < b[1] else 1             # stability tiebreak

    def _generate(self, state):
        k = self.count + self.offset
        if k <= 0:
            return
        # min-heap keyed "worst ranks first": the root is always the
        # worst of the k best seen, so pushpop evicts correctly
        worst_first = functools.cmp_to_key(
            lambda a, b: -self._rank(a, b)
        )
        heap = []
        sequence = 0
        for child in self.children:
            for _, out in child.rows(state):
                keys = [sort_key(out[i]) for i in self.key_indexes]
                item = worst_first((keys, sequence, out))
                sequence += 1
                if len(heap) < k:
                    heapq.heappush(heap, item)
                    state.stats.note_materialized(len(heap))
                else:
                    heapq.heappushpop(heap, item)
        ordered = sorted(heap)      # worst → best under worst_first
        ordered.reverse()
        for item in ordered[self.offset:]:
            yield (None, item.obj[2])


# -- DML sinks ---------------------------------------------------------


class InsertSink(PlanNode):
    """INSERT/REPLACE execution.  A sink: :meth:`run` returns an
    :class:`ExecutionResult` instead of a row stream.  Its fault site
    fires before any mutation so an injected crash never leaves a row
    half-applied ahead of the WAL record."""

    kind = "insert_sink"
    blocking = True
    __slots__ = ("stmt",)

    def __init__(self, stmt):
        PlanNode.__init__(self)
        self.stmt = stmt

    def label(self):
        return "InsertSink(%s)" % self.stmt.table.lower()

    def run(self, state):
        rec = state.stats.enter(self)
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("operator.next")
        ctx = state.ctx
        stmt = self.stmt
        txn = ctx.write_txn
        table = ctx.database.table(stmt.table)
        columns = stmt.columns or table.column_names()
        # Evaluate every VALUES row up front so a bad expression — or a
        # first-writer-wins conflict on the rows REPLACE / ON DUPLICATE
        # KEY UPDATE would mutate — surfaces before any row is touched.
        pending = []
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise ExecutionError(
                    "Column count doesn't match value count", errno=1136
                )
            values = {}
            for col, expr in zip(columns, row_exprs):
                values[col.lower()] = evaluate(expr, ctx)
            pending.append(values)
        if stmt.replace or stmt.on_duplicate:
            for values in pending:
                for conflict in _unique_conflicts(table, values):
                    table.check_write(conflict, txn)
        inserted = 0
        last_id = None
        for values in pending:
            if stmt.replace:
                # REPLACE INTO: delete any row conflicting on a unique
                # key, then insert (affected = deleted + inserted)
                inserted += _delete_conflicting(table, values, txn)
            try:
                auto = table.insert(values, txn=txn)
            except ExecutionError as exc:
                if exc.errno == 1062 and stmt.on_duplicate:
                    inserted += _apply_on_duplicate(
                        table, stmt.on_duplicate, values, ctx, txn
                    )
                    continue
                if stmt.ignore:
                    continue
                raise
            if auto is not None:
                last_id = auto
            inserted += 1
        if last_id is not None:
            ctx.session.last_insert_id = last_id
        rec["rows_out"] = inserted
        rec["close_tick"] = state.stats.tick()
        return ExecutionResult(
            affected_rows=inserted,
            last_insert_id=last_id,
            sleep_seconds=ctx.sleep_seconds,
        )


class UpdateSink(PlanNode):
    """UPDATE execution over an env-row child (scan + filter).  Targets
    are fully materialized before the first mutation: the scan must not
    observe its own writes, and injected faults in the child stream
    must fire pre-mutation."""

    kind = "update_sink"
    blocking = True
    __slots__ = ("stmt", "alias")

    def __init__(self, child, stmt, alias):
        PlanNode.__init__(self, (child,))
        self.stmt = stmt
        self.alias = alias

    def label(self):
        return "UpdateSink(%s)" % self.alias

    def run(self, state):
        rec = state.stats.enter(self)
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("operator.next")
        ctx = state.ctx
        stmt = self.stmt
        table = ctx.database.table(stmt.table)
        source_key = "__source__%s" % self.alias
        targets = [
            (row[source_key], row)
            for row in self.children[0].rows(state)
        ]
        state.stats.note_materialized(len(targets))
        targets = _order_dml_targets(stmt.order_by, targets, ctx)
        if stmt.limit is not None:
            count = int(evaluate(stmt.limit.count, ctx))
            targets = targets[: max(count, 0)]
        txn = ctx.write_txn
        # First-writer-wins pass over every target before the first
        # mutation: a conflict aborts the statement with zero rows
        # changed, so the transient-retry path never double-applies.
        for stored, _ in targets:
            table.check_write(stored, txn)
        changed = 0
        for stored, env in targets:
            updates = {}
            for col, expr in stmt.assignments:
                if not table.has_column(col):
                    raise ExecutionError(
                        "Unknown column '%s' in 'field list'" % col,
                        errno=1054,
                    )
                updates[col.lower()] = table.convert(
                    col, evaluate(expr, ctx.child(env))
                )
            delta = {k: v for k, v in updates.items()
                     if stored.get(k) != v}
            if delta:
                table.update_row(stored, delta, txn=txn)
                changed += 1
        rec["rows_out"] = changed
        rec["close_tick"] = state.stats.tick()
        return ExecutionResult(
            affected_rows=changed, sleep_seconds=ctx.sleep_seconds
        )


class DeleteSink(PlanNode):
    """DELETE execution over an env-row child; same materialize-then-
    mutate discipline as :class:`UpdateSink`."""

    kind = "delete_sink"
    blocking = True
    __slots__ = ("stmt", "alias")

    def __init__(self, child, stmt, alias):
        PlanNode.__init__(self, (child,))
        self.stmt = stmt
        self.alias = alias

    def label(self):
        return "DeleteSink(%s)" % self.alias

    def run(self, state):
        rec = state.stats.enter(self)
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("operator.next")
        ctx = state.ctx
        stmt = self.stmt
        table = ctx.database.table(stmt.table)
        source_key = "__source__%s" % self.alias
        targets = [
            (row[source_key], row)
            for row in self.children[0].rows(state)
        ]
        state.stats.note_materialized(len(targets))
        targets = _order_dml_targets(stmt.order_by, targets, ctx)
        if stmt.limit is not None:
            count = int(evaluate(stmt.limit.count, ctx))
            targets = targets[: max(count, 0)]
        doomed = [stored for stored, _ in targets]
        if doomed:
            # delete_rows runs the first-writer-wins check over every
            # target before removing any, so a conflict leaves the
            # table untouched.
            table.delete_rows(doomed, txn=ctx.write_txn)
        rec["rows_out"] = len(doomed)
        rec["close_tick"] = state.stats.tick()
        return ExecutionResult(
            affected_rows=len(doomed), sleep_seconds=ctx.sleep_seconds
        )


# -- the physical plan -------------------------------------------------


class PhysicalPlan(object):
    """A planned statement: the operator tree plus what the executor
    needs around it (output columns for SELECT, every base table the
    tree touches for lock planning)."""

    __slots__ = ("kind", "root", "columns", "tables", "lock_plan")

    def __init__(self, kind, root, columns=None, tables=()):
        self.kind = kind
        self.root = root
        self.columns = list(columns) if columns is not None else None
        self.tables = frozenset(tables)
        #: memoized LockPlan (filled by the engine on first execution;
        #: deterministic per plan, so sharing across sessions is safe)
        self.lock_plan = None

    def __repr__(self):
        return "PhysicalPlan(%s, %r)" % (self.kind, self.root)


def render_tree(plan):
    """Indented operator-tree snapshot (the golden-plan format)."""
    lines = []

    def walk(node, depth):
        lines.append("  " * depth + node.label())
        for child in node.child_nodes():
            walk(child, depth + 1)

    walk(plan.root, 0)
    return "\n".join(lines)


#: operators EXPLAIN looks through — they add no access-path information
_EXPLAIN_TRANSPARENT = None     # filled after class definitions


def render_explain(plan, database):
    """EXPLAIN output rendered from the physical tree: one row per
    table source with the access type (``ref``/``range`` via an index,
    ``hash`` for a hash join, ``ALL`` for a scan, ``DERIVED`` for a
    FROM-subquery — whose own sources follow) and the key column used.
    Row estimates are the *live* table sizes at render time."""
    rows = []
    _explain_node(plan.root, database, rows)
    return ResultSet(["table", "type", "key", "rows"], rows)


def _explain_node(node, database, rows):
    if isinstance(node, _EXPLAIN_TRANSPARENT):
        _explain_node(node.children[0], database, rows)
        return
    if isinstance(node, Union):
        for child in node.children:
            _explain_node(child, database, rows)
        return
    if isinstance(node, SingleRow):
        return
    if isinstance(node, DerivedScan):
        rows.append((node.display_alias, "DERIVED", None, None))
        _explain_node(node.plan.root, database, rows)
        return
    if isinstance(node, SeqScan):
        table = database.table(node.table_name)
        rows.append((table.name, "ALL", None, len(table)))
        return
    if isinstance(node, IndexEqScan):
        table = database.table(node.table_name)
        rows.append((table.name, "ref", node.column, len(table)))
        return
    if isinstance(node, IndexRangeScan):
        table = database.table(node.table_name)
        rows.append((table.name, "range", node.column, len(table)))
        return
    if isinstance(node, HashJoin):
        _explain_node(node.children[0], database, rows)
        table = database.table(node.right_table)
        rows.append((table.name, "hash",
                     node.right_key.split(".", 1)[1], len(table)))
        return
    if isinstance(node, NestedLoopJoin):
        _explain_node(node.children[0], database, rows)
        _explain_node(node.children[1], database, rows)
        return
    raise ExecutionError("cannot explain %r" % type(node).__name__)


_EXPLAIN_TRANSPARENT = (Limit, TopK, Sort, Distinct, Project, Aggregate,
                        Filter)


# -- shared evaluation helpers -----------------------------------------


def _merge(a, b):
    return {**a, **b}


def _fold_row(out):
    """Case-folded dedupe key for DISTINCT / UNION."""
    return tuple(v.lower() if isinstance(v, str) else v for v in out)


def _group_key(value):
    if isinstance(value, str):
        return ("s", value.lower())
    if value is None:
        return ("n", None)
    return ("v", float(value))


def _pair_key_fn(order_by, columns, ctx):
    """ORDER BY key extractor over ``(env_row, out_tuple)`` pairs:
    positional refs and unqualified output-name refs read the output
    tuple, anything else evaluates against the env row."""
    lowered = [c.lower() for c in columns]

    def keys_for(pair):
        src, out = pair
        key = []
        for order in order_by:
            expr = order.expr
            if isinstance(expr, ast.Literal) and expr.type_tag == "int":
                idx = expr.value - 1
                if idx < 0 or idx >= len(out):
                    raise ExecutionError(
                        "Unknown column '%d' in 'order clause'"
                        % expr.value
                    )
                value = out[idx]
            elif (
                isinstance(expr, ast.ColumnRef)
                and expr.table is None
                and expr.name.lower() in lowered
            ):
                value = out[lowered.index(expr.name.lower())]
            else:
                value = evaluate(expr, ctx.child(src))
            key.append(sort_key(value))
        return key

    return keys_for


def _order_union_rows(rows, order_by, columns):
    """Union-level ORDER BY: by position or output column name."""
    lowered = [c.lower() for c in columns]

    def key_index(expr):
        if isinstance(expr, ast.Literal) and expr.type_tag == "int":
            idx = expr.value - 1
            if idx < 0 or idx >= len(columns):
                raise ExecutionError(
                    "Unknown column '%s' in 'order clause'" % expr.value
                )
            return idx
        if isinstance(expr, ast.ColumnRef) and expr.table is None and \
                expr.name.lower() in lowered:
            return lowered.index(expr.name.lower())
        raise ExecutionError(
            "ORDER BY on a UNION must name an output column"
        )

    indexed = [(key_index(o.expr), o.direction == "DESC")
               for o in order_by]
    rows = list(rows)
    for idx, reverse in reversed(indexed):
        rows.sort(key=lambda row: sort_key(row[idx]), reverse=reverse)
    return rows


def _eval_aggregate(node, rows, ctx):
    name = node.name.upper()
    if name == "COUNT" and node.args and isinstance(node.args[0], ast.Star):
        return len(rows)
    values = []
    for row in rows:
        value = evaluate(node.args[0], ctx.child(row))
        if value is not None:
            values.append(value)
    if node.distinct:
        unique = []
        for value in values:
            if all(compare(value, v) != 0 for v in unique):
                unique.append(value)
        values = unique
    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        from repro.sqldb.types import coerce_to_number
        return sum(coerce_to_number(v) for v in values)
    if name == "AVG":
        from repro.sqldb.types import coerce_to_number
        nums = [coerce_to_number(v) for v in values]
        return sum(nums) / float(len(nums))
    if name == "MIN":
        return min(values, key=sort_key)
    if name == "MAX":
        return max(values, key=sort_key)
    if name == "GROUP_CONCAT":
        from repro.sqldb.types import render_value
        return ",".join(render_value(v) for v in values)
    raise ExecutionError("unknown aggregate %r" % name)


def _order_dml_targets(order_by, targets, ctx):
    """ORDER BY for UPDATE/DELETE target selection (matters with
    LIMIT: MySQL deletes/updates the first N *in order*)."""
    if not order_by:
        return targets
    decorated = list(targets)
    for item in reversed(order_by):
        reverse = item.direction == "DESC"
        decorated.sort(
            key=lambda pair: sort_key(
                evaluate(item.expr, ctx.child(pair[1]))
            ),
            reverse=reverse,
        )
    return decorated


def _unique_conflicts(table, values):
    """Live rows that collide with *values* on any unique key — the
    table owns the scan so each storage backend (row list vs B-tree)
    answers from its own structures."""
    return table.unique_conflicts(values)


def _delete_conflicting(table, values, txn=None):
    conflicts = _unique_conflicts(table, values)
    if conflicts:
        table.delete_rows(conflicts, txn=txn)
    return len(conflicts)


def _apply_on_duplicate(table, assignments, new_values, ctx, txn=None):
    """ON DUPLICATE KEY UPDATE: update the conflicting row.

    ``VALUES(col)`` inside an assignment refers to the value the
    failed insert attempted for *col* (MySQL semantics).
    """
    conflicts = _unique_conflicts(table, new_values)
    if not conflicts:
        return 0
    target = conflicts[0]
    env = {"%s.%s" % (table.name, k): v for k, v in target.items()}
    updates = {}
    for col, expr in assignments:
        resolved = _resolve_values_refs(expr, new_values)
        value = table.convert(col, evaluate(resolved, ctx.child(env)))
        if target.get(col.lower()) != value:
            updates[col.lower()] = value
    if updates:
        table.update_row(target, updates, txn=txn)
    # MySQL reports 2 affected rows when an ODKU update changed one
    return 2 if updates else 0


def _resolve_values_refs(expr, new_values):
    """Replace ``VALUES(col)`` calls with the attempted insert value."""
    if isinstance(expr, ast.FuncCall) and expr.name == "VALUES" and \
            len(expr.args) == 1 and isinstance(expr.args[0], ast.ColumnRef):
        value = new_values.get(expr.args[0].name.lower())
        from repro.sqldb.prepared import literal_for
        return literal_for(value)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _resolve_values_refs(expr.left, new_values),
            _resolve_values_refs(expr.right, new_values),
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            [_resolve_values_refs(a, new_values) for a in expr.args],
            expr.distinct,
        )
    return expr
