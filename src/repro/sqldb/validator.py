"""Semantic validation and item-stack construction.

``validate(statement, catalog)`` checks table and column references against
the catalog (raising :class:`repro.sqldb.errors.ValidationError` on unknown
names, like MySQL's error 1054) and flattens the statement into the item
stack described in :mod:`repro.sqldb.items`.

Stack layout (bottom → top), matching the paper's Figure 2:

* SELECT:  ``FROM_TABLE`` per table, ``JOIN_ITEM`` + join table + ON
  condition per join, select fields, WHERE condition in postfix order,
  GROUP/HAVING/ORDER/LIMIT markers, UNION branches.
* Expressions are emitted in **postorder** (operands before operator), so
  ``reservID = 'ID34FG' AND creditCard = 1234`` becomes::

      FIELD_ITEM reservID / STRING_ITEM ID34FG / FUNC_ITEM = /
      FIELD_ITEM creditCard / INT_ITEM 1234 / FUNC_ITEM = / COND_ITEM AND
"""

from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import ValidationError
from repro.sqldb.items import Item, ItemKind


def validate(statement, catalog=None):
    """Validate *statement* and return its item stack (a list, bottom→top).

    *catalog* is a mapping ``table_name -> Table`` (or ``None`` to skip
    name resolution — used by unit tests that only care about the stack
    shape).
    """
    builder = _StackBuilder(catalog)
    return builder.build(statement)


class _StackBuilder(object):
    def __init__(self, catalog):
        self._catalog = catalog
        self._stack = []
        #: tables in scope, innermost query last; each entry is a dict
        #: alias -> table_name
        self._scopes = []
        #: select-list aliases in scope (ORDER BY / HAVING may name them)
        self._alias_scopes = []

    # -- public ----------------------------------------------------------

    def build(self, statement):
        self._dispatch_statement(statement)
        return self._stack

    # -- helpers -----------------------------------------------------------

    def _push(self, kind, value):
        self._stack.append(Item(kind, value))

    def _check_table(self, name):
        if self._catalog is not None and name.lower() not in self._catalog:
            raise ValidationError("Table '%s' doesn't exist" % name)
        return name.lower()

    def _check_column(self, name, table=None):
        """Resolve a column against the tables in scope."""
        if self._catalog is None or not self._scopes:
            return name.lower()
        scope = self._scopes[-1]
        lname = name.lower()
        if table is None and self._alias_scopes and \
                lname in self._alias_scopes[-1]:
            return lname
        if table is not None:
            tkey = table.lower()
            found = None
            for candidate in [scope] + list(reversed(self._scopes[:-1])):
                if tkey in candidate:
                    found = candidate
                    break
            if found is None:
                raise ValidationError("Unknown table '%s'" % table)
            real = found[tkey]
            if real is None:  # derived table: columns unchecked
                return lname
            if not self._catalog[real].has_column(lname):
                raise ValidationError(
                    "Unknown column '%s.%s' in 'field list'" % (table, name)
                )
            return lname
        for real in scope.values():
            if real is None or self._catalog[real].has_column(lname):
                return lname
        # allow resolution against any outer scope (correlated subqueries)
        for outer in reversed(self._scopes[:-1]):
            for real in outer.values():
                if real is None or self._catalog[real].has_column(lname):
                    return lname
        raise ValidationError("Unknown column '%s' in 'field list'" % name)

    # -- statements ----------------------------------------------------------

    def _dispatch_statement(self, stmt):
        if isinstance(stmt, ast.Select):
            self._build_select(stmt)
        elif isinstance(stmt, ast.Insert):
            self._build_insert(stmt)
        elif isinstance(stmt, ast.Update):
            self._build_update(stmt)
        elif isinstance(stmt, ast.Delete):
            self._build_delete(stmt)
        elif isinstance(stmt, ast.Explain):
            # EXPLAIN validates (and models) like the underlying SELECT
            self._build_select(stmt.select)
        elif isinstance(stmt, (ast.CreateTable, ast.DropTable,
                               ast.ShowTables, ast.Describe, ast.Begin,
                               ast.Commit, ast.Rollback, ast.CreateIndex,
                               ast.DropIndex, ast.AlterTableAddColumn,
                               ast.AlterTableDropColumn,
                               ast.TruncateTable)):
            # DDL/metadata statements have no user-data nodes; SEPTIC does
            # not model them, but the engine still validates them.
            pass
        else:
            raise ValidationError(
                "cannot validate statement %r" % type(stmt).__name__
            )

    def _open_scope(self, tables, joins):
        scope = {}
        for ref in tables:
            self._scope_add(scope, ref)
        for join in joins:
            self._scope_add(scope, join.table)
        self._scopes.append(scope)

    def _scope_add(self, scope, ref):
        if isinstance(ref, ast.DerivedTable):
            # a derived table's columns come from its select list; we
            # mark the alias as an unchecked scope entry (None)
            scope[ref.alias.lower()] = None
        else:
            scope[(ref.alias or ref.name).lower()] = \
                self._check_table(ref.name)

    def _build_select(self, stmt):
        self._open_scope(stmt.tables, stmt.joins)
        self._alias_scopes.append(
            {f.alias.lower() for f in stmt.fields if f.alias}
        )
        try:
            for ref in stmt.tables:
                self._push_table_source(ref)
            for join in stmt.joins:
                self._push(ItemKind.JOIN_ITEM, join.kind)
                self._push_table_source(join.table)
                if join.on is not None:
                    self._expr(join.on)
            for field in stmt.fields:
                if isinstance(field.expr, ast.Star):
                    self._push(ItemKind.SELECT_FIELD, "*")
                else:
                    self._expr(field.expr)
            if stmt.where is not None:
                self._expr(stmt.where)
            for expr in stmt.group_by:
                self._push(ItemKind.GROUP_ITEM, "GROUP")
                self._expr(expr)
            if stmt.having is not None:
                self._push(ItemKind.HAVING_ITEM, "HAVING")
                self._expr(stmt.having)
            for order in stmt.order_by:
                self._push(ItemKind.ORDER_ITEM, order.direction)
                self._expr(order.expr)
            if stmt.limit is not None:
                self._push(ItemKind.LIMIT_ITEM, "LIMIT")
                self._expr(stmt.limit.count)
                if stmt.limit.offset is not None:
                    self._expr(stmt.limit.offset)
        finally:
            self._scopes.pop()
            self._alias_scopes.pop()
        for all_flag, branch in stmt.unions:
            self._push(ItemKind.UNION_ITEM, "ALL" if all_flag else "DISTINCT")
            self._build_select(branch)

    def _push_table_source(self, ref):
        if isinstance(ref, ast.DerivedTable):
            self._push(ItemKind.SUBSELECT_ITEM, "BEGIN")
            self._build_select(ref.select)
            self._push(ItemKind.SUBSELECT_ITEM, "END")
            self._push(ItemKind.FROM_TABLE, ref.alias.lower())
        else:
            self._push(ItemKind.FROM_TABLE, ref.name.lower())

    def _build_insert(self, stmt):
        table = self._check_table(stmt.table)
        kind = ItemKind.REPLACE_TABLE if stmt.replace \
            else ItemKind.INSERT_TABLE
        self._push(kind, table)
        self._scopes.append({table: table})
        try:
            columns = stmt.columns
            if not columns and self._catalog is not None:
                columns = self._catalog[table].column_names()
            for col in columns:
                self._push(
                    ItemKind.INSERT_FIELD, self._check_column(col, table)
                )
            for row in stmt.rows:
                if columns and len(row) != len(columns):
                    raise ValidationError(
                        "Column count doesn't match value count"
                    )
                self._push(ItemKind.ROW_ITEM, "ROW")
                for expr in row:
                    self._expr(expr)
            for col, expr in stmt.on_duplicate:
                self._push(
                    ItemKind.UPDATE_FIELD, self._check_column(col, table)
                )
                self._expr(expr)
        finally:
            self._scopes.pop()

    def _build_update(self, stmt):
        table = self._check_table(stmt.table)
        self._push(ItemKind.UPDATE_TABLE, table)
        self._scopes.append({table: table})
        try:
            for col, expr in stmt.assignments:
                self._push(
                    ItemKind.UPDATE_FIELD, self._check_column(col, table)
                )
                self._expr(expr)
            if stmt.where is not None:
                self._expr(stmt.where)
            for order in stmt.order_by:
                self._push(ItemKind.ORDER_ITEM, order.direction)
                self._expr(order.expr)
            if stmt.limit is not None:
                self._push(ItemKind.LIMIT_ITEM, "LIMIT")
                self._expr(stmt.limit.count)
        finally:
            self._scopes.pop()

    def _build_delete(self, stmt):
        table = self._check_table(stmt.table)
        self._push(ItemKind.DELETE_TABLE, table)
        self._scopes.append({table: table})
        try:
            if stmt.where is not None:
                self._expr(stmt.where)
            for order in stmt.order_by:
                self._push(ItemKind.ORDER_ITEM, order.direction)
                self._expr(order.expr)
            if stmt.limit is not None:
                self._push(ItemKind.LIMIT_ITEM, "LIMIT")
                self._expr(stmt.limit.count)
        finally:
            self._scopes.pop()

    # -- expressions (postorder) ----------------------------------------------

    def _expr(self, node):
        if isinstance(node, ast.Literal):
            self._literal(node)
        elif isinstance(node, ast.Param):
            self._push(ItemKind.PARAM_ITEM, "?")
        elif isinstance(node, ast.ColumnRef):
            self._push(
                ItemKind.FIELD_ITEM, self._check_column(node.name, node.table)
            )
        elif isinstance(node, ast.Star):
            self._push(ItemKind.SELECT_FIELD, "*")
        elif isinstance(node, ast.FuncCall):
            for arg in node.args:
                self._expr(arg)
            self._push(ItemKind.FUNC_ITEM, node.name)
        elif isinstance(node, ast.UnaryOp):
            self._expr(node.operand)
            self._push(ItemKind.FUNC_ITEM, node.op)
        elif isinstance(node, ast.BinaryOp):
            self._expr(node.left)
            self._expr(node.right)
            self._push(ItemKind.FUNC_ITEM, node.op)
        elif isinstance(node, ast.Cond):
            for operand in node.operands:
                self._expr(operand)
            self._push(ItemKind.COND_ITEM, node.op)
        elif isinstance(node, ast.Not):
            self._expr(node.operand)
            self._push(ItemKind.FUNC_ITEM, "NOT")
        elif isinstance(node, ast.InList):
            self._expr(node.expr)
            if isinstance(node.items, ast.Subquery):
                self._expr(node.items)
            else:
                for item in node.items:
                    self._expr(item)
            self._push(
                ItemKind.FUNC_ITEM, "NOT IN" if node.negated else "IN"
            )
        elif isinstance(node, ast.Between):
            self._expr(node.expr)
            self._expr(node.low)
            self._expr(node.high)
            self._push(
                ItemKind.FUNC_ITEM,
                "NOT BETWEEN" if node.negated else "BETWEEN",
            )
        elif isinstance(node, ast.IsNull):
            self._expr(node.expr)
            self._push(
                ItemKind.FUNC_ITEM,
                "IS NOT NULL" if node.negated else "IS NULL",
            )
        elif isinstance(node, ast.Like):
            self._expr(node.expr)
            self._expr(node.pattern)
            op = node.op if not node.negated else "NOT " + node.op
            self._push(ItemKind.FUNC_ITEM, op)
        elif isinstance(node, ast.Cast):
            self._expr(node.expr)
            self._push(ItemKind.FUNC_ITEM, "CAST %s" % node.type_name)
        elif isinstance(node, ast.Case):
            self._push(ItemKind.CASE_ITEM, "CASE")
            if node.operand is not None:
                self._expr(node.operand)
            for cond, result in node.whens:
                self._expr(cond)
                self._expr(result)
            if node.default is not None:
                self._expr(node.default)
            self._push(ItemKind.CASE_ITEM, "END")
        elif isinstance(node, ast.Subquery):
            self._push(ItemKind.SUBSELECT_ITEM, "BEGIN")
            self._build_select(node.select)
            self._push(ItemKind.SUBSELECT_ITEM, "END")
        elif isinstance(node, ast.Exists):
            self._push(ItemKind.SUBSELECT_ITEM, "BEGIN")
            self._build_select(node.select)
            self._push(ItemKind.SUBSELECT_ITEM, "END")
            self._push(
                ItemKind.FUNC_ITEM,
                "NOT EXISTS" if node.negated else "EXISTS",
            )
        else:
            raise ValidationError(
                "cannot build items for %r" % type(node).__name__
            )

    def _literal(self, node):
        if node.type_tag == "int":
            self._push(ItemKind.INT_ITEM, node.value)
        elif node.type_tag == "float":
            self._push(ItemKind.REAL_ITEM, node.value)
        elif node.type_tag == "string":
            self._push(ItemKind.STRING_ITEM, node.value)
        elif node.type_tag == "null":
            self._push(ItemKind.NULL_ITEM, None)
        elif node.type_tag == "bool":
            # MySQL represents TRUE/FALSE as Item_int 1/0.
            self._push(ItemKind.INT_ITEM, 1 if node.value else 0)
        else:
            raise ValidationError("unknown literal tag %r" % node.type_tag)
