"""The database server object and its SEPTIC hook point.

:class:`Database` implements the MySQL-like processing pipeline::

    raw SQL --charset decode--> parse --> validate (item stack)
            --> [SEPTIC hook] --> execute

The hook sits *after* all query modifications (charset decoding, version
comment expansion, escape processing) and *before* execution — the exact
placement the paper requires so that SEPTIC sees queries the way they will
actually run, closing the semantic mismatch.

Two scale-oriented layers sit around that pipeline:

* a **pipeline cache** (:mod:`repro.sqldb.cache`): the decode/parse/
  validate products of each distinct ``(charset, raw SQL)`` pair are
  memoized per catalog :attr:`~Database.schema_version`, so repeated
  query shapes skip straight to the SEPTIC hook and the executor.  DDL
  bumps the schema version, which invalidates by construction;
* a **per-session execution layer** (:class:`Session`): connection-scoped
  state — the open transaction snapshot, the connection charset and
  ``LAST_INSERT_ID()`` — lives on a session object created per
  connection, so one server instance can serve concurrent clients
  without sharing what MySQL scopes per connection.
"""

import os
import random
import threading
import time
from datetime import datetime, timedelta

from repro import faults as faults_mod
from repro.core import resilience
from repro.core.logger import EventKind
from repro.sqldb import ast_nodes as ast
from repro.sqldb import charset as charset_mod
from repro.sqldb import wal as wal_mod
from repro.sqldb.cache import CacheEntry, PipelineCache
from repro.sqldb.errors import (
    ExecutionError,
    MultiStatementError,
    PageCorruptionError,
    QueryBlocked,
    SQLError,
    TransientEngineError,
    WalCorruptionError,
    WalError,
)
from repro.sqldb.executor import Executor
from repro.sqldb.parser import parse_sql
from repro.sqldb.storage import (
    PagedTable,
    ReadView,
    Table,
    WriteTxn,
    seal_txn,
)
from repro.sqldb.unparse import to_sql
from repro.sqldb.validator import validate

#: statement kinds the WAL must persist (everything that mutates durable
#: state; SELECT/EXPLAIN and the transaction-control statements are
#: handled separately — the latter become begin/commit/rollback markers)
_DURABLE_STATEMENTS = (
    ast.Insert, ast.Update, ast.Delete,
    ast.CreateTable, ast.DropTable,
    ast.CreateIndex, ast.DropIndex,
    ast.AlterTableAddColumn, ast.AlterTableDropColumn,
    ast.TruncateTable,
)

#: process-wide replay parse memo (WAL SQL text → parsed statement).
#: Replay re-parses the same canonical text for every recovery of the
#: same log — the crash-point sweep does thousands of recoveries — and
#: parsed statements are immutable once built (the pipeline cache
#: already shares them across sessions), so sharing here is safe.
_REPLAY_PARSE_MEMO = {}

#: statements that read but never mutate table or catalog state
_READ_STATEMENTS = (ast.Select, ast.Explain, ast.ShowTables, ast.Describe)

#: statements that rewrite the catalog itself (schema changes)
_DDL_STATEMENTS = (
    ast.CreateTable, ast.DropTable,
    ast.CreateIndex, ast.DropIndex,
    ast.AlterTableAddColumn, ast.AlterTableDropColumn,
)

#: transaction control — Session.begin/rollback do their own locking
_TX_STATEMENTS = (ast.Begin, ast.Commit, ast.Rollback)


def referenced_tables(node, found=None):
    """Every table name an AST subtree references, lowercased.

    Generic slot walk over :class:`repro.sqldb.ast_nodes.Node` trees —
    collects :class:`TableRef` names anywhere (FROM lists, joins,
    subqueries in any clause) plus the string ``table`` attributes DML
    and DDL statements carry.
    """
    if found is None:
        found = set()
    if isinstance(node, (list, tuple)):
        for item in node:
            referenced_tables(item, found)
        return found
    if not isinstance(node, ast.Node):
        return found
    if isinstance(node, ast.TableRef):
        found.add(node.name.lower())
        return found
    if isinstance(node, ast.ColumnRef):
        # a column's qualifier may be a FROM-clause *alias*, not a
        # table — the real table always appears as a TableRef anyway
        return found
    table = getattr(node, "table", None)
    if isinstance(table, str):
        found.add(table.lower())
    for field in node._fields():
        referenced_tables(getattr(node, field, None), found)
    return found


class LockPlan(object):
    """What one statement must hold while executing: the catalog lock
    mode plus per-table modes, pre-sorted into the global acquisition
    order (catalog first, then tables by name) so any set of concurrent
    statements acquires resources in one total order — deadlock free."""

    __slots__ = ("catalog_shared", "tables")

    def __init__(self, catalog_shared, tables=()):
        self.catalog_shared = catalog_shared
        self.tables = tuple(sorted(tables))

    def __repr__(self):
        return "LockPlan(catalog=%s, tables=%r)" % (
            "S" if self.catalog_shared else "X", self.tables
        )


def lock_plan(stmt):
    """Classify *stmt* into its :class:`LockPlan`.

    MVCC demoted this hierarchy: readers carry a snapshot
    :class:`~repro.sqldb.storage.ReadView` instead of table locks, so
    only *writers* exclude each other per table.

    * reads (SELECT/EXPLAIN/SHOW/DESCRIBE): catalog shared, **no table
      locks** — reads overlap with each other and with any DML;
    * DML (INSERT/UPDATE/DELETE/TRUNCATE): catalog shared plus the
      target table exclusive (writer–writer exclusion only; tables read
      by subqueries take nothing);
    * DDL: catalog exclusive (conflicts with everything — every other
      statement holds the catalog at least shared);
    * BEGIN/COMMIT/ROLLBACK: ``None`` — :class:`Session` takes the
      catalog lock itself around snapshot/restore.

    Unknown statement kinds get the conservative catalog-exclusive
    plan.
    """
    if isinstance(stmt, _TX_STATEMENTS):
        return None
    if isinstance(stmt, _DDL_STATEMENTS):
        return LockPlan(catalog_shared=False)
    if isinstance(stmt, _READ_STATEMENTS):
        return LockPlan(True, [])
    if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete,
                         ast.TruncateTable)):
        return LockPlan(True, [(stmt.table.lower(), False)])
    return LockPlan(catalog_shared=False)


class LockManager(object):
    """The engine's two-level reader–writer lock hierarchy.

    One catalog :class:`~repro.core.resilience.RWLock` plus one per
    table, created on demand and acquired strictly in plan order.
    Locks are scoped to a single statement — never held across
    statements, so a stuck client cannot convoy the server.  The
    legacy ``Database.catalog_lock`` RLock remains underneath as a
    short-critical-section guard for catalog dict mutations; this
    layer is what makes *statements* overlap or exclude each other.
    """

    def __init__(self):
        self.catalog = resilience.RWLock()
        self._tables = {}
        self._registry_lock = resilience.make_lock()

    def table_lock(self, name):
        with self._registry_lock:
            lock = self._tables.get(name)
            if lock is None:
                lock = resilience.RWLock()
                self._tables[name] = lock
            return lock

    def acquire(self, plan):
        self.catalog.acquire(plan.catalog_shared)
        for name, shared in plan.tables:
            self.table_lock(name).acquire(shared)

    def release(self, plan):
        for name, shared in reversed(plan.tables):
            self.table_lock(name).release(shared)
        self.catalog.release(plan.catalog_shared)

    def stats(self):
        """Aggregate + per-resource counters (the benches read these)."""
        with self._registry_lock:
            tables = dict(self._tables)
        per_table = {name: lock.state_dict()
                     for name, lock in tables.items()}
        out = {
            "catalog": self.catalog.state_dict(),
            "tables": per_table,
            "read_acquires": self.catalog.read_acquires,
            "write_acquires": self.catalog.write_acquires,
            "contended": self.catalog.contended,
        }
        for state in per_table.values():
            out["read_acquires"] += state["read_acquires"]
            out["write_acquires"] += state["write_acquires"]
            out["contended"] += state["contended"]
        return out


class QueryContext(object):
    """Everything SEPTIC's hook receives about one statement."""

    __slots__ = ("sql", "statement", "stack", "comments", "database",
                 "memo", "stage_stats")

    def __init__(self, sql, statement, stack, comments, database,
                 memo=None):
        #: the decoded query text (post charset decoding)
        self.sql = sql
        #: the parsed AST statement
        self.statement = statement
        #: the validated item stack (bottom → top)
        self.stack = stack
        #: comment bodies found in the query (external ID channel)
        self.comments = comments
        self.database = database
        #: pipeline-cache memo slot (:class:`repro.sqldb.cache.SepticMemo`)
        #: the QS&QM manager fills on first sight; ``None`` when uncached
        self.memo = memo
        #: per-stage instrumentation (:class:`repro.sqldb.plan.StageStats`)
        #: filled by the executor after the statement's plan ran
        self.stage_stats = None

    @property
    def command(self):
        return type(self.statement).__name__.upper()


class Session(object):
    """Per-connection server-side state (what MySQL scopes per session).

    Holds the connection charset, ``LAST_INSERT_ID()`` and the open
    transaction snapshot.  :class:`repro.sqldb.connection.Connection`
    creates one per connection; callers that talk to the
    :class:`Database` directly use its default session.
    """

    __slots__ = ("database", "charset", "last_insert_id", "_tx_snapshot",
                 "_tx_begin_schema", "tx_id", "tx_read_stamp", "write_txn")

    def __init__(self, database, charset=None):
        self.database = database
        self.charset = charset or database.charset
        self.last_insert_id = 0
        self._tx_snapshot = None
        self._tx_begin_schema = 0
        #: WAL transaction id while a transaction is open (0 otherwise /
        #: when no WAL is attached)
        self.tx_id = 0
        #: MVCC snapshot watermark pinned at BEGIN (None when autocommit)
        self.tx_read_stamp = None
        #: the open transaction's :class:`~repro.sqldb.storage.WriteTxn`
        #: — every pending row version it installed, sealed at COMMIT
        self.write_txn = None

    # -- transactions ----------------------------------------------------
    #
    # Snapshot semantics: BEGIN copies the catalog and every table's
    # full state (rows, auto-increment counter, columns, indexes);
    # ROLLBACK restores all of it (tables created mid-transaction
    # vanish, tables dropped mid-transaction come back with their rows,
    # in-place ALTER TABLE / CREATE INDEX edits revert with them);
    # COMMIT discards the snapshot.  A BEGIN inside an open transaction
    # implicitly commits it (MySQL behaviour).

    def begin(self):
        if self._tx_snapshot is not None:
            self.commit()  # implicit commit, like MySQL
        db = self.database
        # a BEGIN snapshot must be statement-consistent across every
        # table: take the catalog exclusively so no statement overlaps
        db.lock_manager.catalog.acquire_write()
        try:
            with db.catalog_lock:
                catalog = dict(db.tables)
                states = {
                    name: table.snapshot_state()
                    for name, table in catalog.items()
                }
        finally:
            db.lock_manager.catalog.release_write()
        self._tx_snapshot = (catalog, states)
        self._tx_begin_schema = db.schema_version
        # pin the snapshot-isolation read position: everything committed
        # so far is visible to this transaction, nothing newer will be
        self.tx_read_stamp = db._commit_stamp
        self.write_txn = WriteTxn(read_stamp=self.tx_read_stamp)
        db._tx_sessions.add(self)
        if wal_mod.ATTACHED and db._wal is not None:
            self.tx_id = db._next_tx_id()
            db._wal.append(wal_mod.WalRecord.BEGIN, tx=self.tx_id)

    def commit(self):
        db = self.database
        lsn = None
        if (
            wal_mod.ATTACHED
            and db._wal is not None
            and self._tx_snapshot is not None
            and self.tx_id
        ):
            db._wal.append(wal_mod.WalRecord.COMMIT, tx=self.tx_id,
                           durability_point=True)
            lsn = db._wal.last_lsn
        # seal pending versions with the commit LSN before the commit
        # point may trigger a checkpoint (whose vacuum walks sealed meta)
        if self.write_txn is not None:
            db._seal_txn(self.write_txn, lsn=lsn)
            self.write_txn = None
        self.tx_read_stamp = None
        if lsn is not None:
            db._note_commit_point()
        self.tx_id = 0
        self._tx_snapshot = None
        db._tx_sessions.discard(self)

    def rollback(self):
        snapshot = self._tx_snapshot
        if snapshot is None:
            return  # ROLLBACK outside a transaction is a no-op
        catalog, states = snapshot
        db = self.database
        # a transaction that never wrote (read-only, or every statement
        # failed its pre-mutation conflict check) has nothing to undo;
        # restoring the BEGIN snapshot anyway would clobber rows other
        # sessions committed while this transaction was open
        wrote = self.write_txn is not None and self.write_txn.entries
        if not wrote and db.schema_version == self._tx_begin_schema:
            if wal_mod.ATTACHED and db._wal is not None and self.tx_id:
                db._wal.append(wal_mod.WalRecord.ROLLBACK, tx=self.tx_id)
            self.write_txn = None
            self.tx_read_stamp = None
            self.tx_id = 0
            self._tx_snapshot = None
            db._tx_sessions.discard(self)
            return
        # restoring rewrites every table: exclude all other statements
        db.lock_manager.catalog.acquire_write()
        try:
            with db.catalog_lock:
                catalog_changed = set(db.tables) != set(catalog)
                # restore the catalog: tables created mid-transaction
                # are dropped, tables dropped mid-transaction reappear
                db.tables = dict(catalog)
                schema_reverted = False
                for name, state in states.items():
                    table = db.tables[name]
                    if (table.columns != state[2]
                            or table.indexes != state[3]):
                        schema_reverted = True  # undoing in-place DDL
                    table.restore_state(state)
                if catalog_changed or schema_reverted:
                    db.bump_schema_version()
        finally:
            db.lock_manager.catalog.release_write()
        if wal_mod.ATTACHED and db._wal is not None and self.tx_id:
            db._wal.append(wal_mod.WalRecord.ROLLBACK, tx=self.tx_id)
        # pending versions die with the restore (restore_state resets
        # each table's MVCC metadata); just drop the txn handle
        self.write_txn = None
        self.tx_read_stamp = None
        self.tx_id = 0
        self._tx_snapshot = None
        db._tx_sessions.discard(self)

    @property
    def in_transaction(self):
        return self._tx_snapshot is not None


class Database(object):
    """An in-memory database server instance.

    ``septic`` may be set to any object exposing
    ``process_query(QueryContext)`` — normally a
    :class:`repro.core.septic.Septic` instance.  When it raises
    :class:`repro.sqldb.errors.QueryBlocked` the statement is dropped.

    ``cache_size`` sizes the query-pipeline cache (LRU entries); ``0``
    disables caching entirely (every statement re-decodes, re-parses and
    re-validates — the cold path, kept for benchmarks and ablations).
    """

    #: virtual clock start, kept fixed for reproducibility
    _EPOCH = "2016-07-05 12:00:00"

    def __init__(self, name="repro", septic=None, charset="utf8", seed=1,
                 septic_fail_open=False, cache_size=512,
                 lock_mode="shared", storage="memory",
                 page_size=4096, pool_pages=64):
        self.name = name
        #: ``"memory"`` keeps rows in plain lists (the historical
        #: backend); ``"paged"`` stores them in checksummed B-tree pages
        #: behind a buffer pool — it takes effect when the database is
        #: opened through :meth:`recover` (the page files live beside
        #: the WAL in the data directory).
        if storage not in ("memory", "paged"):
            raise ValueError("storage must be 'memory' or 'paged'")
        self.storage = storage
        self.page_size = page_size
        self.pool_pages = pool_pages
        #: the :class:`repro.sqldb.pager.PageStore` (paged storage only)
        self.page_store = None
        #: ``"shared"`` (default) uses the table-granular reader–writer
        #: hierarchy — concurrent SELECTs overlap; ``"exclusive"`` makes
        #: every statement take the catalog lock exclusively, i.e. the
        #: old fully-serialized engine, kept as the benchmark baseline.
        if lock_mode not in ("shared", "exclusive"):
            raise ValueError("lock_mode must be 'shared' or 'exclusive'")
        self.lock_mode = lock_mode
        #: statement-scope RW locks (catalog + per table)
        self.lock_manager = LockManager()
        #: policy when the SEPTIC hook itself crashes (not a QueryBlocked):
        #: fail-closed (default) re-raises and the query does not execute;
        #: fail-open logs nothing and lets the query through — the classic
        #: availability-vs-security trade-off, exposed for testing.
        self.septic_fail_open = septic_fail_open
        self.version = "5.7.16-repro"
        self.user = "webapp@localhost"
        self.tables = {}
        #: bumped by every DDL change; part of the pipeline-cache key, so
        #: cached validations of the old catalog stop matching instantly
        self.schema_version = 0
        #: guards the catalog (``tables`` and ``schema_version``) against
        #: concurrent DDL/validation/transaction snapshots
        self.catalog_lock = threading.RLock()
        self.septic = septic
        self.charset = charset
        self._executor = Executor(self)
        self._rand_seed = seed
        self._rand = random.Random(seed)
        #: RNG draws issued so far — logged with each WAL record so
        #: replay can fast-forward a re-seeded RNG to the same point
        self._rand_calls = 0
        self._clock_ticks = 0
        self._clock_lock = threading.Lock()
        # -- durability (all inert until a WAL is attached) ---------------
        #: the attached :class:`repro.sqldb.wal.WriteAheadLog` (or None)
        self._wal = None
        #: data directory backing the WAL/checkpoint files (or None)
        self.data_dir = None
        #: durability points between automatic checkpoints (0 = manual)
        self.checkpoint_interval = 0
        self._commit_points_since_checkpoint = 0
        #: WAL transaction-id counter
        self._tx_counter = 0
        #: highest LSN seen during recovery (next append starts above it)
        self._recovered_lsn = 0
        self._recovered_dir = None
        #: checkpoint retention pins: name -> callable returning the
        #: lowest LSN that holder still needs kept in the log (or None
        #: to release).  Replication pins the slowest replica's applied
        #: LSN here so rotation never truncates records a replica has
        #: yet to fetch.
        self._lsn_pins = {}
        #: checkpoints skipped because a retention pin was behind the
        #: log frontier (they retry at the next commit point)
        self.checkpoints_deferred = 0
        #: transient-retry counters aggregated across every connection
        #: to this database (exported via ``Septic.status()``)
        self.retry_stats = resilience.RetryStats()
        #: summary of the last recovery (:meth:`recover` fills it)
        self.recovery_report = None
        #: tables rebuilt from the WAL because their checkpoint tree was
        #: corrupt — ``[(table_name, bad_page_no)]``
        self._pages_rebuilt = []
        self._epoch_moment = datetime.strptime(
            self._EPOCH, "%Y-%m-%d %H:%M:%S"
        )
        #: the query-pipeline cache (``None`` when disabled)
        self.pipeline_cache = (
            PipelineCache(cache_size) if cache_size else None
        )
        # -- MVCC ---------------------------------------------------------
        #: newest published commit stamp (max-coupled with WAL LSNs, so
        #: version stamps and the log share one ordering)
        self._commit_stamp = 0
        #: pinned read-view watermarks -> refcount; the min is the GC
        #: horizon no vacuum may cross
        self._active_views = {}
        #: guards stamp allocation, meta sealing and view pinning — the
        #: seal happens entirely inside it, so a pinned watermark never
        #: observes a half-stamped commit
        self._mvcc_lock = threading.Lock()
        #: the session used when a caller does not bring its own
        self._default_session = Session(self, charset)
        #: sessions currently holding an open transaction (any session)
        self._tx_sessions = set()
        self._stats_lock = threading.Lock()
        #: count of statements actually executed (not dropped)
        self.statements_executed = 0
        #: count of statements that entered the pipeline (incl. dropped)
        self.statements_received = 0
        #: cumulative wall-clock seconds spent inside the SEPTIC hook
        #: (measured live; the BenchLab harness reads this)
        self.septic_seconds_total = 0.0
        #: opt-in: emit a STAGE_TIMING logger event per executed plan
        #: (off by default — the pinned event streams stay unchanged)
        self.log_stage_timings = False
        #: stats provider installed by the socket front end
        #: (:class:`repro.net.server.NetServer`); ``Septic.status()``
        #: surfaces its connection counters under ``"net"``
        self.net_stats = None

    # -- sessions ----------------------------------------------------------

    @property
    def default_session(self):
        return self._default_session

    def create_session(self, charset=None):
        """A fresh :class:`Session` (one per client connection)."""
        return Session(self, charset)

    #: per-connection state kept reachable through the server object for
    #: callers that treat the Database as a single-client engine
    @property
    def last_insert_id(self):
        return self._default_session.last_insert_id

    @last_insert_id.setter
    def last_insert_id(self, value):
        self._default_session.last_insert_id = value

    # -- catalog -----------------------------------------------------------

    def create_table(self, name, columns):
        if self.storage == "paged":
            if self.page_store is None:
                raise WalError(
                    "paged storage requires a data directory: open the "
                    "database through Database.recover()"
                )
            table = PagedTable(name, columns, self.page_store)
        else:
            table = Table(name, columns)
        with self.catalog_lock:
            self.tables[table.name] = table
            self.schema_version += 1
        return table

    def drop_table(self, name):
        with self.catalog_lock:
            table = self.tables.pop(name.lower())
            self.schema_version += 1
        dispose = getattr(table, "dispose", None)
        if dispose is not None:
            # free the table's pages; a mid-transaction DROP that later
            # rolls back rebuilds the tree from the BEGIN snapshot
            dispose()

    def bump_schema_version(self):
        """Record a catalog change done in place (ALTER TABLE paths)."""
        with self.catalog_lock:
            self.schema_version += 1

    def table(self, name):
        table = self.tables.get(name.lower())
        if table is None:
            raise ExecutionError(
                "Table '%s.%s' doesn't exist" % (self.name, name), errno=1146
            )
        return table

    # -- transactions ----------------------------------------------------
    #
    # Delegates of the default session, for direct-engine callers.

    def begin(self):
        self._default_session.begin()

    def commit(self):
        self._default_session.commit()

    def rollback(self):
        self._default_session.rollback()

    @property
    def in_transaction(self):
        """True while *any* session holds an open transaction."""
        return bool(self._tx_sessions)

    # -- MVCC --------------------------------------------------------------

    def open_read_view(self, session=None):
        """Pin a snapshot read position for one statement.

        Inside an open transaction the view reuses the watermark pinned
        at BEGIN (repeatable reads) and carries the transaction's write
        txn so it sees its own pending changes; otherwise the watermark
        is the newest published commit stamp.  Must be paired with
        :meth:`close_read_view` — the pin is what holds vacuum back.
        """
        txn = None
        watermark = None
        if session is not None and session.in_transaction:
            txn = session.write_txn
            watermark = session.tx_read_stamp
        with self._mvcc_lock:
            if watermark is None:
                watermark = self._commit_stamp
            self._active_views[watermark] = (
                self._active_views.get(watermark, 0) + 1
            )
        return ReadView(watermark, txn)

    def close_read_view(self, view):
        with self._mvcc_lock:
            count = self._active_views.get(view.watermark, 0) - 1
            if count > 0:
                self._active_views[view.watermark] = count
            else:
                self._active_views.pop(view.watermark, None)

    def mvcc_horizon(self):
        """Oldest pinned watermark, or ``None`` when nothing is pinned
        (vacuum may then reclaim all sealed history).

        Pins come from two places: read views open right now, and
        sessions inside an open transaction — their BEGIN-time stamp
        stays pinned *between* statements, which is what makes their
        reads repeatable."""
        with self._mvcc_lock:
            pins = list(self._active_views)
        for session in list(self._tx_sessions):
            stamp = session.tx_read_stamp
            if stamp is not None:
                pins.append(stamp)
        return min(pins) if pins else None

    def _seal_txn(self, txn, lsn=None):
        """Commit *txn*'s pending versions under one fresh stamp.

        The stamp is ``max(counter + 1, lsn)`` so version stamps track
        the WAL's LSN sequence whenever one is attached.  Stamping and
        counter publication happen inside the MVCC lock: a reader either
        pins a watermark below the stamp (sees the old images) or pins
        it at/after full publication (sees the new ones) — never a torn
        mixture.

        When nothing can ever read the superseded images — no open read
        view, no *other* session inside a transaction (whose pinned
        BEGIN stamp needs them for repeatable reads and whose writes
        need the begin stamps for first-writer-wins) — the sealed
        metadata is collected on the spot, so single-session workloads
        never grow version chains at all.
        """
        if txn is None or txn.sealed:
            return
        others_in_tx = any(
            session.write_txn is not txn
            for session in list(self._tx_sessions)
        )
        with self._mvcc_lock:
            stamp = max(self._commit_stamp + 1, lsn or 0)
            seal_txn(txn, stamp,
                     collect=not self._active_views and not others_in_tx)
            self._commit_stamp = stamp

    # -- environment ---------------------------------------------------------

    def now(self):
        """Deterministic virtual clock (advances one second per call,
        with proper day/month rollover — it never runs backwards)."""
        with self._clock_lock:
            self._clock_ticks += 1
            ticks = self._clock_ticks
        moment = self._epoch_moment + timedelta(seconds=ticks)
        return moment.strftime("%Y-%m-%d %H:%M:%S")

    def rand(self):
        with self._clock_lock:
            self._rand_calls += 1
            return self._rand.random()

    # -- durability --------------------------------------------------------

    @classmethod
    def recover(cls, data_dir, name="repro", septic=None, charset="utf8",
                seed=1, septic_fail_open=False, cache_size=512,
                wal_sync="commit", wal_batch_commits=16,
                checkpoint_interval=0, strict=True,
                storage="memory", page_size=4096, pool_pages=64):
        """Rebuild a database from *data_dir* and attach its WAL.

        The redo-only recovery path: restore the newest checkpoint (if
        any), then replay every *committed* unit the log holds above the
        checkpoint LSN — autocommit statements and transactions closed
        by a commit marker, in commit order.  Rolled-back and unfinished
        transactions are discarded; a torn tail is truncated.  Running
        recovery twice over the same directory yields identical state
        (replay always restarts from the checkpoint, never from partial
        results).

        Mid-log corruption (a CRC-failing record with valid data after
        it) raises :class:`~repro.sqldb.errors.WalCorruptionError` when
        *strict* (the default); the exception carries the clean-prefix
        database as ``.database``.  With ``strict=False`` the damaged
        suffix is truncated and the clean-prefix database is returned.

        An empty or missing *data_dir* simply yields a fresh database
        with durability enabled — the bootstrap path.
        """
        db = cls(name=name, septic=septic, charset=charset, seed=seed,
                 septic_fail_open=septic_fail_open, cache_size=cache_size,
                 storage=storage, page_size=page_size,
                 pool_pages=pool_pages)
        db._recover_state(data_dir, strict=strict)
        db.attach_wal(data_dir, sync_mode=wal_sync,
                      batch_commits=wal_batch_commits,
                      checkpoint_interval=checkpoint_interval)
        return db

    def attach_wal(self, data_dir, sync_mode="commit", batch_commits=16,
                   checkpoint_interval=0):
        """Turn on durability: every mutation from here on is logged.

        The directory must be fresh or already recovered by this
        instance — attaching over unread on-disk state would assign
        duplicate LSNs and shadow the existing history.
        """
        if self._wal is not None:
            raise WalError("a WAL is already attached")
        if self._tx_sessions:
            raise WalError(
                "cannot attach a WAL while a transaction is open"
            )
        os.makedirs(data_dir, exist_ok=True)
        log_file = wal_mod.log_path(data_dir)
        has_state = os.path.exists(wal_mod.checkpoint_path(data_dir)) or (
            os.path.exists(log_file) and os.path.getsize(log_file) > 0
        )
        if has_state and self._recovered_dir != data_dir:
            raise WalError(
                "data directory %r holds existing state; use "
                "Database.recover() instead of attaching directly"
                % data_dir
            )
        self.data_dir = data_dir
        self.checkpoint_interval = checkpoint_interval
        self._commit_points_since_checkpoint = 0
        self._wal = wal_mod.WriteAheadLog(
            data_dir, sync_mode=sync_mode, batch_commits=batch_commits,
            start_lsn=self._recovered_lsn + 1,
        )
        wal_mod._note_attached(+1)
        return self._wal

    def close(self):
        """Clean shutdown: fsync and detach the WAL (no-op without one)."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None
            wal_mod._note_attached(-1)
        if self.page_store is not None:
            self.page_store.close()
            self.page_store = None

    def reopen(self):
        """Crash-restart in place: drop every volatile structure and
        rebuild from :attr:`data_dir`, keeping the object identity so
        live :class:`Session`/``Connection`` objects survive the
        restart (their open transactions are gone, like any client's
        after a server bounce)."""
        if self.data_dir is None:
            raise WalError("no data directory attached")
        data_dir = self.data_dir
        wal = self._wal
        sync_mode, batch = "commit", 16
        if wal is not None:
            sync_mode, batch = wal.sync_mode, wal.batch_commits
            wal.abandon()
            self._wal = None
            wal_mod._note_attached(-1)
        if self.page_store is not None:
            # drop the handles without flushing — the on-disk files are
            # exactly what the simulated crash left behind
            self.page_store.abandon()
            self.page_store = None
        interval = self.checkpoint_interval
        with self.catalog_lock:
            old_schema_version = self.schema_version
            self.tables = {}
            self.schema_version = 0
        self._clock_ticks = 0
        self._rand = random.Random(self._rand_seed)
        self._rand_calls = 0
        self._tx_counter = 0
        for session in list(self._tx_sessions):
            session._tx_snapshot = None
            session.tx_id = 0
            session.write_txn = None
            session.tx_read_stamp = None
        self._tx_sessions.clear()
        with self._mvcc_lock:
            self._active_views = {}
        self._recovered_lsn = 0
        self._recovered_dir = None
        self._recover_state(data_dir, strict=True)
        with self.catalog_lock:
            # the version must move strictly past its pre-crash value:
            # replay can land on the same number, and an in-flight
            # pipeline entry put() back after the restart would then
            # carry a key that still validates against the new catalog
            if self.schema_version <= old_schema_version:
                self.schema_version = old_schema_version + 1
        self.attach_wal(data_dir, sync_mode=sync_mode,
                        batch_commits=batch,
                        checkpoint_interval=interval)
        return self

    # -- group commit (the socket front end's durability hook) -------------

    def wal_synced_lsn(self):
        """Highest LSN known durable, or ``None`` with no WAL attached.

        The socket front end compares this against the commit frontier
        to decide whether an acknowledgement may go out yet."""
        wal = self._wal
        if wal is None or wal.closed:
            return None
        return wal.synced_lsn

    def wal_commit_frontier(self):
        """``(commit_count, last_lsn)`` — how many durability points the
        log has seen and where its frontier sits (``(0, 0)`` with no WAL
        attached).  The front end snapshots this around a batch of
        statements: if the commit count moved, the batch wrote, and its
        acks must wait for ``last_lsn`` to become durable."""
        wal = self._wal
        if wal is None or wal.closed:
            return (0, 0)
        return (wal.commits, wal.last_lsn)

    def wal_sync_to(self, lsn):
        """Group-commit flush: make everything up to *lsn* durable (one
        fsync shared by every commit below the horizon).  Returns
        ``True`` when an fsync actually ran, ``False`` when the horizon
        was already durable or no WAL is attached."""
        wal = self._wal
        if wal is None or wal.closed:
            return False
        return wal.sync_to(lsn)

    # -- WAL retention (replication pins) ---------------------------------

    def pin_lsn(self, name, provider):
        """Register a retention pin: *provider* is called before every
        checkpoint and returns the lowest LSN its holder still needs in
        the log (``None`` releases the pin for that round).  Replication
        registers one pin per replica set, returning the slowest
        replica's applied LSN."""
        self._lsn_pins[name] = provider

    def unpin_lsn(self, name):
        """Drop a retention pin (idempotent)."""
        self._lsn_pins.pop(name, None)

    def retention_low_water(self):
        """The lowest LSN any retention pin still needs, or ``None``
        when nothing is pinned.  Providers that raise release their pin
        for the round rather than wedging checkpoints forever."""
        lows = []
        for name in list(self._lsn_pins):
            provider = self._lsn_pins.get(name)
            if provider is None:
                continue
            low = provider()
            if low is not None:
                lows.append(low)
        return min(lows) if lows else None

    def checkpoint(self):
        """Write a full-state checkpoint and rotate the log.

        Skipped (returns ``None``) while any transaction is open — a
        checkpoint must capture a transaction-consistent snapshot — or
        while a retention pin (a lagging replica) still needs log
        records the rotation would truncate.  Returns the checkpoint
        LSN when written.
        """
        if self._wal is None:
            raise WalError("no WAL attached")
        if self._tx_sessions:
            return None
        low_water = self.retention_low_water()
        if low_water is not None and low_water < self._wal.last_lsn:
            self.checkpoints_deferred += 1
            return None
        with self.catalog_lock:
            state = {
                "tables": [
                    table.to_dict() for table in self.tables.values()
                ],
                "schema_version": self.schema_version,
                "clock": self._clock_ticks,
                "rand": self._rand_calls,
                "seed": self._rand_seed,
                "tx_counter": self._tx_counter,
            }
        images = None
        store = self.page_store
        if store is not None:
            # doublewrite-first checkpoint protocol: (1) every dirty
            # page image lands in the sealed doublewrite batch, (2) the
            # checkpoint JSON references the batch id, (3) only then do
            # the home writes start.  Recovery applies the doublewrite
            # copies over the home file exactly when the sealed batch
            # matches the JSON's — so whichever step a crash tears, the
            # home file reconstructs to a consistent checkpoint image.
            images = store.collect_images(lsn=self._wal.last_lsn)
            batch = store.checkpoint_begin(images)
            state["pages"] = {
                "batch": batch,
                "page_size": store.pager.page_size,
                "page_count": store.pager.page_count,
                "freelist": sorted(store.pager.freelist),
                "tables": {
                    name: table.pages_meta()
                    for name, table in self.tables.items()
                },
            }
        lsn = self._wal.write_checkpoint(state)
        if store is not None:
            store.checkpoint_finish(images)
            self._rebuild_scrub_set()
        self._commit_points_since_checkpoint = 0
        # GC rides the checkpoint: reclaim version chains and tombstones
        # no pinned read view can still need
        horizon = self.mvcc_horizon()
        with self.catalog_lock:
            for table in self.tables.values():
                table.vacuum(horizon)
        return lsn

    # -- paged storage -----------------------------------------------------

    def _rebuild_scrub_set(self):
        """Point the scrubber at every page reachable from the current
        table catalog.  Called after each checkpoint (and recovery) so
        the scan set only ever names pages the checkpoint references —
        freed or never-allocated pages are not scanned and cannot raise
        false alarms."""
        store = self.page_store
        if store is None:
            return
        with self.catalog_lock:
            scan = {}
            for name, table in self.tables.items():
                for page_no in table.pages():
                    scan[page_no] = name
        store.scrubber.set_scan_set(scan)

    def _wal_barrier(self):
        """Flush the WAL before a dirty page image leaves the buffer
        pool (steal).  The spill copy may embed effects of commits the
        log hasn't fsynced yet; forcing the log first preserves
        write-ahead ordering for the spill file."""
        wal = self._wal
        if wal is not None and wal.pending_unsynced_commits:
            wal.fsync()

    def _wal_tail_is_replayable(self):
        return self._wal is not None and self._recovered_dir is not None

    def _scrub_redo_repair(self, page_no, table_name):
        """Scrubber repair source of last resort before the replica
        list: rebuild *table_name* from checkpoint JSON + WAL redo in a
        scratch in-memory engine, then reload the live paged table from
        the recovered rows.  Returns True when the table was rebuilt
        and re-checkpointed (the quarantined page is freed or rewritten
        either way)."""
        if table_name is None or not self._wal_tail_is_replayable():
            return False
        if self._tx_sessions:
            # an open transaction means the WAL tail is still moving
            # and a checkpoint (step 2 of the repair) would be skipped
            return False
        # the scratch replay reads wal.log from disk — flush the
        # buffered tail first or the rebuild silently loses the
        # newest commits
        self._wal.fsync()
        data_dir = self._recovered_dir
        scratch = Database(name=self.name, seed=self._rand_seed,
                           cache_size=0)
        try:
            checkpoint = wal_mod.load_checkpoint(data_dir)
            applied_lsn = 0
            if checkpoint is not None:
                applied_lsn = scratch._restore_checkpoint(checkpoint)
            try:
                scan = wal_mod.scan_log(wal_mod.log_path(data_dir))
            except WalCorruptionError as exc:
                scan = wal_mod.ScanResult(exc.clean_records, exc.offset, 0)
            scratch._replay_records(scan.records, applied_lsn)
            scratch._finish_recovery()
            source = scratch.tables.get(table_name)
            if source is None:
                return False
            rows = source.to_dict()["rows"]
        except (SQLError, KeyError, TypeError, ValueError):
            return False
        return self._rebuild_table_from_rows(table_name, rows)

    def _rebuild_table_from_rows(self, table_name, rows):
        """Reload a live paged table from recovered *rows* and
        checkpoint so the new tree becomes the durable image.  Returns
        False (page stays quarantined, repair retried later) when the
        table is gone or the checkpoint was deferred."""
        with self.catalog_lock:
            table = self.tables.get(table_name)
        if table is None or not isinstance(table, PagedTable):
            return False
        table.load_rows(rows)
        # the old (corrupt) tree's pages were freed by load_rows; a
        # checkpoint makes the rebuilt tree the durable home image and
        # refreshes the scrub set so the quarantined page is forgotten
        lsn = self.checkpoint()
        return lsn is not None

    def register_page_repair_source(self, provider):
        """Install *provider(table_name) -> rows | None* (typically a
        caught-up replica's table snapshot) as a scrubber repair
        source, tried after doublewrite / clean frame / WAL redo."""
        if self.page_store is None:
            raise WalError("page repair sources need paged storage")

        def _repair(page_no, table_name):
            if table_name is None:
                return False
            rows = provider(table_name)
            if rows is None:
                return False
            return self._rebuild_table_from_rows(table_name, rows)

        self.page_store.scrubber.replica_sources.append(_repair)

    def scrub(self, ticks=1):
        """Advance the online scrubber by *ticks* virtual ticks; each
        tick verifies a bounded batch of cold pages.  Returns the
        number of new corruptions detected (0 without paged
        storage)."""
        if self.page_store is None:
            return 0
        return self.page_store.scrubber.tick(ticks)

    def storage_stats(self):
        """Buffer-pool / pager / scrubber counters, or ``None`` for the
        in-memory backend."""
        if self.page_store is None:
            return None
        return self.page_store.stats_dict()

    @property
    def durable_lsn(self):
        """LSN of the newest appended record (0 without a WAL)."""
        return 0 if self._wal is None else self._wal.last_lsn

    @property
    def wal(self):
        return self._wal

    def _lock_plan_for(self, stmt, plan_tables=None, prepared=None):
        """The statement's lock plan under the configured mode.

        When the *prepared* physical plan is passed, the result is
        memoized on it — the lock plan is deterministic per plan, and
        the AST walk is a measurable share of a warm query, so cached
        plans classify once, not per execution.  (*plan_tables* is kept
        for signature compatibility: before MVCC it widened read plans
        with shared locks for tables the AST walk missed; reads no
        longer lock tables at all.)

        ``exclusive`` mode degrades every plan to catalog-exclusive —
        exactly one statement in the engine at a time, the serialized
        baseline the concurrency benchmarks compare against."""
        if prepared is not None:
            plan = prepared.lock_plan
            if plan is None:
                plan = self._merged_lock_plan(stmt, prepared.tables)
                prepared.lock_plan = plan
        else:
            plan = self._merged_lock_plan(stmt, plan_tables)
        if plan is None:
            return None
        if self.lock_mode == "exclusive":
            return LockPlan(catalog_shared=False)
        return plan

    @staticmethod
    def _merged_lock_plan(stmt, plan_tables):
        # plan_tables (the base tables the physical plan scans) used to
        # widen the lock set with shared entries; under MVCC reads take
        # no table locks at all, so classification alone is the plan
        return lock_plan(stmt)

    def _next_tx_id(self):
        with self._stats_lock:
            self._tx_counter += 1
            return self._tx_counter

    def _note_commit_point(self):
        if not self.checkpoint_interval:
            return
        self._commit_points_since_checkpoint += 1
        if self._commit_points_since_checkpoint >= self.checkpoint_interval:
            self.checkpoint()  # stays pending while a tx is open

    def _wal_prepare(self, stmt, session):
        """Pre-execution capture for a statement that must be logged:
        its canonical SQL plus the clock/RNG position, so replay recalls
        ``NOW()``/``RAND()`` bit-identically.  Returns ``None`` for
        statements the WAL does not persist."""
        if not isinstance(stmt, _DURABLE_STATEMENTS):
            return None
        try:
            sql_text = to_sql(stmt)
        except TypeError as exc:
            raise WalError(
                "cannot serialize %s for the WAL (%s)"
                % (type(stmt).__name__, exc)
            )
        with self._clock_lock:
            return (sql_text, self._clock_ticks, self._rand_calls)

    def _wal_log(self, wal_state, session, failed):
        wal = self._wal
        if wal is None:
            return
        sql_text, clock, rand = wal_state
        tx = session.tx_id
        durable = tx == 0  # autocommit: the statement is its own commit
        wal.append(wal_mod.WalRecord.STMT, tx=tx, sql=sql_text,
                   clock=clock, rand=rand, failed=failed,
                   durability_point=durable)
        if durable:
            self._note_commit_point()

    # -- recovery (the redo path) -----------------------------------------

    def _recover_state(self, data_dir, strict=True):
        # lock state is volatile: a restart leaves no holder alive, so
        # recovery starts from a fresh hierarchy (reopen() relies on
        # this — a lock held at crash time must not survive the bounce)
        self.lock_manager = LockManager()
        os.makedirs(data_dir, exist_ok=True)
        checkpoint = wal_mod.load_checkpoint(data_dir)
        pages_report = None
        self._pages_rebuilt = []
        if self.storage == "paged":
            from repro.sqldb import btree as btree_mod
            from repro.sqldb import pager as pager_mod
            self.page_store = pager_mod.PageStore(
                data_dir, page_size=self.page_size,
                pool_pages=self.pool_pages,
                encoder=btree_mod.encode_node,
                decoder=btree_mod.decode_node,
            )
            self.page_store.scrubber.redo_source = self._scrub_redo_repair
            self.page_store.pool.wal_barrier = self._wal_barrier
            pages_state = (checkpoint or {}).get("pages") or {}
            self.page_store.restore_allocation(pages_state)
            # torn-write repair: the sealed doublewrite batch overwrites
            # the home copies iff its id is the one this checkpoint
            # references (see Database.checkpoint for the protocol)
            applied, torn = self.page_store.pager.recover_home(
                pages_state.get("batch", 0)
            )
            # the spill file is volatile steal state — ignore whatever
            # a crash left in it
            self.page_store.pager.clear_spill()
            pages_report = {
                "dw_applied": applied,
                "torn_repaired": torn,
                "page_count": self.page_store.pager.page_count,
            }
        applied_lsn = 0
        if checkpoint is not None:
            applied_lsn = self._restore_checkpoint(checkpoint)
        path = wal_mod.log_path(data_dir)
        corruption = None
        try:
            scan = wal_mod.scan_log(path)
        except WalCorruptionError as exc:
            corruption = exc
            scan = wal_mod.ScanResult(exc.clean_records, exc.offset, 0)
        replayed = self._replay_records(scan.records, applied_lsn)
        last_lsn = scan.records[-1].lsn if scan.records else 0
        self._recovered_lsn = max(applied_lsn, last_lsn)
        self._recovered_dir = data_dir
        if os.path.exists(path) and scan.torn_bytes:
            # a torn tail is the normal crash artifact: cut it off
            wal_mod.truncate_log(path, scan.clean_offset)
        self._finish_recovery()
        self.recovery_report = {
            "checkpoint_lsn": applied_lsn,
            "log_records": len(scan.records),
            "replayed_statements": replayed,
            "torn_bytes": scan.torn_bytes,
            "corrupt": corruption is not None,
        }
        if pages_report is not None:
            pages_report["rebuilt_tables"] = list(self._pages_rebuilt)
            self.recovery_report["pages"] = pages_report
            self._rebuild_scrub_set()
        if corruption is not None:
            if strict:
                corruption.database = self
                raise corruption
            # salvage mode: keep the clean prefix, drop the damage
            wal_mod.truncate_log(path, scan.clean_offset)
        return self

    def _restore_checkpoint(self, body):
        try:
            tables = {}
            if self.page_store is not None:
                pages_meta = (body.get("pages") or {}).get("tables", {})
                for data in body.get("tables", []):
                    table = self._open_paged_table(
                        data, pages_meta.get(data["name"])
                    )
                    tables[table.name] = table
            else:
                for data in body.get("tables", []):
                    table = Table.from_dict(data)
                    tables[table.name] = table
        except (KeyError, TypeError, ValueError) as exc:
            raise WalCorruptionError(
                "checkpoint table snapshot is malformed (%s: %s)"
                % (type(exc).__name__, exc)
            )
        with self.catalog_lock:
            self.tables = tables
            self.schema_version = body.get("schema_version", 0)
        self._clock_ticks = body.get("clock", 0)
        self._rand_seed = body.get("seed", self._rand_seed)
        self._rand = random.Random(self._rand_seed)
        self._rand_calls = 0
        self._fast_forward_rand(body.get("rand", 0))
        self._tx_counter = body.get("tx_counter", 0)
        return body.get("lsn", 0)

    def _open_paged_table(self, data, pages_meta):
        """Re-attach one checkpointed table to its on-disk tree.

        With page metadata the existing tree is adopted and verified
        page-by-page; a checksum failure anywhere falls back to
        rebuilding the tree from the checkpoint's logical rows (the
        corrupt tree's pages are abandoned — they are absent from the
        rebuilt scrub set, so they never alarm again).  Without
        metadata (pre-paged checkpoint) the rows are loaded fresh."""
        if pages_meta is not None:
            table = PagedTable.open(data, self.page_store, pages_meta)
            try:
                table.verify_scan()
                return table
            except PageCorruptionError as exc:
                self._pages_rebuilt.append((data["name"], exc.page_no))
        return PagedTable.from_rows(data, self.page_store)

    def _fast_forward_rand(self, draws):
        while self._rand_calls < draws:
            self._rand.random()
            self._rand_calls += 1

    def _replay_records(self, records, applied_lsn):
        """Apply the committed units of *records* above *applied_lsn*.

        A unit is either one autocommit statement record or the
        statement records of a transaction closed by a commit marker;
        units apply in commit-LSN order.  Rolled-back and unfinished
        transactions contribute nothing.  Records at or below the
        watermark were already captured by the checkpoint and are
        skipped — this is what makes double replay idempotent.

        *records* may be any iterable (including a
        :func:`repro.sqldb.wal.scan_log_stream`): each unit applies as
        soon as its commit record arrives, so memory holds only the
        statements of still-open transactions, never the whole log.
        """
        replayed = 0
        open_tx = {}
        for rec in records:
            if rec.lsn <= applied_lsn:
                continue
            if rec.op == wal_mod.WalRecord.BEGIN:
                open_tx[rec.tx] = []
            elif rec.op == wal_mod.WalRecord.STMT:
                if rec.tx:
                    open_tx.setdefault(rec.tx, []).append(rec)
                else:
                    self._replay_statement(rec)
                    replayed += 1
            elif rec.op == wal_mod.WalRecord.COMMIT:
                for held in open_tx.pop(rec.tx, []):
                    self._replay_statement(held)
                    replayed += 1
            elif rec.op == wal_mod.WalRecord.ROLLBACK:
                open_tx.pop(rec.tx, None)
        return replayed

    def _replay_statement(self, rec):
        """Re-execute one logged statement deterministically.

        Bypasses SEPTIC (the statement already passed the hook when it
        was first executed and logged) and the WAL itself (no WAL is
        attached during recovery).
        """
        self._clock_ticks = rec.clock
        self._fast_forward_rand(rec.rand)
        stmt = _REPLAY_PARSE_MEMO.get(rec.sql)
        if stmt is None:
            try:
                statements, _comments = parse_sql(rec.sql)
            except SQLError as exc:
                raise WalError(
                    "WAL record %d holds unparseable SQL (%s)"
                    % (rec.lsn, exc)
                )
            if len(statements) != 1:
                raise WalError(
                    "WAL record %d does not hold exactly one statement"
                    % rec.lsn
                )
            stmt = statements[0]
            if len(_REPLAY_PARSE_MEMO) < 4096:
                _REPLAY_PARSE_MEMO[rec.sql] = stmt
        try:
            self._executor.execute(stmt, session=self._default_session)
        except ExecutionError as exc:
            if not rec.failed:
                raise WalError(
                    "replay of LSN %d diverged: original succeeded, "
                    "replay raised %s" % (rec.lsn, exc)
                )
        else:
            if rec.failed:
                raise WalError(
                    "replay of LSN %d diverged: original failed, "
                    "replay succeeded" % rec.lsn
                )

    def redo_apply(self, rec):
        """Apply one shipped WAL record through the redo path.

        The replication apply loop's only mutation entry point (a lint
        gate enforces that): identical semantics to recovery replay —
        deterministic clock/RNG restore, SEPTIC bypassed (the statement
        already passed the hook on the primary), the local WAL untouched
        (the applier persists shipped records verbatim itself, keeping
        the primary's LSNs).
        """
        self._replay_statement(rec)

    def note_applied_lsn(self, lsn):
        """Advance the recovered-LSN watermark after a replica applied
        shipped records up to *lsn* (promotion and MVCC stamps stay
        monotone with the primary's log)."""
        if lsn > self._recovered_lsn:
            self._recovered_lsn = lsn
        with self._mvcc_lock:
            self._commit_stamp = max(self._commit_stamp, lsn)

    @classmethod
    def verify_wal(cls, data_dir, name="repro", seed=1):
        """Dry-run recovery: replay *data_dir*'s history into a
        throwaway in-memory database and report on it **without
        mutating anything on disk** — no WAL attach, no torn-tail
        truncation, no checkpoint.

        Returns a report dict: the checkpoint LSN, record counts by
        kind, the commit-LSN watermark (newest durability point —
        everything a client was ever acknowledged about), committed /
        rolled-back / unfinished transaction counts, torn bytes, and
        per-table row counts of the verified state.  Mid-log corruption
        is reported (``corrupt_offset``) rather than raised: the clean
        prefix is still verified.

        The log is consumed through one streaming pass
        (:func:`repro.sqldb.wal.scan_log_stream`): audit stats are
        collected on the records as they flow into replay, so the file
        is never held in memory whole.
        """
        db = cls(name=name, seed=seed, cache_size=0)
        checkpoint = wal_mod.load_checkpoint(data_dir)
        applied_lsn = 0
        if checkpoint is not None:
            applied_lsn = db._restore_checkpoint(checkpoint)
        stream = wal_mod.scan_log_stream(wal_mod.log_path(data_dir))
        stats = {
            "ops": {},
            "commit_lsn": applied_lsn,
            "open_tx": set(),
            "committed": 0,
            "rolled_back": 0,
            "corrupt_offset": None,
        }

        def audited():
            try:
                for rec in stream:
                    ops = stats["ops"]
                    ops[rec.op] = ops.get(rec.op, 0) + 1
                    if rec.op == wal_mod.WalRecord.BEGIN:
                        stats["open_tx"].add(rec.tx)
                    elif rec.op == wal_mod.WalRecord.COMMIT:
                        stats["open_tx"].discard(rec.tx)
                        stats["committed"] += 1
                        stats["commit_lsn"] = max(stats["commit_lsn"],
                                                  rec.lsn)
                    elif rec.op == wal_mod.WalRecord.ROLLBACK:
                        stats["open_tx"].discard(rec.tx)
                        stats["rolled_back"] += 1
                    elif (rec.op == wal_mod.WalRecord.STMT
                            and rec.tx == 0):
                        stats["commit_lsn"] = max(stats["commit_lsn"],
                                                  rec.lsn)
                    yield rec
            except WalCorruptionError as exc:
                stats["corrupt_offset"] = exc.offset

        replayed = db._replay_records(audited(), applied_lsn)
        db._recovered_lsn = max(applied_lsn, stream.last_lsn)
        db._finish_recovery()
        return {
            "data_dir": data_dir,
            "checkpoint_lsn": applied_lsn,
            "log_records": stream.records_seen,
            "records_by_op": stats["ops"],
            "commit_lsn": stats["commit_lsn"],
            "last_lsn": db._recovered_lsn,
            "replayed_statements": replayed,
            "committed_transactions": stats["committed"],
            "rolled_back_transactions": stats["rolled_back"],
            "unfinished_transactions": len(stats["open_tx"]),
            "torn_bytes": stream.torn_bytes,
            "corrupt_offset": stats["corrupt_offset"],
            "tables": {
                tname: len(db.tables[tname])
                for tname in sorted(db.tables)
            },
        }

    def _finish_recovery(self):
        """Recovery epoch: no pipeline-cache entry from before the
        restart may validate against the recovered catalog, so the
        schema version moves past everything replay produced and the
        cache is emptied outright.  Redo rebuilds the *newest* version
        only — replay ran single-session, so the version chains it
        accumulated carry no information a reader could need — and the
        commit counter moves past every recovered LSN so post-recovery
        stamps stay monotone with the log."""
        with self.catalog_lock:
            self.schema_version += 1
            for table in self.tables.values():
                table.reset_mvcc()
        with self._mvcc_lock:
            self._commit_stamp = max(self._commit_stamp,
                                     self._recovered_lsn)
        if self.pipeline_cache is not None:
            self.pipeline_cache.clear()

    # -- query pipeline --------------------------------------------------------

    def run(self, sql, multi=False, charset=None, session=None):
        """Run *sql* through the full pipeline.

        Returns a list of :class:`repro.sqldb.executor.ExecutionResult`,
        one per statement (empty for comment-only/empty input).  With
        ``multi=False`` (the default, matching ``mysql_query``) more than
        one statement raises :class:`MultiStatementError` — the classic
        reason piggy-backed injection fails against the PHP ``mysql_*``
        API.  *session* scopes transaction/LAST_INSERT_ID state; the
        database's default session is used when omitted.
        """
        results, error = self.run_partial(sql, multi=multi, charset=charset,
                                          session=session)
        if error is not None:
            raise error
        return results

    def run_partial(self, sql, multi=False, charset=None, session=None):
        """Like :meth:`run`, but with defined partial-failure semantics.

        Returns ``(results, error)``: the results of every statement
        that executed, plus the :class:`SQLError` (or ``None``) that
        stopped the script.  Execution stops at the first failing
        statement — the ``mysqli_multi_query`` contract — and already
        executed statements stay applied (their effects are the
        session's/transaction's business, not this method's).  Any
        non-SQL exception out of the pipeline machinery is wrapped into
        a :class:`TransientEngineError`, so callers only ever see
        ``SQLError``.
        """
        if session is None:
            session = self._default_session
        effective_charset = charset or session.charset
        cache = self.pipeline_cache
        entry = None
        if cache is not None:
            try:
                entry = cache.get(effective_charset, sql,
                                  self.schema_version)
            except Exception:
                entry = None  # a broken cache degrades to the cold path
        if entry is None:
            try:
                if faults_mod.ACTIVE is not None:
                    faults_mod.fire("charset.decode")
                decoded = charset_mod.decode_query(sql, effective_charset)
                statements, comments = parse_sql(decoded)
            except SQLError as exc:
                return [], exc
            except Exception as exc:
                return [], TransientEngineError(
                    "engine fault while preparing query (%s: %s)"
                    % (type(exc).__name__, exc)
                )
            entry = CacheEntry(decoded, statements, comments)
            if cache is not None:
                # put() returns the winning entry on a racy double-fill,
                # so every thread shares one SEPTIC memo per key
                try:
                    entry = cache.put(
                        effective_charset, sql, self.schema_version, entry
                    )
                except Exception:
                    pass  # cache insertion is best-effort
        if len(entry.statements) > 1 and not multi:
            return [], MultiStatementError(
                "You have an error in your SQL syntax near ';' "
                "(multi-statements are disabled on this connection)"
            )
        # stacks are memoized for single-statement entries only: a
        # multi-statement script may create tables its later statements
        # need, so those validate per execution, mid-script
        memo_entry = (
            entry if cache is not None and entry.single_statement else None
        )
        results = []
        for stmt in entry.statements:
            try:
                results.append(
                    self._run_statement(
                        entry.decoded, stmt, entry.comments,
                        session=session, entry=memo_entry,
                    )
                )
            except SQLError as exc:
                return results, exc
            except Exception as exc:
                return results, TransientEngineError(
                    "engine fault during execution (%s: %s)"
                    % (type(exc).__name__, exc)
                )
        return results, None

    def run_statement(self, statement, comments=(), sql_text=None,
                      session=None, entry=None):
        """Run an already-parsed statement through validation, the SEPTIC
        hook and execution (the prepared-statement execute path).

        *entry* may carry a :class:`~repro.sqldb.cache.CacheEntry` whose
        key pins this exact statement (prepared executions key one per
        ``(statement id, bound params)``): its memoized stack, SEPTIC
        products and physical plan are then reused instead of being
        rebuilt, so a hot bind-and-execute skips validation and
        planning the same way a hot literal query does.
        """
        if sql_text is None:
            from repro.sqldb.unparse import to_sql

            try:
                sql_text = to_sql(statement)
            except TypeError:
                sql_text = "<prepared:%s>" % type(statement).__name__
        return self._run_statement(sql_text, statement, list(comments),
                                   session=session, entry=entry)

    def _run_statement(self, decoded_sql, stmt, comments, session=None,
                       entry=None):
        if session is None:
            session = self._default_session
        with self._stats_lock:
            self.statements_received += 1
        stack = entry.stack if entry is not None else None
        if stack is None:
            with self.catalog_lock:
                stack = validate(stmt, self.tables)
            if entry is not None:
                entry.stack = stack
        context = None
        if self.septic is not None and stack:
            memo = entry.septic_memo if entry is not None else None
            context = QueryContext(decoded_sql, stmt, stack, comments, self,
                                   memo=memo)
            start = time.perf_counter()
            try:
                self.septic.process_query(context)
            except QueryBlocked:
                raise
            except Exception as exc:
                if not self.septic_fail_open:
                    raise ExecutionError(
                        "internal protection error, query not executed "
                        "(%s: %s)" % (type(exc).__name__, exc)
                    )
            finally:
                elapsed = time.perf_counter() - start
                with self._stats_lock:
                    self.septic_seconds_total += elapsed
        # injected faults fire *before* execution: a statement the fault
        # kills never ran, so it must never reach the WAL either
        try:
            if faults_mod.ACTIVE is not None:
                faults_mod.fire("executor.step")
        except SQLError:
            raise
        except Exception as exc:
            raise TransientEngineError(
                "engine fault during execution (%s: %s)"
                % (type(exc).__name__, exc)
            )
        # plan before locking: the physical plan decides which tables
        # the statement holds (prepare is a catalog read, so it runs
        # under the short catalog guard, not the statement locks)
        try:
            with self.catalog_lock:
                prepared = self._executor.prepare(stmt, entry=entry)
        except SQLError:
            raise
        except Exception as exc:
            raise TransientEngineError(
                "engine fault during planning (%s: %s)"
                % (type(exc).__name__, exc)
            )
        plan = self._lock_plan_for(stmt, prepared=prepared)
        if plan is not None:
            self.lock_manager.acquire(plan)
        try:
            wal_state = None
            if wal_mod.ATTACHED and self._wal is not None:
                wal_state = self._wal_prepare(stmt, session)
            try:
                result = self._executor.execute(
                    stmt, session=session, prepared=prepared,
                    query_context=context,
                )
            except ExecutionError:
                # the statement failed but may have had partial effects
                # (multi-row INSERT keeps the rows before the failing
                # one): log it as failed so replay reproduces them
                if wal_state is not None:
                    self._wal_log(wal_state, session, failed=True)
                raise
            except SQLError:
                raise
            except Exception as exc:
                raise TransientEngineError(
                    "engine fault during execution (%s: %s)"
                    % (type(exc).__name__, exc)
                )
            if wal_state is not None:
                self._wal_log(wal_state, session, failed=False)
        finally:
            if plan is not None:
                self.lock_manager.release(plan)
        with self._stats_lock:
            self.statements_executed += 1
        if result.last_insert_id is not None:
            session.last_insert_id = result.last_insert_id
        if self.log_stage_timings and context is not None:
            self._log_stage_timings(decoded_sql, context)
        return result

    def _log_stage_timings(self, sql_text, context):
        """Opt-in per-stage timing event (virtual-clock ticks and
        rows-in/rows-out per operator).  Best-effort observability:
        never allowed to fail a statement that already executed."""
        stats = context.stage_stats
        if stats is None or self.septic is None:
            return
        logger = getattr(self.septic, "logger", None)
        if logger is None:
            return
        try:
            logger.log(EventKind.STAGE_TIMING, query=sql_text,
                       detail=stats.render_timings())
        except Exception:
            pass

    # -- convenience -------------------------------------------------------------

    def seed(self, script):
        """Run a multi-statement SQL script (DDL + seed data), bypassing
        nothing: every statement goes through the normal pipeline."""
        return self.run(script, multi=True)
