"""The database server object and its SEPTIC hook point.

:class:`Database` implements the MySQL-like processing pipeline::

    raw SQL --charset decode--> parse --> validate (item stack)
            --> [SEPTIC hook] --> execute

The hook sits *after* all query modifications (charset decoding, version
comment expansion, escape processing) and *before* execution — the exact
placement the paper requires so that SEPTIC sees queries the way they will
actually run, closing the semantic mismatch.

Two scale-oriented layers sit around that pipeline:

* a **pipeline cache** (:mod:`repro.sqldb.cache`): the decode/parse/
  validate products of each distinct ``(charset, raw SQL)`` pair are
  memoized per catalog :attr:`~Database.schema_version`, so repeated
  query shapes skip straight to the SEPTIC hook and the executor.  DDL
  bumps the schema version, which invalidates by construction;
* a **per-session execution layer** (:class:`Session`): connection-scoped
  state — the open transaction snapshot, the connection charset and
  ``LAST_INSERT_ID()`` — lives on a session object created per
  connection, so one server instance can serve concurrent clients
  without sharing what MySQL scopes per connection.
"""

import random
import threading
import time
from datetime import datetime, timedelta

from repro import faults as faults_mod
from repro.sqldb import charset as charset_mod
from repro.sqldb.cache import CacheEntry, PipelineCache
from repro.sqldb.errors import (
    ExecutionError,
    MultiStatementError,
    QueryBlocked,
    SQLError,
    TransientEngineError,
)
from repro.sqldb.executor import Executor
from repro.sqldb.parser import parse_sql
from repro.sqldb.storage import Table
from repro.sqldb.validator import validate


class QueryContext(object):
    """Everything SEPTIC's hook receives about one statement."""

    __slots__ = ("sql", "statement", "stack", "comments", "database",
                 "memo")

    def __init__(self, sql, statement, stack, comments, database,
                 memo=None):
        #: the decoded query text (post charset decoding)
        self.sql = sql
        #: the parsed AST statement
        self.statement = statement
        #: the validated item stack (bottom → top)
        self.stack = stack
        #: comment bodies found in the query (external ID channel)
        self.comments = comments
        self.database = database
        #: pipeline-cache memo slot (:class:`repro.sqldb.cache.SepticMemo`)
        #: the QS&QM manager fills on first sight; ``None`` when uncached
        self.memo = memo

    @property
    def command(self):
        return type(self.statement).__name__.upper()


class Session(object):
    """Per-connection server-side state (what MySQL scopes per session).

    Holds the connection charset, ``LAST_INSERT_ID()`` and the open
    transaction snapshot.  :class:`repro.sqldb.connection.Connection`
    creates one per connection; callers that talk to the
    :class:`Database` directly use its default session.
    """

    __slots__ = ("database", "charset", "last_insert_id", "_tx_snapshot")

    def __init__(self, database, charset=None):
        self.database = database
        self.charset = charset or database.charset
        self.last_insert_id = 0
        self._tx_snapshot = None

    # -- transactions ----------------------------------------------------
    #
    # Snapshot semantics: BEGIN copies the catalog and every table's
    # rows; ROLLBACK restores both (tables created mid-transaction
    # vanish, tables dropped mid-transaction come back with their rows);
    # COMMIT discards the snapshot.  A BEGIN inside an open transaction
    # implicitly commits it (MySQL behaviour).

    def begin(self):
        if self._tx_snapshot is not None:
            self.commit()  # implicit commit, like MySQL
        db = self.database
        with db.catalog_lock:
            catalog = dict(db.tables)
            rows = {}
            for name, table in catalog.items():
                rows[name] = (
                    [dict(row) for row in table.rows],
                    table._auto_counter,
                )
        self._tx_snapshot = (catalog, rows)
        db._tx_sessions.add(self)

    def commit(self):
        self._tx_snapshot = None
        self.database._tx_sessions.discard(self)

    def rollback(self):
        snapshot = self._tx_snapshot
        if snapshot is None:
            return  # ROLLBACK outside a transaction is a no-op
        catalog, rows = snapshot
        db = self.database
        with db.catalog_lock:
            catalog_changed = set(db.tables) != set(catalog)
            # restore the catalog: tables created mid-transaction are
            # dropped, tables dropped mid-transaction reappear
            db.tables = dict(catalog)
            for name, (saved_rows, auto) in rows.items():
                table = db.tables[name]
                table.rows = [dict(row) for row in saved_rows]
                table._auto_counter = auto
                table.touch()
            if catalog_changed:
                db.bump_schema_version()
        self._tx_snapshot = None
        db._tx_sessions.discard(self)

    @property
    def in_transaction(self):
        return self._tx_snapshot is not None


class Database(object):
    """An in-memory database server instance.

    ``septic`` may be set to any object exposing
    ``process_query(QueryContext)`` — normally a
    :class:`repro.core.septic.Septic` instance.  When it raises
    :class:`repro.sqldb.errors.QueryBlocked` the statement is dropped.

    ``cache_size`` sizes the query-pipeline cache (LRU entries); ``0``
    disables caching entirely (every statement re-decodes, re-parses and
    re-validates — the cold path, kept for benchmarks and ablations).
    """

    #: virtual clock start, kept fixed for reproducibility
    _EPOCH = "2016-07-05 12:00:00"

    def __init__(self, name="repro", septic=None, charset="utf8", seed=1,
                 septic_fail_open=False, cache_size=512):
        self.name = name
        #: policy when the SEPTIC hook itself crashes (not a QueryBlocked):
        #: fail-closed (default) re-raises and the query does not execute;
        #: fail-open logs nothing and lets the query through — the classic
        #: availability-vs-security trade-off, exposed for testing.
        self.septic_fail_open = septic_fail_open
        self.version = "5.7.16-repro"
        self.user = "webapp@localhost"
        self.tables = {}
        #: bumped by every DDL change; part of the pipeline-cache key, so
        #: cached validations of the old catalog stop matching instantly
        self.schema_version = 0
        #: guards the catalog (``tables`` and ``schema_version``) against
        #: concurrent DDL/validation/transaction snapshots
        self.catalog_lock = threading.RLock()
        self.septic = septic
        self.charset = charset
        self._executor = Executor(self)
        self._rand = random.Random(seed)
        self._clock_ticks = 0
        self._clock_lock = threading.Lock()
        self._epoch_moment = datetime.strptime(
            self._EPOCH, "%Y-%m-%d %H:%M:%S"
        )
        #: the query-pipeline cache (``None`` when disabled)
        self.pipeline_cache = (
            PipelineCache(cache_size) if cache_size else None
        )
        #: the session used when a caller does not bring its own
        self._default_session = Session(self, charset)
        #: sessions currently holding an open transaction (any session)
        self._tx_sessions = set()
        self._stats_lock = threading.Lock()
        #: count of statements actually executed (not dropped)
        self.statements_executed = 0
        #: count of statements that entered the pipeline (incl. dropped)
        self.statements_received = 0
        #: cumulative wall-clock seconds spent inside the SEPTIC hook
        #: (measured live; the BenchLab harness reads this)
        self.septic_seconds_total = 0.0

    # -- sessions ----------------------------------------------------------

    @property
    def default_session(self):
        return self._default_session

    def create_session(self, charset=None):
        """A fresh :class:`Session` (one per client connection)."""
        return Session(self, charset)

    #: per-connection state kept reachable through the server object for
    #: callers that treat the Database as a single-client engine
    @property
    def last_insert_id(self):
        return self._default_session.last_insert_id

    @last_insert_id.setter
    def last_insert_id(self, value):
        self._default_session.last_insert_id = value

    # -- catalog -----------------------------------------------------------

    def create_table(self, name, columns):
        table = Table(name, columns)
        with self.catalog_lock:
            self.tables[table.name] = table
            self.schema_version += 1
        return table

    def drop_table(self, name):
        with self.catalog_lock:
            del self.tables[name.lower()]
            self.schema_version += 1

    def bump_schema_version(self):
        """Record a catalog change done in place (ALTER TABLE paths)."""
        with self.catalog_lock:
            self.schema_version += 1

    def table(self, name):
        table = self.tables.get(name.lower())
        if table is None:
            raise ExecutionError(
                "Table '%s.%s' doesn't exist" % (self.name, name), errno=1146
            )
        return table

    # -- transactions ----------------------------------------------------
    #
    # Delegates of the default session, for direct-engine callers.

    def begin(self):
        self._default_session.begin()

    def commit(self):
        self._default_session.commit()

    def rollback(self):
        self._default_session.rollback()

    @property
    def in_transaction(self):
        """True while *any* session holds an open transaction."""
        return bool(self._tx_sessions)

    # -- environment ---------------------------------------------------------

    def now(self):
        """Deterministic virtual clock (advances one second per call,
        with proper day/month rollover — it never runs backwards)."""
        with self._clock_lock:
            self._clock_ticks += 1
            ticks = self._clock_ticks
        moment = self._epoch_moment + timedelta(seconds=ticks)
        return moment.strftime("%Y-%m-%d %H:%M:%S")

    def rand(self):
        return self._rand.random()

    # -- query pipeline --------------------------------------------------------

    def run(self, sql, multi=False, charset=None, session=None):
        """Run *sql* through the full pipeline.

        Returns a list of :class:`repro.sqldb.executor.ExecutionResult`,
        one per statement (empty for comment-only/empty input).  With
        ``multi=False`` (the default, matching ``mysql_query``) more than
        one statement raises :class:`MultiStatementError` — the classic
        reason piggy-backed injection fails against the PHP ``mysql_*``
        API.  *session* scopes transaction/LAST_INSERT_ID state; the
        database's default session is used when omitted.
        """
        results, error = self.run_partial(sql, multi=multi, charset=charset,
                                          session=session)
        if error is not None:
            raise error
        return results

    def run_partial(self, sql, multi=False, charset=None, session=None):
        """Like :meth:`run`, but with defined partial-failure semantics.

        Returns ``(results, error)``: the results of every statement
        that executed, plus the :class:`SQLError` (or ``None``) that
        stopped the script.  Execution stops at the first failing
        statement — the ``mysqli_multi_query`` contract — and already
        executed statements stay applied (their effects are the
        session's/transaction's business, not this method's).  Any
        non-SQL exception out of the pipeline machinery is wrapped into
        a :class:`TransientEngineError`, so callers only ever see
        ``SQLError``.
        """
        if session is None:
            session = self._default_session
        effective_charset = charset or session.charset
        cache = self.pipeline_cache
        entry = None
        if cache is not None:
            try:
                entry = cache.get(effective_charset, sql,
                                  self.schema_version)
            except Exception:
                entry = None  # a broken cache degrades to the cold path
        if entry is None:
            try:
                if faults_mod.ACTIVE is not None:
                    faults_mod.fire("charset.decode")
                decoded = charset_mod.decode_query(sql, effective_charset)
                statements, comments = parse_sql(decoded)
            except SQLError as exc:
                return [], exc
            except Exception as exc:
                return [], TransientEngineError(
                    "engine fault while preparing query (%s: %s)"
                    % (type(exc).__name__, exc)
                )
            entry = CacheEntry(decoded, statements, comments)
            if cache is not None:
                # put() returns the winning entry on a racy double-fill,
                # so every thread shares one SEPTIC memo per key
                try:
                    entry = cache.put(
                        effective_charset, sql, self.schema_version, entry
                    )
                except Exception:
                    pass  # cache insertion is best-effort
        if len(entry.statements) > 1 and not multi:
            return [], MultiStatementError(
                "You have an error in your SQL syntax near ';' "
                "(multi-statements are disabled on this connection)"
            )
        # stacks are memoized for single-statement entries only: a
        # multi-statement script may create tables its later statements
        # need, so those validate per execution, mid-script
        memo_entry = (
            entry if cache is not None and entry.single_statement else None
        )
        results = []
        for stmt in entry.statements:
            try:
                results.append(
                    self._run_statement(
                        entry.decoded, stmt, entry.comments,
                        session=session, entry=memo_entry,
                    )
                )
            except SQLError as exc:
                return results, exc
            except Exception as exc:
                return results, TransientEngineError(
                    "engine fault during execution (%s: %s)"
                    % (type(exc).__name__, exc)
                )
        return results, None

    def run_statement(self, statement, comments=(), sql_text=None,
                      session=None):
        """Run an already-parsed statement through validation, the SEPTIC
        hook and execution (the prepared-statement execute path)."""
        if sql_text is None:
            from repro.sqldb.unparse import to_sql

            try:
                sql_text = to_sql(statement)
            except TypeError:
                sql_text = "<prepared:%s>" % type(statement).__name__
        return self._run_statement(sql_text, statement, list(comments),
                                   session=session)

    def _run_statement(self, decoded_sql, stmt, comments, session=None,
                       entry=None):
        if session is None:
            session = self._default_session
        with self._stats_lock:
            self.statements_received += 1
        stack = entry.stack if entry is not None else None
        if stack is None:
            with self.catalog_lock:
                stack = validate(stmt, self.tables)
            if entry is not None:
                entry.stack = stack
        if self.septic is not None and stack:
            memo = entry.septic_memo if entry is not None else None
            context = QueryContext(decoded_sql, stmt, stack, comments, self,
                                   memo=memo)
            start = time.perf_counter()
            try:
                self.septic.process_query(context)
            except QueryBlocked:
                raise
            except Exception as exc:
                if not self.septic_fail_open:
                    raise ExecutionError(
                        "internal protection error, query not executed "
                        "(%s: %s)" % (type(exc).__name__, exc)
                    )
            finally:
                elapsed = time.perf_counter() - start
                with self._stats_lock:
                    self.septic_seconds_total += elapsed
        try:
            if faults_mod.ACTIVE is not None:
                faults_mod.fire("executor.step")
            result = self._executor.execute(stmt, session=session)
        except SQLError:
            raise
        except Exception as exc:
            raise TransientEngineError(
                "engine fault during execution (%s: %s)"
                % (type(exc).__name__, exc)
            )
        with self._stats_lock:
            self.statements_executed += 1
        if result.last_insert_id is not None:
            session.last_insert_id = result.last_insert_id
        return result

    # -- convenience -------------------------------------------------------------

    def seed(self, script):
        """Run a multi-statement SQL script (DDL + seed data), bypassing
        nothing: every statement goes through the normal pipeline."""
        return self.run(script, multi=True)
