"""The database server object and its SEPTIC hook point.

:class:`Database` implements the MySQL-like processing pipeline::

    raw SQL --charset decode--> parse --> validate (item stack)
            --> [SEPTIC hook] --> execute

The hook sits *after* all query modifications (charset decoding, version
comment expansion, escape processing) and *before* execution — the exact
placement the paper requires so that SEPTIC sees queries the way they will
actually run, closing the semantic mismatch.
"""

import random
import time

from repro.sqldb import charset as charset_mod
from repro.sqldb.errors import (
    ExecutionError,
    MultiStatementError,
    QueryBlocked,
)
from repro.sqldb.executor import Executor
from repro.sqldb.parser import parse_sql
from repro.sqldb.storage import Table
from repro.sqldb.validator import validate


class QueryContext(object):
    """Everything SEPTIC's hook receives about one statement."""

    __slots__ = ("sql", "statement", "stack", "comments", "database")

    def __init__(self, sql, statement, stack, comments, database):
        #: the decoded query text (post charset decoding)
        self.sql = sql
        #: the parsed AST statement
        self.statement = statement
        #: the validated item stack (bottom → top)
        self.stack = stack
        #: comment bodies found in the query (external ID channel)
        self.comments = comments
        self.database = database

    @property
    def command(self):
        return type(self.statement).__name__.upper()


class Database(object):
    """An in-memory database server instance.

    ``septic`` may be set to any object exposing
    ``process_query(QueryContext)`` — normally a
    :class:`repro.core.septic.Septic` instance.  When it raises
    :class:`repro.sqldb.errors.QueryBlocked` the statement is dropped.
    """

    #: virtual clock start, kept fixed for reproducibility
    _EPOCH = "2016-07-05 12:00:00"

    def __init__(self, name="repro", septic=None, charset="utf8", seed=1,
                 septic_fail_open=False):
        self.name = name
        #: policy when the SEPTIC hook itself crashes (not a QueryBlocked):
        #: fail-closed (default) re-raises and the query does not execute;
        #: fail-open logs nothing and lets the query through — the classic
        #: availability-vs-security trade-off, exposed for testing.
        self.septic_fail_open = septic_fail_open
        self.version = "5.7.16-repro"
        self.user = "webapp@localhost"
        self.tables = {}
        self.septic = septic
        self.charset = charset
        self.last_insert_id = 0
        self._executor = Executor(self)
        self._rand = random.Random(seed)
        self._clock_ticks = 0
        #: count of statements actually executed (not dropped)
        self.statements_executed = 0
        #: count of statements that entered the pipeline (incl. dropped)
        self.statements_received = 0
        #: cumulative wall-clock seconds spent inside the SEPTIC hook
        #: (measured live; the BenchLab harness reads this)
        self.septic_seconds_total = 0.0

    # -- catalog -----------------------------------------------------------

    def create_table(self, name, columns):
        table = Table(name, columns)
        self.tables[table.name] = table
        return table

    def table(self, name):
        table = self.tables.get(name.lower())
        if table is None:
            raise ExecutionError(
                "Table '%s.%s' doesn't exist" % (self.name, name), errno=1146
            )
        return table

    # -- transactions ----------------------------------------------------
    #
    # Single-session transactions with snapshot semantics: BEGIN copies
    # every table's rows; ROLLBACK restores the copies; COMMIT discards
    # them.  A BEGIN inside an open transaction implicitly commits it
    # (MySQL behaviour).

    def begin(self):
        if getattr(self, "_tx_snapshot", None) is not None:
            self.commit()  # implicit commit, like MySQL
        snapshot = {}
        for name, table in self.tables.items():
            snapshot[name] = (
                [dict(row) for row in table.rows],
                table._auto_counter,
            )
        self._tx_snapshot = snapshot

    def commit(self):
        self._tx_snapshot = None

    def rollback(self):
        snapshot = getattr(self, "_tx_snapshot", None)
        if snapshot is None:
            return  # ROLLBACK outside a transaction is a no-op
        for name, (rows, auto) in snapshot.items():
            table = self.tables.get(name)
            if table is not None:
                table.rows = [dict(row) for row in rows]
                table._auto_counter = auto
                table.touch()
        self._tx_snapshot = None

    @property
    def in_transaction(self):
        return getattr(self, "_tx_snapshot", None) is not None

    # -- environment ---------------------------------------------------------

    def now(self):
        """Deterministic virtual clock (advances one second per call)."""
        self._clock_ticks += 1
        base_seconds = self._clock_ticks
        minutes, seconds = divmod(base_seconds, 60)
        hours, minutes = divmod(minutes, 60)
        return "2016-07-05 %02d:%02d:%02d" % (12 + hours % 12, minutes,
                                              seconds)

    def rand(self):
        return self._rand.random()

    # -- query pipeline --------------------------------------------------------

    def run(self, sql, multi=False, charset=None):
        """Run *sql* through the full pipeline.

        Returns a list of :class:`repro.sqldb.executor.ExecutionResult`,
        one per statement.  With ``multi=False`` (the default, matching
        ``mysql_query``) more than one statement raises
        :class:`MultiStatementError` — the classic reason piggy-backed
        injection fails against the PHP ``mysql_*`` API.
        """
        decoded = charset_mod.decode_query(sql, charset or self.charset)
        statements, comments = parse_sql(decoded)
        if len(statements) > 1 and not multi:
            raise MultiStatementError(
                "You have an error in your SQL syntax near ';' "
                "(multi-statements are disabled on this connection)"
            )
        results = []
        for stmt in statements:
            results.append(
                self._run_statement(decoded, stmt, comments)
            )
        return results

    def run_statement(self, statement, comments=(), sql_text=None):
        """Run an already-parsed statement through validation, the SEPTIC
        hook and execution (the prepared-statement execute path)."""
        if sql_text is None:
            from repro.sqldb.unparse import to_sql

            try:
                sql_text = to_sql(statement)
            except TypeError:
                sql_text = "<prepared:%s>" % type(statement).__name__
        return self._run_statement(sql_text, statement, list(comments))

    def _run_statement(self, decoded_sql, stmt, comments):
        self.statements_received += 1
        stack = validate(stmt, self.tables)
        if self.septic is not None and stack:
            context = QueryContext(decoded_sql, stmt, stack, comments, self)
            start = time.perf_counter()
            try:
                self.septic.process_query(context)
            except QueryBlocked:
                raise
            except Exception as exc:
                if not self.septic_fail_open:
                    raise ExecutionError(
                        "internal protection error, query not executed "
                        "(%s: %s)" % (type(exc).__name__, exc)
                    )
            finally:
                self.septic_seconds_total += time.perf_counter() - start
        result = self._executor.execute(stmt)
        self.statements_executed += 1
        if result.last_insert_id is not None:
            self.last_insert_id = result.last_insert_id
        return result

    # -- convenience -------------------------------------------------------------

    def seed(self, script):
        """Run a multi-statement SQL script (DDL + seed data), bypassing
        nothing: every statement goes through the normal pipeline."""
        return self.run(script, multi=True)
