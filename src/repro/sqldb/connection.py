"""Client-side connection object (the DBMS client connector).

The paper's *client diversity* / *no client configuration* features mean
any connector talks to a SEPTIC-enabled server unchanged; this class is
that connector.  It mirrors the PHP ``mysqli``/``mysql_*`` surface the demo
applications use:

* ``query()`` — single statement only (``CLIENT_MULTI_STATEMENTS`` off);
* ``multi_query()`` — the opt-in multi-statement API;
* ``escape_string()`` — client-side ``mysql_real_escape_string``;
* per-connection charset (what makes the GBK escape-eating attack work).
"""

import random
import time
from collections import OrderedDict

from repro.core.resilience import RetryStats
from repro.sqldb import charset as charset_mod
from repro.sqldb.errors import (
    ExecutionError,
    QueryBlocked,
    SQLError,
    TransientEngineError,
)


class QueryOutcome(object):
    """What the client sees back from one ``query()`` call."""

    __slots__ = ("result_set", "affected_rows", "error", "sleep_seconds")

    def __init__(self, result_set=None, affected_rows=0, error=None,
                 sleep_seconds=0.0):
        self.result_set = result_set
        self.affected_rows = affected_rows
        self.error = error
        self.sleep_seconds = sleep_seconds

    @property
    def ok(self):
        return self.error is None

    @property
    def rows(self):
        return [] if self.result_set is None else self.result_set.rows

    def __repr__(self):
        if self.error is not None:
            return "QueryOutcome(error=%r)" % str(self.error)
        if self.result_set is not None:
            return "QueryOutcome(%d rows)" % len(self.result_set)
        return "QueryOutcome(affected=%d)" % self.affected_rows


class Connection(object):
    """A client connection to a :class:`repro.sqldb.engine.Database`."""

    #: default cap on the server-side statement registry (MySQL's
    #: ``max_prepared_stmt_count`` is global; ours is per connection)
    MAX_STATEMENTS = 64

    def __init__(self, database, charset=None, multi_statements=False,
                 retries=0, backoff=0.0, backoff_cap=2.0, jitter=0.5,
                 retry_seed=0, sleep=None, max_statements=None):
        self._db = database
        self.charset = charset or database.charset
        self.multi_statements = multi_statements
        self.last_error = None
        #: retry budget for *transient* engine faults (never for
        #: deterministic SQL errors, never for SEPTIC blocks)
        self.retries = retries
        #: base delay for exponential backoff between retries, seconds
        self.backoff = backoff
        #: ceiling on one backoff delay (before jitter) — the doubling
        #: is capped so a deep retry never sleeps unboundedly
        self.backoff_cap = backoff_cap
        #: jitter fraction: each delay is scaled by a seeded-random
        #: factor in ``[1, 1 + jitter]`` so retrying clients de-correlate
        #: instead of stampeding the engine in lockstep (0 disables)
        self.jitter = jitter
        #: seeded RNG driving the jitter — same seed, same delays, so
        #: retry schedules are reproducible run to run
        self._retry_rng = random.Random(retry_seed)
        self._sleep = sleep if sleep is not None else time.sleep
        #: how many transient-fault retries this connection has issued
        self.transient_retries = 0
        #: per-connection retry counters; every bump is mirrored into
        #: ``database.retry_stats`` (the aggregate Septic.status() shows)
        self.retry_stats = RetryStats()
        #: server-side per-connection state (transactions, insert id)
        self._session = database.create_session(self.charset)
        #: server-side prepared-statement registry: the ids handed to
        #: wire clients (COM_STMT_PREPARE/EXECUTE/CLOSE), scoped to this
        #: connection like MySQL's statement handles.  Bounded: least-
        #: recently-used handles are evicted once *max_statements* are
        #: registered (a long-lived connection preparing per-request
        #: statements used to grow this without limit), and an evicted
        #: id behaves exactly like a closed one — errno 1243 on EXECUTE.
        self._statements = OrderedDict()
        self.max_statements = (self.MAX_STATEMENTS if max_statements
                               is None else max(1, int(max_statements)))
        #: handles dropped by the LRU cap (the net server aggregates
        #: this into its stats, surfaced via ``Septic.status()["net"]``)
        self.statement_evictions = 0

    @property
    def database(self):
        return self._db

    @property
    def session(self):
        return self._session

    @property
    def last_insert_id(self):
        return self._session.last_insert_id

    def escape_string(self, value):
        """``mysql_real_escape_string`` equivalent (see the charset module
        for what it cannot protect against)."""
        return charset_mod.escape_string(value)

    def _bump(self, counter, amount=1):
        """Mirror one retry counter into the per-connection stats and
        the database-wide aggregate."""
        self.retry_stats.bump(counter, amount)
        aggregate = getattr(self._db, "retry_stats", None)
        if aggregate is not None:
            aggregate.bump(counter, amount)

    def next_backoff(self, attempt):
        """The delay before retry *attempt* (1-based): capped
        exponential growth from :attr:`backoff`, scaled by a seeded
        jitter factor in ``[1, 1 + jitter]``.  Deterministic per
        connection seed — tests and the DES replay identical
        schedules."""
        base = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        if self.jitter:
            base *= 1.0 + self.jitter * self._retry_rng.random()
        return base

    def _guarded(self, runner):
        """Run *runner* (→ ``(results, error)``) under the connection's
        error contract: the caller always gets back ``(results, error)``
        where *error* is ``None`` or a real :class:`SQLError` — raw
        exceptions never escape to application code.

        Transient faults (``error.transient``) that produced **no**
        partial results are retried up to :attr:`retries` times with
        exponential backoff.  SEPTIC blocks are verdicts, not faults:
        they are never retried.  Partial multi-statement failures are
        never retried either — the executed prefix already took effect.

        :class:`~repro.sqldb.errors.WriteConflictError` (first-writer-
        wins under snapshot isolation) rides this same path: the engine
        checks for conflicts before touching any row, so a retried
        autocommit statement never double-applies.  Inside an explicit
        transaction a retry keeps the transaction's original snapshot
        and will conflict again — MySQL's errno 1213 advice applies:
        roll back and restart the whole transaction.
        """
        attempt = 0
        while True:
            try:
                results, error = runner()
            except QueryBlocked as exc:
                return [], exc
            except SQLError as exc:
                results, error = [], exc
            except Exception as exc:  # engine bug / injected fault
                results, error = [], TransientEngineError(
                    "lost connection to engine during query (%s: %s)"
                    % (type(exc).__name__, exc)
                )
            transient = (
                error is not None
                and getattr(error, "transient", False)
                and not isinstance(error, QueryBlocked)
            )
            if error is None or not transient:
                return results, error
            if attempt == 0:
                self._bump("attempts")
            if results or attempt >= self.retries:
                # partial results make a retry unsafe; otherwise the
                # budget is spent (or was zero to begin with)
                if attempt >= 1:
                    self._bump("exhausted")
                else:
                    self._bump("gave_up")
                return results, error
            attempt += 1
            self.transient_retries += 1
            self._bump("retries")
            if self.backoff:
                delay = self.next_backoff(attempt)
                self.retry_stats.add_backoff(delay)
                aggregate = getattr(self._db, "retry_stats", None)
                if aggregate is not None:
                    aggregate.add_backoff(delay)
                self._sleep(delay)

    def query(self, sql):
        """Run one statement; returns a :class:`QueryOutcome`.

        Errors (including SEPTIC blocks) are captured, not raised — like
        ``mysql_query`` returning ``FALSE`` and setting ``mysql_error``.
        Transient engine faults are retried per the connection's retry
        budget before being reported.
        """
        results, error = self._guarded(
            lambda: self._db.run_partial(
                sql, multi=self.multi_statements, charset=self.charset,
                session=self._session,
            )
        )
        self.last_error = error
        if error is not None:
            return QueryOutcome(error=error)
        if not results:
            # comment-only or empty input: nothing executed, no error —
            # like mysql_query on a query that is all whitespace/comments
            return QueryOutcome()
        last = results[-1]
        return QueryOutcome(
            result_set=last.result_set,
            affected_rows=last.affected_rows,
            sleep_seconds=sum(r.sleep_seconds for r in results),
        )

    def multi_query(self, sql):
        """Run several ``;``-separated statements (opt-in, like
        ``mysqli_multi_query``).  Returns a list of outcomes.

        Stop-on-first-error semantics: every statement that executed
        before the failure gets its own ok outcome, the failing
        statement gets an error outcome, and nothing after it runs —
        matching ``mysqli_multi_query``'s contract of processing results
        until the first failing statement.
        """
        results, error = self._guarded(
            lambda: self._db.run_partial(
                sql, multi=True, charset=self.charset,
                session=self._session,
            )
        )
        self.last_error = error
        outcomes = [
            QueryOutcome(
                result_set=r.result_set,
                affected_rows=r.affected_rows,
                sleep_seconds=r.sleep_seconds,
            )
            for r in results
        ]
        if error is not None:
            outcomes.append(QueryOutcome(error=error))
        elif not outcomes:
            outcomes.append(QueryOutcome())
        return outcomes

    def prepare(self, sql):
        """Prepare a single statement with ``?`` placeholders.

        Returns a :class:`repro.sqldb.prepared.PreparedStatement`; its
        ``execute(*params)`` binds values through the binary protocol —
        after charset decoding, so none of the decoding quirks apply to
        parameter contents.
        """
        from repro.sqldb.prepared import parse_prepared

        return parse_prepared(self._db, sql, self.charset,
                              session=self._session)

    def execute_prepared(self, prepared, *params):
        """Execute a prepared statement, returning a
        :class:`QueryOutcome` (errors captured like :meth:`query`)."""
        try:
            result = prepared.execute(*params)
        except SQLError as exc:
            self.last_error = exc
            return QueryOutcome(error=exc)
        except Exception as exc:  # engine bug / injected fault
            error = TransientEngineError(
                "lost connection to engine during query (%s: %s)"
                % (type(exc).__name__, exc)
            )
            self.last_error = error
            return QueryOutcome(error=error)
        self.last_error = None
        return QueryOutcome(
            result_set=result.result_set,
            affected_rows=result.affected_rows,
            sleep_seconds=result.sleep_seconds,
        )

    # -- the server-side statement registry ------------------------------
    #
    # The wire protocol's statement surface: prepare hands out an id,
    # execute/close take one back.  Ids come from the statement itself
    # (process-unique), so a stale id from a bounced connection can
    # never alias a live statement on another.

    def prepare_statement(self, sql):
        """Server-side COM_STMT_PREPARE: parse once, register, and
        return ``(statement_id, param_count)``.  Raises
        :class:`~repro.sqldb.errors.SQLError` on a malformed statement
        (the wire server turns that into an ERR frame)."""
        prepared = self.prepare(sql)
        self._statements[prepared.statement_id] = prepared
        while len(self._statements) > self.max_statements:
            self._statements.popitem(last=False)
            self.statement_evictions += 1
        return prepared.statement_id, prepared.param_count

    def execute_statement(self, statement_id, params=()):
        """Server-side COM_STMT_EXECUTE: bind and run a registered
        statement, returning a :class:`QueryOutcome` (errors captured
        like :meth:`query`)."""
        prepared = self._statements.get(statement_id)
        if prepared is None:
            error = ExecutionError(
                "Unknown prepared statement handler (%s) given to "
                "EXECUTE" % statement_id, errno=1243,
            )
            self.last_error = error
            return QueryOutcome(error=error)
        self._statements.move_to_end(statement_id)
        return self.execute_prepared(prepared, *params)

    def close_statement(self, statement_id):
        """Server-side COM_STMT_CLOSE (idempotent); returns whether the
        id was registered."""
        return self._statements.pop(statement_id, None) is not None

    @property
    def open_statements(self):
        """Registered statement ids (the net counters report the len)."""
        return tuple(self._statements)

    # -- transactions ----------------------------------------------------
    #
    # Conveniences over the session, mirroring mysqli's begin_transaction /
    # commit / rollback.  With a WAL attached, commit() is the durability
    # point: it returns only after the commit marker is on disk (per the
    # WAL's sync mode).

    def begin(self):
        self._session.begin()

    def commit(self):
        self._session.commit()

    def rollback(self):
        self._session.rollback()

    @property
    def in_transaction(self):
        return self._session.in_transaction

    def query_or_raise(self, sql):
        """Run one statement, raising on error (admin/seed convenience)."""
        outcome = self.query(sql)
        if not outcome.ok:
            raise outcome.error
        return outcome
