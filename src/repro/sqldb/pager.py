"""Paged storage: checksummed pages, doublewrite, buffer pool, scrubber.

This module owns **all table-data file I/O** (a lint gate enforces it,
the same discipline :mod:`repro.sqldb.wal` applies to the WAL files).
Three files live in a data directory:

``pages.db`` (the *home* file)
    Fixed-size slotted pages, each carrying a CRC32 over the **entire**
    page (header-sans-crc + payload + padding, so any single bit flip is
    detectable), the page's LSN, its own page number and a magic.  The
    home file is only ever written during a checkpoint, so between
    checkpoints it is exactly the last checkpoint's image — which is
    what lets recovery replay the WAL's *logical* statements on top of
    it without double-applying anything.

``doublewrite.db``
    Torn-write protection.  A checkpoint first writes every dirty page
    image here, seals the batch with an id + CRC footer-at-offset-0 and
    fsyncs, and only then lets the checkpoint JSON reference the batch
    and the home writes begin.  Recovery applies the doublewrite copy
    over the home file **only when the sealed batch id matches the id
    the surviving checkpoint references** — whichever of the two files
    a crash tore, the other reconstructs a consistent home image:

    * crash before the seal fsync → checkpoint JSON still references
      the *previous* batch, doublewrite is ignored, home is untouched;
    * crash after the seal but before the JSON replace → same;
    * crash during the home writes → JSON references this batch, every
      torn home page is repaired from its doublewrite copy.

``spill.db``
    Steal support.  Evicting a *dirty* page between checkpoints must
    not touch the home file (see above), so dirty evictions spill here
    instead; a reload prefers the spill copy.  The file is volatile by
    design: recovery ignores it and the next checkpoint clears it.

The three ``pager.read`` / ``pager.write`` / ``pager.fsync`` fault
sites wrap every raw I/O with a bounded retry (backoff charged to the
virtual :data:`repro.core.resilience.HOOK_CLOCK`, never a real sleep)
before escalating as :class:`~repro.sqldb.errors.PagerError` into the
fail-closed containment boundary.

:class:`BufferPool` caches decoded page nodes with clock eviction and
pin counts — eviction **refuses** pinned pages (hard error when every
frame is pinned, never a silent unpin).  :class:`Scrubber` walks the
reachable (checkpointed) pages a few per virtual tick, quarantines
checksum mismatches and repairs them — doublewrite copy first, then a
clean resident frame, then WAL redo, then a caught-up replica — and by
construction never rewrites a page whose checksum verifies
(``false_repairs`` stays 0).
"""

import json
import os
import struct
import zlib

from repro import faults as faults_mod
from repro.core.resilience import HOOK_CLOCK, make_rlock
from repro.sqldb.errors import PageCorruptionError, PagerError

#: page header: magic u32 | page_no u32 | lsn u64 | payload_len u32 | crc u32
_HEADER = struct.Struct("<IIQII")

#: doublewrite seal: magic u32 | batch u64 | count u32 | crc u32
_DW_SEAL = struct.Struct("<IQII")

#: doublewrite entry prefix: page_no u32 (a full page follows)
_DW_ENTRY = struct.Struct("<I")

PAGE_MAGIC = 0x53455054  # "SEPT"
DW_MAGIC = 0x53455044    # "SEPD"

DEFAULT_PAGE_SIZE = 4096

#: I/O attempts per operation before escalating fail-closed
IO_ATTEMPTS = 3

#: virtual seconds charged per retry (doubled each attempt)
IO_BACKOFF = 0.01

#: file names inside a data directory
PAGES_NAME = "pages.db"
DOUBLEWRITE_NAME = "doublewrite.db"
SPILL_NAME = "spill.db"


def pages_path(data_dir):
    return os.path.join(data_dir, PAGES_NAME)


def doublewrite_path(data_dir):
    return os.path.join(data_dir, DOUBLEWRITE_NAME)


def spill_path(data_dir):
    return os.path.join(data_dir, SPILL_NAME)


class SimulatedCrash(BaseException):
    """Raised by a planted crash hook mid-page-write (crash sweeps).

    Deliberately *not* an :class:`Exception`: nothing in the engine may
    catch-and-wrap it — the sweep must observe the process exactly as a
    power cut would leave it."""


def encode_page(page_no, payload, lsn, page_size):
    """One full page: header + payload + zero padding, CRC over all of
    it (with the CRC field itself zeroed), so a bit flip anywhere in
    the page — header, payload or padding — fails verification."""
    budget = page_size - _HEADER.size
    if len(payload) > budget:
        raise PagerError(
            "payload of %d bytes exceeds the %d-byte page budget"
            % (len(payload), budget)
        )
    head = _HEADER.pack(PAGE_MAGIC, page_no, lsn, len(payload), 0)
    page = head + payload + b"\x00" * (budget - len(payload))
    crc = zlib.crc32(page) & 0xFFFFFFFF
    return (_HEADER.pack(PAGE_MAGIC, page_no, lsn, len(payload), crc)
            + page[_HEADER.size:])


def verify_page(data, page_no, page_size):
    """True when *data* is an intact page for *page_no*."""
    if len(data) != page_size:
        return False
    try:
        magic, stored_no, _lsn, length, crc = _HEADER.unpack_from(data, 0)
    except struct.error:
        return False
    if magic != PAGE_MAGIC or stored_no != page_no:
        return False
    if length > page_size - _HEADER.size:
        return False
    zeroed = (_HEADER.pack(magic, stored_no, _lsn, length, 0)
              + data[_HEADER.size:])
    return (zlib.crc32(zeroed) & 0xFFFFFFFF) == crc


def decode_page(data, page_no, page_size):
    """``(lsn, payload)`` of an intact page, or raise
    :class:`PageCorruptionError`."""
    if not verify_page(data, page_no, page_size):
        raise PageCorruptionError(
            "page %d fails its checksum" % page_no, page_no=page_no
        )
    _magic, _no, lsn, length, _crc = _HEADER.unpack_from(data, 0)
    return lsn, data[_HEADER.size:_HEADER.size + length]


class Pager(object):
    """Raw page I/O over the three storage files of one data directory.

    Page allocation (``page_count`` high-water mark + freelist) is
    volatile here; the engine persists it in the checkpoint and feeds
    it back through :meth:`set_allocation` during recovery.
    """

    def __init__(self, data_dir, page_size=DEFAULT_PAGE_SIZE, sync=True):
        self.data_dir = data_dir
        self.page_size = page_size
        self.sync = sync
        self._lock = make_rlock()
        os.makedirs(data_dir, exist_ok=True)
        self._home = self._open(pages_path(data_dir))
        self._dw = self._open(doublewrite_path(data_dir))
        self._spill = self._open(spill_path(data_dir))
        # page 0 is reserved so 0 can mean "no page" in tree links
        # (leaf chains end with n == 0, an empty tree has root None);
        # the home file's first page_size bytes stay zeroed
        self.page_count = 1
        self.freelist = []
        #: page_no -> spill slot (volatile, cleared at checkpoint)
        self._spill_slots = {}
        self._spill_next = 0
        self.closed = False
        # counters (Septic.status / benches read these)
        self.reads = 0
        self.writes = 0
        self.fsyncs = 0
        self.io_retries = 0
        self.io_escalations = 0
        self.backoff_seconds = 0.0
        #: every raw write issued (home, doublewrite and spill) — the
        #: crash sweep's kill-point coordinate system
        self.raw_writes = 0
        #: ``(write_index, byte_offset)`` one-shot crash hook, or None
        self._crash_plan = None
        self.crashed = False

    @staticmethod
    def _open(path):
        if not os.path.exists(path):
            with open(path, "wb"):
                pass
        return open(path, "r+b", buffering=0)

    @property
    def payload_budget(self):
        return self.page_size - _HEADER.size

    # -- crash simulation --------------------------------------------------

    def plant_crash(self, write_index, byte_offset):
        """Arm a one-shot kill: the *write_index*-th raw write from now
        writes only *byte_offset* of its bytes, then raises
        :class:`SimulatedCrash` (the sweep's mid-flush power cut)."""
        self._crash_plan = (self.raw_writes + write_index, byte_offset)

    def _raw_write(self, handle, offset, data):
        index = self.raw_writes
        self.raw_writes += 1
        plan = self._crash_plan
        if plan is not None and index == plan[0]:
            self._crash_plan = None
            self.crashed = True
            cut = max(0, min(plan[1], len(data)))
            if cut:
                handle.seek(offset)
                handle.write(data[:cut])
            raise SimulatedCrash(
                "planted crash at raw write %d (offset %d of %d bytes)"
                % (index, cut, len(data))
            )
        handle.seek(offset)
        handle.write(data)

    # -- the retry shell over every raw I/O --------------------------------

    def _io(self, site, operation):
        """Run *operation* under *site*'s fault hook with bounded
        retry-with-backoff; transient faults (OSError or an injected
        flaky fault) are retried, everything past the budget escalates
        as :class:`PagerError` — fail closed, never guess."""
        attempt = 0
        while True:
            attempt += 1
            try:
                if faults_mod.ACTIVE is not None:
                    if site == "pager.read":
                        faults_mod.fire("pager.read")
                    elif site == "pager.write":
                        faults_mod.fire("pager.write")
                    else:
                        faults_mod.fire("pager.fsync")
                return operation()
            except (OSError, faults_mod.InjectedFault) as exc:
                if attempt >= IO_ATTEMPTS:
                    self.io_escalations += 1
                    raise PagerError(
                        "pager I/O at %s failed after %d attempts "
                        "(%s: %s)" % (site, attempt,
                                      type(exc).__name__, exc)
                    )
                self.io_retries += 1
                backoff = IO_BACKOFF * (2 ** (attempt - 1))
                self.backoff_seconds += backoff
                HOOK_CLOCK.advance(backoff)

    # -- allocation --------------------------------------------------------

    def allocate(self):
        with self._lock:
            if self.freelist:
                return self.freelist.pop()
            page_no = self.page_count
            self.page_count += 1
            return page_no

    def free(self, page_no):
        with self._lock:
            if page_no not in self.freelist:
                self.freelist.append(page_no)

    def set_allocation(self, page_count, freelist):
        with self._lock:
            self.page_count = max(1, page_count)
            self.freelist = [p for p in freelist if p != 0]

    # -- home file ---------------------------------------------------------

    def read_home_raw(self, page_no):
        """The raw on-disk bytes of home page *page_no* (zero-filled
        when the file is short — an unwritten page never verifies)."""
        offset = page_no * self.page_size

        def operation():
            self.reads += 1
            self._home.seek(offset)
            return self._home.read(self.page_size)

        with self._lock:
            data = self._io("pager.read", operation)
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def read_page(self, page_no):
        """``(lsn, payload)`` of home page *page_no* — raises
        :class:`PageCorruptionError` when the checksum fails."""
        data = self.read_home_raw(page_no)
        return decode_page(data, page_no, self.page_size)

    def write_page(self, page_no, payload, lsn):
        page = encode_page(page_no, payload, lsn, self.page_size)
        self.write_home_raw(page_no, page)

    def write_home_raw(self, page_no, page):
        offset = page_no * self.page_size

        def operation():
            self.writes += 1
            self._raw_write(self._home, offset, page)

        with self._lock:
            self._io("pager.write", operation)

    def fsync_home(self):
        def operation():
            self.fsyncs += 1
            self._home.flush()
            if self.sync:
                os.fsync(self._home.fileno())

        with self._lock:
            self._io("pager.fsync", operation)

    # -- doublewrite -------------------------------------------------------

    def write_doublewrite(self, images, batch_id):
        """Write *images* (``{page_no: page_bytes}``) as the sealed
        doublewrite batch *batch_id*.  The seal lands last, after the
        body is fsynced — an intact seal therefore proves an intact
        (individually checksummed) body."""
        page_nos = sorted(images)
        with self._lock:
            self._dw.truncate(0)
            offset = _DW_SEAL.size

            def body():
                self.writes += 1
                position = offset
                for page_no in page_nos:
                    entry = _DW_ENTRY.pack(page_no) + images[page_no]
                    self._raw_write(self._dw, position, entry)
                    position += len(entry)

            # the body is one retryable unit: a flaky fault mid-batch
            # rewrites the whole (unsealed, therefore ignorable) body
            self._io("pager.write", body)
            self._fsync_dw()
            seal = _DW_SEAL.pack(
                DW_MAGIC, batch_id, len(page_nos),
                self._seal_crc(batch_id, page_nos),
            )

            def footer():
                self.writes += 1
                self._raw_write(self._dw, 0, seal)

            self._io("pager.write", footer)
            self._fsync_dw()

    @staticmethod
    def _seal_crc(batch_id, page_nos):
        blob = struct.pack("<QI", batch_id, len(page_nos))
        blob += b"".join(_DW_ENTRY.pack(p) for p in page_nos)
        return zlib.crc32(blob) & 0xFFFFFFFF

    def _fsync_dw(self):
        def operation():
            self.fsyncs += 1
            self._dw.flush()
            if self.sync:
                os.fsync(self._dw.fileno())

        self._io("pager.fsync", operation)

    def load_doublewrite(self):
        """``(batch_id, {page_no: page_bytes})`` of the sealed batch,
        or ``None`` when the seal is missing, torn or fails its CRC —
        an unsealed batch is a crash artifact, not data."""
        with self._lock:
            def operation():
                self.reads += 1
                self._dw.seek(0)
                return self._dw.read()

            data = self._io("pager.read", operation)
        if len(data) < _DW_SEAL.size:
            return None
        magic, batch_id, count, crc = _DW_SEAL.unpack_from(data, 0)
        if magic != DW_MAGIC:
            return None
        entry_size = _DW_ENTRY.size + self.page_size
        if len(data) < _DW_SEAL.size + count * entry_size:
            return None
        page_nos = []
        images = {}
        offset = _DW_SEAL.size
        for _ in range(count):
            (page_no,) = _DW_ENTRY.unpack_from(data, offset)
            page = data[offset + _DW_ENTRY.size:offset + entry_size]
            page_nos.append(page_no)
            images[page_no] = page
            offset += entry_size
        if crc != self._seal_crc(batch_id, page_nos):
            return None
        # drop individually-damaged copies (bit rot inside the sealed
        # body): the page's own CRC is the authority
        for page_no in list(images):
            if not verify_page(images[page_no], page_no, self.page_size):
                del images[page_no]
        return batch_id, images

    def recover_home(self, batch_id):
        """Apply the sealed doublewrite batch over the home file iff
        its id equals *batch_id* (the id the surviving checkpoint
        references).  Returns ``(applied, torn_repaired)``: pages whose
        home copy differed and was rewritten, and — among those — pages
        whose home copy failed its checksum (a torn write)."""
        loaded = self.load_doublewrite()
        if loaded is None:
            return 0, 0
        sealed_batch, images = loaded
        if sealed_batch != batch_id:
            return 0, 0
        applied = torn = 0
        for page_no in sorted(images):
            image = images[page_no]
            home = self.read_home_raw(page_no)
            if home == image:
                continue
            if not verify_page(home, page_no, self.page_size):
                torn += 1
            self.write_home_raw(page_no, image)
            applied += 1
        if applied:
            self.fsync_home()
        return applied, torn

    # -- spill (steal) -----------------------------------------------------

    def has_spill(self, page_no):
        return page_no in self._spill_slots

    def spill_write(self, page_no, payload, lsn):
        page = encode_page(page_no, payload, lsn, self.page_size)
        with self._lock:
            slot = self._spill_slots.get(page_no)
            if slot is None:
                slot = self._spill_next
                self._spill_next += 1
                self._spill_slots[page_no] = slot
            offset = slot * self.page_size

            def operation():
                self.writes += 1
                self._raw_write(self._spill, offset, page)

            self._io("pager.write", operation)

    def spill_read(self, page_no):
        with self._lock:
            slot = self._spill_slots[page_no]
            offset = slot * self.page_size

            def operation():
                self.reads += 1
                self._spill.seek(offset)
                return self._spill.read(self.page_size)

            data = self._io("pager.read", operation)
        return decode_page(data, page_no, self.page_size)

    def spill_images(self):
        """Current spill copies as ``{page_no: (lsn, payload)}`` — the
        checkpoint folds in spilled pages that are no longer resident."""
        images = {}
        for page_no in sorted(self._spill_slots):
            images[page_no] = self.spill_read(page_no)
        return images

    def clear_spill(self):
        with self._lock:
            self._spill_slots = {}
            self._spill_next = 0
            self._spill.truncate(0)

    # -- lifecycle ---------------------------------------------------------

    def close(self):
        with self._lock:
            if self.closed:
                return
            self.fsync_home()
            for handle in (self._home, self._dw, self._spill):
                handle.close()
            self.closed = True

    def abandon(self):
        """Drop the file handles without flushing — the crash path."""
        with self._lock:
            if self.closed:
                return
            for handle in (self._home, self._dw, self._spill):
                try:
                    handle.close()
                except OSError:
                    pass
            self.closed = True

    def stats_dict(self):
        return {
            "page_size": self.page_size,
            "page_count": self.page_count,
            "free_pages": len(self.freelist),
            "reads": self.reads,
            "writes": self.writes,
            "fsyncs": self.fsyncs,
            "io_retries": self.io_retries,
            "io_escalations": self.io_escalations,
            "backoff_seconds": self.backoff_seconds,
            "spill_pages": len(self._spill_slots),
        }


class Frame(object):
    """One buffer-pool slot: a decoded page node plus its bookkeeping."""

    __slots__ = ("page_no", "node", "dirty", "pin_count", "ref", "lsn")

    def __init__(self, page_no, node, dirty, lsn):
        self.page_no = page_no
        self.node = node
        self.dirty = dirty
        self.pin_count = 0
        self.ref = True
        self.lsn = lsn


class BufferPool(object):
    """Pinned-page cache with clock (second-chance) eviction.

    Steal / no-force discipline: evicting a dirty frame first runs the
    WAL barrier (``wal_barrier``, set by the engine — flush the log so
    no page image can outrun its log records), then **spills** the page
    (never the home file, which must stay checkpoint-consistent); a
    commit never forces page writes.  Eviction skips pinned frames and
    raises :class:`PagerError` when every frame is pinned — a pinned
    page is a promise, not a hint.
    """

    def __init__(self, pager, capacity=64, encoder=None, decoder=None):
        self.pager = pager
        self.capacity = max(1, capacity)
        self.encoder = encoder
        self.decoder = decoder
        #: callable run before a dirty steal (or None)
        self.wal_barrier = None
        self._frames = {}
        self._ring = []
        self._hand = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_flushes = 0
        self.pin_denials = 0

    def __contains__(self, page_no):
        return page_no in self._frames

    def frame(self, page_no):
        return self._frames.get(page_no)

    def fetch(self, page_no):
        """The decoded node of *page_no*, loading (spill copy first,
        then home) on a miss."""
        frame = self._frames.get(page_no)
        if frame is not None:
            self.hits += 1
            frame.ref = True
            return frame.node
        self.misses += 1
        if self.pager.has_spill(page_no):
            lsn, payload = self.pager.spill_read(page_no)
            dirty = True    # the spill copy is ahead of the home copy
        else:
            lsn, payload = self.pager.read_page(page_no)
            dirty = False
        node = self.decoder(payload)
        self._admit(Frame(page_no, node, dirty, lsn))
        return node

    def new_page(self, node, lsn=0):
        """Allocate a fresh page for *node*; starts dirty."""
        page_no = self.pager.allocate()
        frame = Frame(page_no, node, True, lsn)
        self._admit(frame)
        return page_no

    def _admit(self, frame):
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[frame.page_no] = frame
        self._ring.append(frame.page_no)

    def _evict_one(self):
        sweeps = 0
        limit = 2 * len(self._ring) + 1
        while sweeps < limit:
            sweeps += 1
            if not self._ring:
                break
            if self._hand >= len(self._ring):
                self._hand = 0
            page_no = self._ring[self._hand]
            frame = self._frames.get(page_no)
            if frame is None:
                del self._ring[self._hand]
                continue
            if frame.pin_count > 0:
                self._hand += 1
                continue
            if frame.ref:
                frame.ref = False
                self._hand += 1
                continue
            del self._ring[self._hand]
            del self._frames[page_no]
            self._evict_frame(frame)
            return
        self.pin_denials += 1
        raise PagerError(
            "buffer pool exhausted: all %d frames are pinned"
            % len(self._frames)
        )

    def _evict_frame(self, frame):
        self.evictions += 1
        if frame.dirty:
            # steal: the WAL barrier first (no page image may outrun
            # its log records), then spill — never the home file
            if self.wal_barrier is not None:
                self.wal_barrier()
            payload = self.encoder(frame.node)
            self.pager.spill_write(frame.page_no, payload, frame.lsn)
            self.dirty_flushes += 1

    def pin(self, page_no):
        frame = self._frames.get(page_no)
        if frame is None:
            raise PagerError("cannot pin page %d: not resident" % page_no)
        frame.pin_count += 1

    def unpin(self, page_no):
        frame = self._frames.get(page_no)
        if frame is None:
            return
        frame.pin_count = max(0, frame.pin_count - 1)

    def mark_dirty(self, page_no, lsn=0):
        frame = self._frames.get(page_no)
        if frame is None:
            raise PagerError(
                "cannot dirty page %d: not resident" % page_no
            )
        frame.dirty = True
        if lsn > frame.lsn:
            frame.lsn = lsn

    def drop(self, page_no):
        """Forget a frame without writing (the page was freed)."""
        self._frames.pop(page_no, None)

    def dirty_images(self):
        """``{page_no: (lsn, payload)}`` of every dirty resident frame."""
        images = {}
        for page_no in sorted(self._frames):
            frame = self._frames[page_no]
            if frame.dirty:
                images[page_no] = (frame.lsn, self.encoder(frame.node))
        return images

    def mark_all_clean(self):
        for frame in self._frames.values():
            frame.dirty = False

    def clear(self):
        self._frames = {}
        self._ring = []
        self._hand = 0

    def pinned_pages(self):
        return sorted(p for p, f in self._frames.items() if f.pin_count)

    def stats_dict(self):
        return {
            "capacity": self.capacity,
            "pages_cached": len(self._frames),
            "pinned": len(self.pinned_pages()),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "dirty_flushes": self.dirty_flushes,
            "pin_denials": self.pin_denials,
        }


class Scrubber(object):
    """Online corruption scrubber: a few cold pages per virtual tick.

    The scan set is the reachable page set of the last checkpoint (the
    engine rebuilds it after every checkpoint, tagging each page with
    its owning table).  A page whose home bytes fail verification is
    counted, quarantined and repaired from the first source that can
    produce an intact image:

    1. the sealed **doublewrite** copy of the current batch (the
       checkpoint image — safe to write home in place);
    2. a **clean resident frame** (its content *is* the checkpoint
       image, because the home file only changes at checkpoints; a
       dirty frame is ahead of the checkpoint and must never be copied
       home in place — that would double-apply WAL replay);
    3. **WAL redo** (``redo_source``): the engine rebuilds the owning
       table from the checkpoint's logical rows + the log tail and
       forces a checkpoint, re-homing every page atomically;
    4. a caught-up **replica** (``replica_sources``): same rebuild,
       rows fetched from the replica instead of local redo.

    A page that verifies is never rewritten — ``false_repairs`` counts
    the (structurally impossible) violations and the corruption sweep
    asserts it stays 0.  No wall clock anywhere: progress is driven
    exclusively by explicit :meth:`tick` calls (a lint gate keeps
    ``time``/``datetime`` out of this module).
    """

    def __init__(self, pager, pool, pages_per_tick=2):
        self.pager = pager
        self.pool = pool
        self.pages_per_tick = pages_per_tick
        #: page_no -> owning table name (the scan set)
        self._scan_map = {}
        self._scan_list = []
        self._cursor = 0
        self.quarantined = set()
        self.ticks = 0
        self.pages_scanned = 0
        self.detected = 0
        self.repairs = 0
        self.false_repairs = 0
        self.repairs_by_source = {}
        #: callable(page_no, table_name) -> bool (engine WAL-redo rebuild)
        self.redo_source = None
        #: callables like redo_source, tried in order after it
        self.replica_sources = []

    def set_scan_set(self, page_map):
        """Replace the scan set (``{page_no: table_name}``)."""
        self._scan_map = dict(page_map)
        self._scan_list = sorted(self._scan_map)
        if self._cursor >= len(self._scan_list):
            self._cursor = 0
        self.quarantined &= set(self._scan_list)

    def tick(self, ticks=1):
        """Advance the scrub cursor *ticks* virtual ticks; returns the
        number of corruptions detected during them."""
        found = 0
        for _ in range(ticks):
            self.ticks += 1
            for _ in range(min(self.pages_per_tick,
                               len(self._scan_list))):
                found += self._scan_next()
        return found

    def scan_all(self):
        """One full pass over the scan set (tests and recovery audits)."""
        found = 0
        for _ in range(len(self._scan_list)):
            found += self._scan_next()
        return found

    def _scan_next(self):
        if not self._scan_list:
            return 0
        if self._cursor >= len(self._scan_list):
            self._cursor = 0
        page_no = self._scan_list[self._cursor]
        self._cursor += 1
        self.pages_scanned += 1
        raw = self.pager.read_home_raw(page_no)
        if verify_page(raw, page_no, self.pager.page_size):
            self.quarantined.discard(page_no)
            return 0
        fresh = page_no not in self.quarantined
        if fresh:
            self.detected += 1
            self.quarantined.add(page_no)
        self.repair(page_no)
        return 1 if fresh else 0

    def repair(self, page_no):
        """Attempt the repair chain for a quarantined page.  Returns
        the source name on success, ``None`` while it stays
        quarantined."""
        raw = self.pager.read_home_raw(page_no)
        if verify_page(raw, page_no, self.pager.page_size):
            # never rewrite an intact page: that is the false-repair
            # class the corruption sweep pins at zero
            self.false_repairs += 1
            self.quarantined.discard(page_no)
            return None
        source = self._try_sources(page_no)
        if source is not None:
            self.repairs += 1
            self.repairs_by_source[source] = (
                self.repairs_by_source.get(source, 0) + 1
            )
            self.quarantined.discard(page_no)
        return source

    def _try_sources(self, page_no):
        loaded = self.pager.load_doublewrite()
        if loaded is not None:
            _batch, images = loaded
            image = images.get(page_no)
            if image is not None:
                self.pager.write_home_raw(page_no, image)
                self.pager.fsync_home()
                return "doublewrite"
        frame = self.pool.frame(page_no)
        if frame is not None and not frame.dirty:
            payload = self.pool.encoder(frame.node)
            self.pager.write_page(page_no, payload, frame.lsn)
            self.pager.fsync_home()
            return "buffer_pool"
        table = self._scan_map.get(page_no)
        if self.redo_source is not None:
            try:
                if self.redo_source(page_no, table):
                    return "wal_redo"
            except Exception:
                pass    # fall through to the replica sources
        for provider in self.replica_sources:
            try:
                if provider(page_no, table):
                    return "replica"
            except Exception:
                continue
        return None

    def stats_dict(self):
        return {
            "ticks": self.ticks,
            "pages_scanned": self.pages_scanned,
            "scan_set": len(self._scan_list),
            "detected": self.detected,
            "quarantined": len(self.quarantined),
            "scrub_repairs": self.repairs,
            "false_repairs": self.false_repairs,
            "repairs_by_source": dict(self.repairs_by_source),
        }


class PageStore(object):
    """One data directory's paged-storage stack: pager + pool +
    scrubber, plus the checkpoint-side batch protocol the engine
    drives.  The ``encoder``/``decoder`` pair (normally
    :func:`repro.sqldb.btree.encode_node` / ``decode_node``) keeps this
    module free of any knowledge of what lives *inside* a page."""

    def __init__(self, data_dir, page_size=DEFAULT_PAGE_SIZE,
                 pool_pages=64, sync=True, encoder=None, decoder=None,
                 scrub_pages_per_tick=2):
        self.pager = Pager(data_dir, page_size=page_size, sync=sync)
        self.pool = BufferPool(self.pager, capacity=pool_pages,
                               encoder=encoder, decoder=decoder)
        self.scrubber = Scrubber(self.pager, self.pool,
                                 pages_per_tick=scrub_pages_per_tick)
        #: doublewrite batch counter (persisted via the checkpoint)
        self.batch_id = 0

    @property
    def crashed(self):
        return self.pager.crashed

    def collect_images(self, lsn=None):
        """Every page image the next checkpoint must home: dirty
        resident frames win over their (older) spill copies; spilled
        pages no longer resident ride along.  With *lsn* the images are
        stamped with it (the checkpoint's log position — the page-LSN
        audit reads these back)."""
        images = {}
        for page_no, (page_lsn, payload) in \
                self.pager.spill_images().items():
            images[page_no] = (page_lsn, payload)
        images.update(self.pool.dirty_images())
        return {
            page_no: encode_page(
                page_no, payload,
                lsn if lsn is not None else page_lsn,
                self.pager.page_size,
            )
            for page_no, (page_lsn, payload) in images.items()
        }

    def checkpoint_begin(self, images):
        """Phase 1 (before the checkpoint JSON lands): write + seal the
        doublewrite batch.  Returns the batch id the JSON must carry."""
        self.batch_id += 1
        self.pager.write_doublewrite(images, self.batch_id)
        return self.batch_id

    def checkpoint_finish(self, images):
        """Phase 2 (after the JSON landed): home the images, fsync,
        drop the spill and settle every frame clean."""
        for page_no in sorted(images):
            self.pager.write_home_raw(page_no, images[page_no])
        if images:
            self.pager.fsync_home()
        self.pager.clear_spill()
        self.pool.mark_all_clean()

    def allocation_state(self):
        return {
            "page_count": self.pager.page_count,
            "freelist": sorted(self.pager.freelist),
            "batch": self.batch_id,
        }

    def restore_allocation(self, state):
        self.pager.set_allocation(state.get("page_count", 0),
                                  state.get("freelist", []))
        self.batch_id = state.get("batch", 0)

    def free_page(self, page_no):
        self.pool.drop(page_no)
        self.pager.free(page_no)

    def close(self):
        self.pager.close()

    def abandon(self):
        self.pager.abandon()

    def stats_dict(self):
        stats = self.pool.stats_dict()
        stats["pager"] = self.pager.stats_dict()
        scrub = self.scrubber.stats_dict()
        stats["scrub_repairs"] = scrub["scrub_repairs"]
        stats["scrubber"] = scrub
        return stats


# -- raw byte access (crash + corruption simulation) --------------------------
#
# The corruption sweep needs to flip bits inside the home file and the
# crash sweep needs to inspect it; both go through these helpers because
# *only this module* may touch the page files directly — the lint suite
# enforces that, exactly as :mod:`repro.sqldb.wal` does for its files.

def read_pages_bytes(data_dir):
    path = pages_path(data_dir)
    if not os.path.exists(path):
        return b""
    with open(path, "rb") as handle:
        return handle.read()


def flip_page_bit(data_dir, page_no, bit, page_size=DEFAULT_PAGE_SIZE):
    """Flip one bit of home page *page_no* in place (seeded corruption
    injection).  *bit* counts from the start of the page."""
    offset = page_no * page_size + (bit // 8)
    with open(pages_path(data_dir), "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        if not byte:
            return False
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (1 << (bit % 8))]))
        handle.flush()
        os.fsync(handle.fileno())
    return True


def audit_pages(data_dir, page_size=DEFAULT_PAGE_SIZE):
    """Stream a per-page checksum/LSN audit of the home file: yields
    ``(page_no, ok, lsn)`` per page slot (``lsn`` is None for a damaged
    page) — the ``repro recover --verify --pages`` report body."""
    path = pages_path(data_dir)
    if not os.path.exists(path):
        return
    with open(path, "rb") as handle:
        handle.seek(page_size)      # page 0 is the reserved null slot
        page_no = 1
        while True:
            data = handle.read(page_size)
            if not data:
                return
            if len(data) < page_size:
                data = data + b"\x00" * (page_size - len(data))
            if verify_page(data, page_no, page_size):
                lsn = _HEADER.unpack_from(data, 0)[2]
                yield page_no, True, lsn
            else:
                yield page_no, False, None
            page_no += 1
