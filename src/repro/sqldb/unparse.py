"""AST → SQL text (the inverse of the parser).

Used for diagnostics (render the statement SEPTIC actually inspected)
and by the test suite's strongest parser property:
``parse(unparse(parse(sql))) == parse(sql)``.

The output is canonical-form SQL: upper-case keywords, explicit
parentheses where precedence could be ambiguous, backslash-escaped
string literals.
"""

from repro.sqldb import ast_nodes as ast
from repro.sqldb.charset import escape_string


def to_sql(node):
    """Render a statement or expression node as SQL text."""
    renderer = _RENDERERS.get(type(node))
    if renderer is None:
        raise TypeError("cannot unparse %r" % type(node).__name__)
    return renderer(node)


# -- literals & simple expressions -------------------------------------------

def _literal(node):
    if node.type_tag == "null":
        return "NULL"
    if node.type_tag == "bool":
        return "TRUE" if node.value else "FALSE"
    if node.type_tag == "string":
        return "'%s'" % escape_string(node.value)
    if node.type_tag == "float":
        return repr(float(node.value))
    return str(node.value)


def _column(node):
    if node.table:
        return "%s.%s" % (node.table, node.name)
    return node.name


def _star(node):
    return "%s.*" % node.table if node.table else "*"


def _func(node):
    inner = ", ".join(to_sql(arg) for arg in node.args)
    if node.distinct:
        inner = "DISTINCT " + inner
    return "%s(%s)" % (node.name, inner)


def _unary(node):
    return "%s(%s)" % (node.op, to_sql(node.operand))


def _binary(node):
    return "(%s %s %s)" % (to_sql(node.left), node.op, to_sql(node.right))


def _cond(node):
    joiner = " %s " % node.op
    return "(%s)" % joiner.join(to_sql(op) for op in node.operands)


def _not(node):
    return "(NOT %s)" % to_sql(node.operand)


def _in_list(node):
    if isinstance(node.items, ast.Subquery):
        inner = to_sql(node.items.select)
    else:
        inner = ", ".join(to_sql(item) for item in node.items)
    keyword = "NOT IN" if node.negated else "IN"
    return "(%s %s (%s))" % (to_sql(node.expr), keyword, inner)


def _between(node):
    keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
    return "(%s %s %s AND %s)" % (
        to_sql(node.expr), keyword, to_sql(node.low), to_sql(node.high)
    )


def _is_null(node):
    keyword = "IS NOT NULL" if node.negated else "IS NULL"
    return "(%s %s)" % (to_sql(node.expr), keyword)


def _like(node):
    keyword = node.op if not node.negated else "NOT " + node.op
    return "(%s %s %s)" % (to_sql(node.expr), keyword,
                           to_sql(node.pattern))


def _case(node):
    parts = ["CASE"]
    if node.operand is not None:
        parts.append(to_sql(node.operand))
    for cond, result in node.whens:
        parts.append("WHEN %s THEN %s" % (to_sql(cond), to_sql(result)))
    if node.default is not None:
        parts.append("ELSE %s" % to_sql(node.default))
    parts.append("END")
    return " ".join(parts)


def _cast(node):
    return "CAST(%s AS %s)" % (to_sql(node.expr), node.type_name)


def _subquery(node):
    return "(%s)" % to_sql(node.select)


def _exists(node):
    keyword = "NOT EXISTS" if node.negated else "EXISTS"
    return "%s (%s)" % (keyword, to_sql(node.select))


def _param(node):
    return "?"


# -- statement pieces ----------------------------------------------------------

def _table_source(ref):
    if isinstance(ref, ast.DerivedTable):
        return "(%s) AS %s" % (to_sql(ref.select), ref.alias)
    if ref.alias:
        return "%s AS %s" % (ref.name, ref.alias)
    return ref.name


def _order_clause(order_by):
    if not order_by:
        return ""
    items = ", ".join(
        "%s %s" % (to_sql(item.expr), item.direction) for item in order_by
    )
    return " ORDER BY " + items


def _limit_clause(limit):
    if limit is None:
        return ""
    if limit.offset is not None:
        return " LIMIT %s OFFSET %s" % (
            to_sql(limit.count), to_sql(limit.offset)
        )
    return " LIMIT %s" % to_sql(limit.count)


def _select(node):
    fields = ", ".join(
        to_sql(field.expr) + (" AS %s" % field.alias if field.alias else "")
        for field in node.fields
    )
    parts = ["SELECT "]
    if node.distinct:
        parts.append("DISTINCT ")
    parts.append(fields)
    if node.tables:
        parts.append(" FROM ")
        parts.append(", ".join(_table_source(t) for t in node.tables))
    for join in node.joins:
        parts.append(" %s JOIN %s" % (join.kind, _table_source(join.table)))
        if join.on is not None:
            parts.append(" ON %s" % to_sql(join.on))
    if node.where is not None:
        parts.append(" WHERE %s" % to_sql(node.where))
    if node.group_by:
        parts.append(" GROUP BY " +
                     ", ".join(to_sql(g) for g in node.group_by))
        if node.having is not None:
            parts.append(" HAVING %s" % to_sql(node.having))
    parts.append(_order_clause(node.order_by))
    parts.append(_limit_clause(node.limit))
    text = "".join(parts)
    for all_flag, branch in node.unions:
        text += " UNION %s%s" % ("ALL " if all_flag else "",
                                 to_sql(branch))
    return text


def _insert(node):
    verb = "REPLACE" if node.replace else "INSERT"
    if node.ignore:
        verb += " IGNORE"
    columns = ""
    if node.columns:
        columns = " (%s)" % ", ".join(node.columns)
    rows = ", ".join(
        "(%s)" % ", ".join(to_sql(expr) for expr in row)
        for row in node.rows
    )
    text = "%s INTO %s%s VALUES %s" % (verb, node.table, columns, rows)
    if node.on_duplicate:
        text += " ON DUPLICATE KEY UPDATE " + ", ".join(
            "%s = %s" % (col, to_sql(expr))
            for col, expr in node.on_duplicate
        )
    return text


def _update(node):
    text = "UPDATE %s SET %s" % (
        node.table,
        ", ".join("%s = %s" % (col, to_sql(expr))
                  for col, expr in node.assignments),
    )
    if node.where is not None:
        text += " WHERE %s" % to_sql(node.where)
    text += _order_clause(node.order_by)
    text += _limit_clause(node.limit)
    return text


def _delete(node):
    text = "DELETE FROM %s" % node.table
    if node.where is not None:
        text += " WHERE %s" % to_sql(node.where)
    text += _order_clause(node.order_by)
    text += _limit_clause(node.limit)
    return text


# -- DDL ----------------------------------------------------------------------
#
# Needed beyond diagnostics: the write-ahead log records statements as
# canonical SQL text, and multi-statement scripts must re-serialize each
# DDL statement individually for replay.

def _column_def(cdef):
    text = "%s %s" % (cdef.name, cdef.type_name)
    if cdef.length is not None:
        text += "(%d)" % cdef.length
    if cdef.not_null:
        text += " NOT NULL"
    if cdef.default is not None:
        text += " DEFAULT %s" % to_sql(cdef.default)
    if cdef.auto_increment:
        text += " AUTO_INCREMENT"
    if cdef.primary_key:
        text += " PRIMARY KEY"
    if cdef.unique:
        text += " UNIQUE"
    return text


def _create_table(node):
    return "CREATE TABLE %s%s (%s)" % (
        "IF NOT EXISTS " if node.if_not_exists else "",
        node.name,
        ", ".join(_column_def(c) for c in node.columns),
    )


def _drop_table(node):
    return "DROP TABLE %s%s" % (
        "IF EXISTS " if node.if_exists else "", node.name
    )


def _create_index(node):
    return "CREATE INDEX %s ON %s (%s)" % (node.name, node.table,
                                           node.column)


def _drop_index(node):
    return "DROP INDEX %s ON %s" % (node.name, node.table)


def _alter_add_column(node):
    return "ALTER TABLE %s ADD COLUMN %s" % (
        node.table, _column_def(node.column_def)
    )


def _alter_drop_column(node):
    return "ALTER TABLE %s DROP COLUMN %s" % (node.table, node.column)


def _truncate_table(node):
    return "TRUNCATE TABLE %s" % node.table


def _begin(node):
    return "BEGIN"


def _commit(node):
    return "COMMIT"


def _rollback(node):
    return "ROLLBACK"


_RENDERERS = {
    ast.Literal: _literal,
    ast.Param: _param,
    ast.ColumnRef: _column,
    ast.Star: _star,
    ast.FuncCall: _func,
    ast.UnaryOp: _unary,
    ast.BinaryOp: _binary,
    ast.Cond: _cond,
    ast.Not: _not,
    ast.InList: _in_list,
    ast.Between: _between,
    ast.IsNull: _is_null,
    ast.Like: _like,
    ast.Case: _case,
    ast.Cast: _cast,
    ast.Subquery: _subquery,
    ast.Exists: _exists,
    ast.Select: _select,
    ast.Insert: _insert,
    ast.Update: _update,
    ast.Delete: _delete,
    ast.CreateTable: _create_table,
    ast.DropTable: _drop_table,
    ast.CreateIndex: _create_index,
    ast.DropIndex: _drop_index,
    ast.AlterTableAddColumn: _alter_add_column,
    ast.AlterTableDropColumn: _alter_drop_column,
    ast.TruncateTable: _truncate_table,
    ast.Begin: _begin,
    ast.Commit: _commit,
    ast.Rollback: _rollback,
}
