"""AST node classes for the mini-MySQL parser.

Nodes are plain data holders; behaviour lives in the validator
(item-stack construction), the evaluator (:mod:`repro.sqldb.expression`)
and the executor.  Every node implements ``__repr__`` and structural
``__eq__`` so tests can assert on parse trees directly.
"""


class Node(object):
    """Base class providing structural equality over ``__slots__``."""

    __slots__ = ()

    def _fields(self):
        out = []
        for cls in type(self).__mro__:
            out.extend(getattr(cls, "__slots__", ()))
        return out

    def __eq__(self, other):
        if type(self) is not type(other):
            return False
        return all(
            getattr(self, f) == getattr(other, f) for f in self._fields()
        )

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash(
            (type(self).__name__,)
            + tuple(_hashable(getattr(self, f)) for f in self._fields())
        )

    def __repr__(self):
        args = ", ".join(
            "%s=%r" % (f, getattr(self, f)) for f in self._fields()
        )
        return "%s(%s)" % (type(self).__name__, args)


def _hashable(value):
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    return value


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr(Node):
    __slots__ = ()


class Literal(Expr):
    """A literal constant.  ``type_tag`` is one of ``int``, ``float``,
    ``string``, ``null``, ``bool`` — the validator maps it to a DATA item
    kind."""

    __slots__ = ("value", "type_tag")

    def __init__(self, value, type_tag):
        self.value = value
        self.type_tag = type_tag


class Param(Expr):
    """A ``?`` placeholder (prepared-statement style)."""

    __slots__ = ()


class ColumnRef(Expr):
    """Reference to a column, optionally qualified by table/alias."""

    __slots__ = ("table", "name")

    def __init__(self, name, table=None):
        self.name = name
        self.table = table


class Star(Expr):
    """``*`` or ``table.*`` in a select list or ``COUNT(*)``."""

    __slots__ = ("table",)

    def __init__(self, table=None):
        self.table = table


class FuncCall(Expr):
    """Function invocation, including aggregates."""

    __slots__ = ("name", "args", "distinct")

    def __init__(self, name, args, distinct=False):
        self.name = name.upper()
        self.args = args
        self.distinct = distinct


class UnaryOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        self.op = op
        self.operand = operand


class BinaryOp(Expr):
    """Arithmetic / comparison / bitwise binary operator."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right


class Cond(Expr):
    """N-ary logical condition (AND / OR / XOR).

    MySQL flattens same-operator conjunction chains into a single
    ``Item_cond``; we mirror that so ``a AND b AND c`` yields exactly one
    ``COND_ITEM AND`` node in the stack (this matters for the mimicry
    example in the paper's Figure 4).
    """

    __slots__ = ("op", "operands")

    def __init__(self, op, operands):
        self.op = op
        self.operands = operands


class Not(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand):
        self.operand = operand


class InList(Expr):
    __slots__ = ("expr", "items", "negated")

    def __init__(self, expr, items, negated=False):
        self.expr = expr
        self.items = items
        self.negated = negated


class Between(Expr):
    __slots__ = ("expr", "low", "high", "negated")

    def __init__(self, expr, low, high, negated=False):
        self.expr = expr
        self.low = low
        self.high = high
        self.negated = negated


class IsNull(Expr):
    __slots__ = ("expr", "negated")

    def __init__(self, expr, negated=False):
        self.expr = expr
        self.negated = negated


class Like(Expr):
    """LIKE / REGEXP pattern match."""

    __slots__ = ("expr", "pattern", "negated", "op")

    def __init__(self, expr, pattern, negated=False, op="LIKE"):
        self.expr = expr
        self.pattern = pattern
        self.negated = negated
        self.op = op


class Case(Expr):
    """``CASE [operand] WHEN .. THEN .. [ELSE ..] END``."""

    __slots__ = ("operand", "whens", "default")

    def __init__(self, whens, operand=None, default=None):
        self.operand = operand
        self.whens = whens          # list of (cond_expr, result_expr)
        self.default = default


class Cast(Expr):
    """``CAST(expr AS type)`` / ``CONVERT(expr, type)``."""

    __slots__ = ("expr", "type_name")

    def __init__(self, expr, type_name):
        self.expr = expr
        self.type_name = type_name.upper()


class Subquery(Expr):
    __slots__ = ("select",)

    def __init__(self, select):
        self.select = select


class Exists(Expr):
    __slots__ = ("select", "negated")

    def __init__(self, select, negated=False):
        self.select = select
        self.negated = negated


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Statement(Node):
    __slots__ = ()


class SelectField(Node):
    __slots__ = ("expr", "alias")

    def __init__(self, expr, alias=None):
        self.expr = expr
        self.alias = alias


class TableRef(Node):
    __slots__ = ("name", "alias")

    def __init__(self, name, alias=None):
        self.name = name
        self.alias = alias


class DerivedTable(Node):
    """A subquery in the FROM clause: ``FROM (SELECT ...) alias``."""

    __slots__ = ("select", "alias")

    def __init__(self, select, alias):
        self.select = select
        self.alias = alias


class Join(Node):
    """A JOIN clause attached to the preceding table."""

    __slots__ = ("kind", "table", "on")

    def __init__(self, kind, table, on=None):
        self.kind = kind            # INNER / LEFT / RIGHT / CROSS
        self.table = table
        self.on = on


class OrderItem(Node):
    __slots__ = ("expr", "direction")

    def __init__(self, expr, direction="ASC"):
        self.expr = expr
        self.direction = direction


class Limit(Node):
    __slots__ = ("count", "offset")

    def __init__(self, count, offset=None):
        self.count = count
        self.offset = offset


class Select(Statement):
    __slots__ = (
        "fields", "tables", "joins", "where", "group_by", "having",
        "order_by", "limit", "distinct", "unions",
    )

    def __init__(
        self,
        fields,
        tables=None,
        joins=None,
        where=None,
        group_by=None,
        having=None,
        order_by=None,
        limit=None,
        distinct=False,
        unions=None,
    ):
        self.fields = fields
        self.tables = tables or []
        self.joins = joins or []
        self.where = where
        self.group_by = group_by or []
        self.having = having
        self.order_by = order_by or []
        self.limit = limit
        self.distinct = distinct
        #: list of (all_flag, Select) attached by UNION
        self.unions = unions or []


class Insert(Statement):
    __slots__ = ("table", "columns", "rows", "ignore", "replace",
                 "on_duplicate")

    def __init__(self, table, columns, rows, ignore=False, replace=False,
                 on_duplicate=None):
        self.table = table
        self.columns = columns      # list of column names (may be empty)
        self.rows = rows            # list of list of Expr
        self.ignore = ignore
        #: REPLACE INTO semantics (delete conflicting row, then insert)
        self.replace = replace
        #: ON DUPLICATE KEY UPDATE assignments: list of (column, Expr)
        self.on_duplicate = on_duplicate or []


class Update(Statement):
    __slots__ = ("table", "assignments", "where", "order_by", "limit")

    def __init__(self, table, assignments, where=None, order_by=None,
                 limit=None):
        self.table = table
        self.assignments = assignments  # list of (column_name, Expr)
        self.where = where
        self.order_by = order_by or []
        self.limit = limit


class Delete(Statement):
    __slots__ = ("table", "where", "order_by", "limit")

    def __init__(self, table, where=None, order_by=None, limit=None):
        self.table = table
        self.where = where
        self.order_by = order_by or []
        self.limit = limit


class ColumnDef(Node):
    __slots__ = (
        "name", "type_name", "length", "not_null", "primary_key",
        "auto_increment", "default", "unique",
    )

    def __init__(self, name, type_name, length=None, not_null=False,
                 primary_key=False, auto_increment=False, default=None,
                 unique=False):
        self.name = name
        self.type_name = type_name
        self.length = length
        self.not_null = not_null
        self.primary_key = primary_key
        self.auto_increment = auto_increment
        self.default = default
        self.unique = unique


class CreateTable(Statement):
    __slots__ = ("name", "columns", "if_not_exists")

    def __init__(self, name, columns, if_not_exists=False):
        self.name = name
        self.columns = columns
        self.if_not_exists = if_not_exists


class DropTable(Statement):
    __slots__ = ("name", "if_exists")

    def __init__(self, name, if_exists=False):
        self.name = name
        self.if_exists = if_exists


class Begin(Statement):
    """``BEGIN`` / ``START TRANSACTION``."""

    __slots__ = ()


class Commit(Statement):
    __slots__ = ()


class Rollback(Statement):
    __slots__ = ()


class CreateIndex(Statement):
    __slots__ = ("name", "table", "column")

    def __init__(self, name, table, column):
        self.name = name
        self.table = table
        self.column = column


class DropIndex(Statement):
    __slots__ = ("name", "table")

    def __init__(self, name, table):
        self.name = name
        self.table = table


class AlterTableAddColumn(Statement):
    """``ALTER TABLE t ADD [COLUMN] <coldef>``."""

    __slots__ = ("table", "column_def")

    def __init__(self, table, column_def):
        self.table = table
        self.column_def = column_def


class AlterTableDropColumn(Statement):
    """``ALTER TABLE t DROP [COLUMN] name``."""

    __slots__ = ("table", "column")

    def __init__(self, table, column):
        self.table = table
        self.column = column


class TruncateTable(Statement):
    __slots__ = ("table",)

    def __init__(self, table):
        self.table = table


class Explain(Statement):
    """``EXPLAIN <select>`` — reports the access plan."""

    __slots__ = ("select",)

    def __init__(self, select):
        self.select = select


class ShowTables(Statement):
    __slots__ = ()


class Describe(Statement):
    __slots__ = ("table",)

    def __init__(self, table):
        self.table = table
