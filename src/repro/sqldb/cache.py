"""Query-pipeline cache: memoizes the decode→parse→validate products.

The paper's Figure 5 argument is that in-DBMS protection costs almost
nothing on top of query processing.  For that to hold at scale, the
processing itself must not redo work: a web application issues the same
handful of query *shapes* millions of times, and re-tokenizing,
re-parsing and re-validating each one from scratch dwarfs the SEPTIC
hook it is supposed to showcase.

:class:`PipelineCache` is an LRU map keyed by
``(connection charset, raw SQL text, catalog schema version)`` whose
entries hold everything the pipeline derived from one raw query string:

* the charset-decoded text (the exact bytes SEPTIC must see);
* the parsed AST statements and the comment list (external-ID channel);
* for single-statement entries, the validated item stack; and
* a :class:`SepticMemo` slot in which the QS&QM manager caches the
  query structure, query model and composed query ID.

Keying on the **schema version** makes invalidation automatic and
race-free: any DDL bumps :attr:`repro.sqldb.engine.Database.schema_version`,
so stale entries simply stop matching and age out of the LRU.  Nothing
ever has to walk the cache to invalidate it.

Correctness notes:

* decoding is a pure function of ``(charset, raw_sql)`` and parsing a
  pure function of the decoded text, so those products are shareable
  across sessions unconditionally;
* validation additionally reads the catalog, hence the schema version
  in the key;
* cached AST statements are *shared* between executions — the executor
  treats statements as read-only (see ``Executor._select``'s copy-free
  UNION handling), and prepared statements clone before binding.
"""

from collections import OrderedDict

from repro import faults as faults_mod
from repro.core.resilience import make_lock


class SepticMemo(object):
    """Per-cache-entry memo of the SEPTIC hook's derived products.

    Filled lazily by :meth:`repro.core.manager.QSQMManager.receive` on
    the first hook invocation for the entry; afterwards the hook cost
    converges to the model-store dict lookup.  ``query_id`` is written
    last so concurrent readers either see a complete memo or none.
    """

    __slots__ = ("structure", "model_of_query", "query_id")

    def __init__(self):
        self.structure = None
        self.model_of_query = None
        self.query_id = None

    @property
    def ready(self):
        return self.query_id is not None


class CacheEntry(object):
    """Everything derived from one ``(charset, raw_sql, schema_version)``."""

    __slots__ = ("decoded", "statements", "comments", "stack",
                 "septic_memo", "plan")

    def __init__(self, decoded, statements, comments):
        #: charset-decoded query text (what the parser and SEPTIC see)
        self.decoded = decoded
        #: parsed AST statements (shared, read-only)
        self.statements = statements
        #: comment bodies (the external-identifier channel)
        self.comments = comments
        #: validated item stack — single-statement entries only, filled
        #: on first execution (multi-statement scripts may contain DDL
        #: whose later statements only validate mid-script)
        self.stack = None
        #: SEPTIC's memoized QS/QM/ID products for this entry
        self.septic_memo = SepticMemo()
        #: memoized physical plan, as ``(planner fingerprint, plan)`` —
        #: single-statement entries only, filled by ``Executor.prepare``
        #: and replaced whenever the planner toggles change (the cache
        #: key pins schema_version, so DDL invalidates the whole entry)
        self.plan = None

    @property
    def single_statement(self):
        return len(self.statements) == 1


class PipelineCache(object):
    """Thread-safe LRU cache of :class:`CacheEntry` objects."""

    def __init__(self, max_entries=512):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries = OrderedDict()
        self._lock = make_lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, charset, raw_sql, schema_version):
        """The entry for the key, or ``None`` (counted as hit/miss).

        A ``cache.lookup`` fault may raise (the engine degrades to the
        cold path) or corrupt the lookup into a miss — never into a
        wrong entry.
        """
        key = (charset, raw_sql, schema_version)
        with self._lock:
            entry = self._entries.get(key)
            if faults_mod.ACTIVE is not None:
                entry = faults_mod.fire("cache.lookup", entry,
                                        faults_mod.forget)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, charset, raw_sql, schema_version, entry):
        """Insert *entry*; evicts the least-recently-used beyond capacity.

        Returns the entry actually cached — when two threads race to fill
        the same key, the first insertion wins and both use it, so the
        SEPTIC memo is shared rather than split.
        """
        key = (charset, raw_sql, schema_version)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                return existing
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return (self.hits / total) if total else 0.0

    def stats_dict(self):
        """Counters snapshot (benchmarks and the status display read it)."""
        return {
            "entries": len(self),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self):
        return "PipelineCache(%d/%d entries, %.0f%% hits)" % (
            len(self), self.max_entries, 100.0 * self.hit_rate
        )
