"""MySQL-flavoured value semantics: coercion, comparison, truthiness.

These rules are a deliberate part of the substrate because several of them
feed the *semantic mismatch*:

* a string compared with a number is coerced by **prefix parsing**
  (``'1abc' = 1`` is true, ``'abc' = 0`` is true);
* default-collation string comparison is **case-insensitive** and folds the
  unicode confusables of :mod:`repro.sqldb.charset`;
* any value used as a boolean is first coerced to a number.
"""

from repro.sqldb.charset import fold_confusables

_NUM_CHARS = frozenset("0123456789")


def coerce_to_number(value):
    """MySQL's implicit string→number conversion (prefix parse)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    text = str(value).strip()
    i = 0
    n = len(text)
    if i < n and text[i] in "+-":
        i += 1
    start_digits = i
    while i < n and text[i] in _NUM_CHARS:
        i += 1
    int_end = i
    if i < n and text[i] == ".":
        i += 1
        while i < n and text[i] in _NUM_CHARS:
            i += 1
    frac_end = i
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j] in _NUM_CHARS:
            while j < n and text[j] in _NUM_CHARS:
                j += 1
            i = j
    prefix = text[:i]
    if int_end == start_digits and frac_end == int_end + 1:
        return 0  # just a sign or a lone dot
    if not prefix or prefix in ("+", "-", ".", "+.", "-."):
        return 0
    try:
        if any(ch in prefix for ch in ".eE"):
            return float(prefix)
        return int(prefix)
    except ValueError:
        return 0


def is_truthy(value):
    """MySQL boolean context: NULL is neither true nor false (None)."""
    if value is None:
        return None
    num = coerce_to_number(value)
    return bool(num)


def _fold_string(value):
    return fold_confusables(str(value)).lower()


def compare(left, right):
    """Three-way compare under MySQL coercion rules.

    Returns ``-1``, ``0`` or ``1``, or ``None`` when either side is NULL
    (SQL NULL comparison semantics).
    """
    if left is None or right is None:
        return None
    left_str = isinstance(left, str)
    right_str = isinstance(right, str)
    if left_str and right_str:
        a, b = _fold_string(left), _fold_string(right)
    else:
        a, b = coerce_to_number(left), coerce_to_number(right)
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def null_safe_equal(left, right):
    """The ``<=>`` operator: NULL <=> NULL is true."""
    if left is None and right is None:
        return 1
    if left is None or right is None:
        return 0
    return 1 if compare(left, right) == 0 else 0


def sort_key(value):
    """Key usable by ``sorted`` that matches :func:`compare` ordering.

    NULLs sort first (MySQL ASC behaviour); numbers before being compared
    with strings get bucketed by type like MySQL's result ordering does in
    the common (homogeneous column) case.
    """
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, int(value), "")
    if isinstance(value, (int, float)):
        return (1, value, "")
    return (2, 0, _fold_string(value))


# ---------------------------------------------------------------------------
# Column types
# ---------------------------------------------------------------------------

_INT_TYPES = frozenset(["INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT",
                        "BOOLEAN", "BOOL"])
_FLOAT_TYPES = frozenset(["FLOAT", "DOUBLE", "DECIMAL"])
_STRING_TYPES = frozenset(["VARCHAR", "TEXT", "CHAR", "DATETIME", "DATE"])


def type_class(type_name):
    """Coarse storage class of a column type: ``"n"`` (numeric) or
    ``"s"`` (string-backed).  The planner only trusts hash/index access
    when both sides of a comparison share a class, because :func:`compare`
    coerces *across* classes in ways a static key cannot reproduce."""
    upper = type_name.upper()
    if upper in _INT_TYPES or upper in _FLOAT_TYPES:
        return "n"
    if upper in _STRING_TYPES:
        return "s"
    return None


def store_convert(value, type_name, length=None):
    """Convert *value* for storage in a column of *type_name*.

    Mirrors MySQL's non-strict mode: out-of-range/garbage becomes a best
    effort value and **over-long strings are silently truncated** — the
    truncation is itself a known injection vector, so we keep it faithful.
    """
    upper = type_name.upper()
    if value is None:
        return None
    if upper in _INT_TYPES:
        num = coerce_to_number(value)
        return int(num)
    if upper in _FLOAT_TYPES:
        return float(coerce_to_number(value))
    if upper in _STRING_TYPES:
        text = value if isinstance(value, str) else _render(value)
        if upper in ("VARCHAR", "CHAR") and length is not None:
            return text[:length]
        return text
    raise ValueError("unknown column type %r" % type_name)


def _render(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def render_value(value):
    """Render a value the way the client would see it in a result set."""
    if value is None:
        return "NULL"
    return _render(value) if not isinstance(value, str) else value
