"""Query planning — the *plan* half of the plan/execute split.

Statements travel ``AST → logical plan → physical plan``:
:func:`build_logical` is the shape of the statement with every physical
choice erased (what the planner reasons *about*), and :class:`Planner`
lowers it to a tree of :mod:`repro.sqldb.plan` operators.  This module
is the single owner of every access-path, join-strategy and top-k
decision the engine makes:

* **access path** — :meth:`Planner._access_plan` walks the flattened
  AND chain of the WHERE clause and picks an index bucket probe
  (:class:`~repro.sqldb.plan.IndexEqScan`) or a bisect range scan
  (:class:`~repro.sqldb.plan.IndexRangeScan`) over the fallback
  :class:`~repro.sqldb.plan.SeqScan`;
* **join strategy** — :meth:`Planner._equi_join_keys` recognises
  hash-safe equi predicates and chooses
  :class:`~repro.sqldb.plan.HashJoin` over
  :class:`~repro.sqldb.plan.NestedLoopJoin`;
* **top-k** — ORDER BY fused with LIMIT becomes
  :class:`~repro.sqldb.plan.TopK` instead of a full
  :class:`~repro.sqldb.plan.Sort`.

The executor keeps only dispatch and DDL; ``EXPLAIN`` renders the tree
built here, so what EXPLAIN says is by construction what runs.
"""

from repro import faults as faults_mod
from repro.sqldb import ast_nodes as ast
from repro.sqldb import plan as plan_mod
from repro.sqldb.errors import ExecutionError
from repro.sqldb.functions import is_aggregate
from repro.sqldb.types import type_class


# -- logical plan ------------------------------------------------------


class LogicalNode(object):
    """One step of a logical plan: an operation name, a human-readable
    detail string, and input nodes.  Deliberately free of physical
    detail — no index names, no join algorithms."""

    __slots__ = ("op", "detail", "inputs")

    def __init__(self, op, detail=None, inputs=()):
        self.op = op
        self.detail = detail
        self.inputs = tuple(inputs)

    def render(self, depth=0):
        text = self.op if self.detail is None \
            else "%s(%s)" % (self.op, self.detail)
        lines = ["  " * depth + text]
        for node in self.inputs:
            lines.append(node.render(depth + 1))
        return "\n".join(lines)

    def __repr__(self):
        return "<logical %s>" % self.op


def build_logical(stmt):
    """Logical plan for a plannable statement (``None`` otherwise)."""
    if isinstance(stmt, ast.Explain):
        return build_logical(stmt.select)
    if isinstance(stmt, ast.Select):
        return _logical_select(stmt)
    if isinstance(stmt, ast.Insert):
        return LogicalNode("insert", stmt.table.lower())
    if isinstance(stmt, ast.Update):
        return LogicalNode("update", stmt.table.lower(),
                           (_logical_dml_source(stmt),))
    if isinstance(stmt, ast.Delete):
        return LogicalNode("delete", stmt.table.lower(),
                           (_logical_dml_source(stmt),))
    return None


def _logical_dml_source(stmt):
    node = LogicalNode("scan", stmt.table.lower())
    if stmt.where is not None:
        node = LogicalNode("filter", "where", (node,))
    return node


def _logical_table(ref):
    if isinstance(ref, ast.DerivedTable):
        return LogicalNode("derived", ref.alias.lower(),
                           (_logical_select(ref.select),))
    alias = (ref.alias or ref.name).lower()
    detail = ref.name.lower() if alias == ref.name.lower() \
        else "%s as %s" % (ref.name.lower(), alias)
    return LogicalNode("scan", detail)


def _logical_select(stmt):
    if stmt.tables:
        node = _logical_table(stmt.tables[0])
        for ref in stmt.tables[1:]:
            node = LogicalNode("cross", None,
                               (node, _logical_table(ref)))
        for join in stmt.joins:
            node = LogicalNode("join", join.kind.lower(),
                               (node, _logical_table(join.table)))
    else:
        node = LogicalNode("single_row")
    if stmt.where is not None:
        node = LogicalNode("filter", "where", (node,))
    if stmt.group_by or _collect_aggregates(stmt):
        node = LogicalNode("aggregate", None, (node,))
        if stmt.having is not None:
            node = LogicalNode("filter", "having", (node,))
    node = LogicalNode("project", None, (node,))
    if stmt.distinct:
        node = LogicalNode("distinct", None, (node,))
    if stmt.order_by:
        node = LogicalNode("order", None, (node,))
    if stmt.limit is not None:
        node = LogicalNode("limit", None, (node,))
    for _, branch in stmt.unions:
        node = LogicalNode("union", None, (node, _logical_select(branch)))
    return node


# -- physical planning -------------------------------------------------


class Planner(object):
    """Lowers validated statements to physical operator trees.

    One instance plans one statement: it carries the planner toggles
    (the benchmarks flip these to compare strategies on equal footing),
    assigns unique node ids across the whole tree — union branches,
    derived subplans included — and collects every base table the tree
    touches for lock planning."""

    def __init__(self, database, enable_hash_join=True, enable_topk=True):
        self._db = database
        self.enable_hash_join = enable_hash_join
        self.enable_topk = enable_topk
        self._ids = 0
        self._tables = set()

    def _mk(self, node):
        self._ids += 1
        node.node_id = self._ids
        return node

    def plan_statement(self, stmt):
        """Physical plan for *stmt*, or ``None`` for statement kinds
        that execute without one (DDL, SHOW, transactions...)."""
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("planner.plan")
        if isinstance(stmt, ast.Explain):
            stmt = stmt.select
        if isinstance(stmt, ast.Select):
            root, columns = self._plan_select(stmt)
            return plan_mod.PhysicalPlan("select", root, columns,
                                         self._tables)
        if isinstance(stmt, ast.Insert):
            self._tables.add(stmt.table.lower())
            sink = self._mk(plan_mod.InsertSink(stmt))
            return plan_mod.PhysicalPlan("insert", sink,
                                         tables=self._tables)
        if isinstance(stmt, ast.Update):
            return self._plan_dml(stmt, plan_mod.UpdateSink, "update")
        if isinstance(stmt, ast.Delete):
            return self._plan_dml(stmt, plan_mod.DeleteSink, "delete")
        return None

    # -- SELECT --------------------------------------------------------

    def _plan_select(self, stmt):
        if not stmt.unions:
            return self._plan_single(stmt)
        # UNION: plan the head without the union-level ORDER BY/LIMIT
        # (they apply to the merged rows) and check branch arity here,
        # at plan time — cached statements are shared between
        # executions, so neither planning nor execution mutates them.
        head, columns = self._plan_single(stmt, skip_order_limit=True)
        children = [head]
        flags = []
        for all_flag, branch in stmt.unions:
            branch_root, branch_cols = self._plan_single(branch)
            if len(branch_cols) != len(columns):
                raise ExecutionError(
                    "The used SELECT statements have a different "
                    "number of columns", errno=1222,
                )
            children.append(branch_root)
            flags.append(all_flag)
        union = self._mk(plan_mod.Union(children, flags, stmt.order_by,
                                        stmt.limit, columns))
        return union, columns

    def _plan_single(self, stmt, skip_order_limit=False):
        node, source_columns = self._plan_sources(stmt)
        if stmt.where is not None:
            node = self._mk(plan_mod.Filter(node, stmt.where, "where"))
        aggregates = _collect_aggregates(stmt)
        if stmt.group_by or aggregates:
            node = self._mk(plan_mod.Aggregate(node, stmt.group_by,
                                               aggregates))
            if stmt.having is not None:
                node = self._mk(plan_mod.Filter(node, stmt.having,
                                                "having"))
        columns, specs = self._project_specs(stmt, source_columns)
        node = self._mk(plan_mod.Project(node, columns, specs))
        if stmt.distinct:
            node = self._mk(plan_mod.Distinct(node))
        if not skip_order_limit:
            if stmt.order_by:
                # the top-k decision: ORDER BY fused with LIMIT runs as
                # a bounded heap instead of a full sort
                if stmt.limit is not None and self.enable_topk:
                    node = self._mk(plan_mod.TopK(
                        node, stmt.order_by, columns,
                        stmt.limit.count, stmt.limit.offset,
                    ))
                else:
                    node = self._mk(plan_mod.Sort(node, stmt.order_by,
                                                  columns))
            if stmt.limit is not None:
                node = self._mk(plan_mod.Limit(node, stmt.limit.count,
                                               stmt.limit.offset))
        return node, columns

    def _plan_sources(self, stmt):
        if not stmt.tables:
            return self._mk(plan_mod.SingleRow()), []
        alias_map = self._alias_map(stmt)
        single = len(stmt.tables) == 1 and not stmt.joins
        node, columns = self._plan_table(stmt.tables[0], stmt.where,
                                         single, first_table=True)
        for ref in stmt.tables[1:]:
            right, right_cols = self._plan_table(ref, None, False,
                                                 first_table=False)
            node = self._mk(plan_mod.NestedLoopJoin(
                node, right, "CROSS", None, right_cols, counted=False,
            ))
            columns = columns + right_cols
        left_aliases = {alias for alias, _ in columns}
        for join in stmt.joins:
            right, right_cols = self._plan_table(join.table, None, False,
                                                 first_table=False)
            keys = None
            # the join-strategy decision: hash when the ON clause has a
            # hash-safe equi predicate, nested loops otherwise
            if (self.enable_hash_join and join.on is not None
                    and join.kind in ("INNER", "LEFT", "RIGHT")):
                keys = self._equi_join_keys(join, left_aliases, alias_map)
            if keys is not None:
                right_name = join.table.name.lower()
                node = self._mk(plan_mod.HashJoin(
                    node, right, join.kind, join.on, keys[0], keys[1],
                    right_cols, right_name,
                ))
            else:
                node = self._mk(plan_mod.NestedLoopJoin(
                    node, right, join.kind, join.on, right_cols,
                    counted=True,
                ))
            columns = columns + right_cols
            left_aliases |= {alias for alias, _ in right_cols}
        return node, columns

    def _plan_table(self, ref, where, allow_unqualified, first_table):
        """Scan node + ``[(alias, column), ...]`` for one table ref.
        *where* is only passed for the first table (the access-path
        decision); join and comma right sides always scan."""
        if isinstance(ref, ast.DerivedTable):
            alias = ref.alias.lower()
            inner_root, inner_cols = self._plan_select(ref.select)
            inner_plan = plan_mod.PhysicalPlan("select", inner_root,
                                               inner_cols)
            scan = self._mk(plan_mod.DerivedScan(alias, ref.alias,
                                                 inner_plan))
            return scan, [(alias, name.lower()) for name in inner_cols]
        table = self._db.table(ref.name)
        self._tables.add(table.name)
        alias = (ref.alias or ref.name).lower()
        columns = [(alias, col.name) for col in table.columns]
        if first_table and where is not None:
            plan = self._access_plan(ref, where, allow_unqualified)
            if plan is not None and plan[0] == "eq":
                return self._mk(plan_mod.IndexEqScan(
                    table.name, alias, plan[1], plan[2],
                )), columns
            if plan is not None:
                _, column, low, high, low_incl, high_incl = plan
                return self._mk(plan_mod.IndexRangeScan(
                    table.name, alias, column, low, high,
                    low_incl, high_incl,
                )), columns
        return self._mk(plan_mod.SeqScan(
            table.name, alias, counted=first_table,
        )), columns

    def _project_specs(self, stmt, source_columns):
        """Output column names + plan-time projection specs."""
        columns = []
        specs = []
        for field in stmt.fields:
            if isinstance(field.expr, ast.Star):
                wanted = field.expr.table
                for alias, col in source_columns:
                    if wanted is not None and alias != wanted.lower():
                        continue
                    columns.append(col)
                    specs.append(("col", "%s.%s" % (alias, col)))
                if wanted is not None and not any(
                    alias == wanted.lower() for alias, _ in source_columns
                ):
                    raise ExecutionError("Unknown table '%s'" % wanted)
            else:
                columns.append(field.alias or _field_label(field.expr))
                specs.append(("expr", field.expr))
        return columns, specs

    # -- DML -----------------------------------------------------------

    def _plan_dml(self, stmt, sink_cls, kind):
        table = self._db.tables.get(stmt.table.lower())
        alias = table.name if table is not None else stmt.table.lower()
        self._tables.add(alias)
        node = self._mk(plan_mod.SeqScan(alias, alias, counted=False))
        if stmt.where is not None:
            node = self._mk(plan_mod.Filter(node, stmt.where, "where"))
        sink = self._mk(sink_cls(node, stmt, alias))
        return plan_mod.PhysicalPlan(kind, sink, tables=self._tables)

    # -- decision helpers ----------------------------------------------

    def _alias_map(self, stmt):
        """alias → catalog Table (``None`` for derived tables)."""
        mapping = {}
        for ref in list(stmt.tables) + [join.table for join in stmt.joins]:
            if isinstance(ref, ast.DerivedTable):
                mapping[ref.alias.lower()] = None
            else:
                alias = (ref.alias or ref.name).lower()
                mapping[alias] = self._db.tables.get(ref.name.lower())
        return mapping

    def _access_plan(self, ref, where, allow_unqualified=True):
        """Choose the access path for *ref* from the WHERE clause.

        Walks the flattened operands of (arbitrarily nested) AND chains
        and returns ``("eq", column, value)`` for an index bucket probe,
        ``("range", column, low, high, low_incl, high_incl)`` for a
        bisect scan, or ``None`` for a full scan.  Equality wins over
        range.  Unqualified column refs are only trusted when the caller
        says the statement is unambiguous (single table, no joins) —
        with joins in scope, only ``alias.column`` predicates narrow the
        probe side.  Narrowing is always a superset of the WHERE match
        (the full predicate still filters afterwards), so a declined
        plan costs a scan, never correctness.
        """
        if where is None:
            return None
        table = self._db.tables.get(ref.name.lower())
        if table is None:
            return None
        indexed = table.indexed_columns()
        alias = (ref.alias or ref.name).lower()
        range_plan = None
        for expr in _and_operands(where):
            pair = _equality_pair(expr, alias, allow_unqualified)
            if (pair is not None and pair[0] in indexed
                    and _literal_fits_column(table, pair[0], pair[1])):
                return ("eq",) + pair
            if range_plan is None:
                bounds = _range_bounds(expr, alias, allow_unqualified)
                if (bounds is not None and bounds[0] in indexed
                        and all(value is None
                                or _literal_fits_column(table, bounds[0],
                                                        value)
                                for value in (bounds[1], bounds[2]))):
                    range_plan = ("range",) + bounds
        return range_plan

    def _equi_join_keys(self, join, left_aliases, alias_map):
        """``(left "alias.col", right "alias.col")`` when the ON clause
        contains a hash-safe equi predicate, else ``None``.

        Hash-safe means: both sides are base-table columns whose types
        share a :func:`type_class` — :func:`compare` coerces *across*
        classes (``'1' = 1`` matches), which a static hash key cannot
        reproduce, so mixed-class keys fall back to nested loops.
        """
        right_ref = join.table
        if isinstance(right_ref, ast.DerivedTable):
            return None
        right_alias = (right_ref.alias or right_ref.name).lower()
        if right_alias in left_aliases:
            return None     # self-join without aliases: refs ambiguous
        for expr in _and_operands(join.on):
            if not isinstance(expr, ast.BinaryOp) or expr.op != "=":
                continue
            sides = []
            for operand in (expr.left, expr.right):
                side = self._join_side(operand, left_aliases, right_alias,
                                       alias_map)
                if side is None:
                    break
                sides.append(side)
            if len(sides) != 2:
                continue
            (side1, key1, class1), (side2, key2, class2) = sides
            if {side1, side2} != {"left", "right"}:
                continue
            if class1 is None or class1 != class2:
                continue
            if side1 == "left":
                return key1, key2
            return key2, key1
        return None

    def _join_side(self, operand, left_aliases, right_alias, alias_map):
        """Classify one ON operand: ``(side, "alias.col", type_class)``
        or ``None`` when it is not a resolvable base-table column."""
        if not isinstance(operand, ast.ColumnRef):
            return None
        name = operand.name.lower()
        if operand.table is not None:
            alias = operand.table.lower()
            if alias == right_alias:
                side = "right"
            elif alias in left_aliases:
                side = "left"
            else:
                return None
        else:
            scope = list(left_aliases) + [right_alias]
            if any(alias_map.get(a) is None for a in scope):
                return None     # a derived table could shadow the name
            owners = [a for a in scope
                      if alias_map[a].has_column(name)]
            if len(owners) != 1:
                return None
            alias = owners[0]
            side = "right" if alias == right_alias else "left"
        table = alias_map.get(alias)
        if table is None or not table.has_column(name):
            return None
        return side, "%s.%s" % (alias, name), \
            type_class(table.column(name).type_name)


# -- AST walking helpers -----------------------------------------------


def _collect_aggregates(stmt):
    aggregates = []

    def walk(node):
        if node is None:
            return
        if isinstance(node, ast.FuncCall):
            if is_aggregate(node.name):
                aggregates.append(node)
                return  # no nested aggregates
            for arg in node.args:
                walk(arg)
        elif isinstance(node, ast.SelectField):
            walk(node.expr)
        elif isinstance(node, ast.BinaryOp):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, (ast.UnaryOp, ast.Not)):
            walk(node.operand)
        elif isinstance(node, ast.Cond):
            for operand in node.operands:
                walk(operand)
        elif isinstance(node, ast.InList):
            walk(node.expr)
            if not isinstance(node.items, ast.Subquery):
                for item in node.items:
                    walk(item)
        elif isinstance(node, ast.Between):
            walk(node.expr)
            walk(node.low)
            walk(node.high)
        elif isinstance(node, (ast.IsNull,)):
            walk(node.expr)
        elif isinstance(node, ast.Like):
            walk(node.expr)
            walk(node.pattern)
        elif isinstance(node, ast.Case):
            walk(node.operand)
            for cond, result in node.whens:
                walk(cond)
                walk(result)
            walk(node.default)

    for field in stmt.fields:
        walk(field)
    walk(stmt.having)
    for order in stmt.order_by:
        walk(order.expr)
    return aggregates


def _and_operands(expr):
    """Flatten arbitrarily nested AND chains into their leaf operands."""
    if isinstance(expr, ast.Cond) and expr.op == "AND":
        leaves = []
        for operand in expr.operands:
            leaves.extend(_and_operands(operand))
        return leaves
    return [expr]


def _scoped_column(expr, alias, allow_unqualified):
    """Column name when *expr* is a ColumnRef resolvable to *alias*."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is None:
        return expr.name.lower() if allow_unqualified else None
    return expr.name.lower() if expr.table.lower() == alias else None


def _equality_pair(expr, alias, allow_unqualified=True):
    """``col = literal`` (either side) scoped to *alias*, else ``None``."""
    if not isinstance(expr, ast.BinaryOp) or expr.op != "=":
        return None
    for left, right in ((expr.left, expr.right), (expr.right, expr.left)):
        if isinstance(left, ast.ColumnRef) and isinstance(right,
                                                          ast.Literal):
            column = _scoped_column(left, alias, allow_unqualified)
            if column is None:
                continue
            if right.value is None:
                return None  # NULL never matches through '='
            return column, right.value
    return None


#: comparison flips when the literal moves to the left of the operator
_FLIPPED = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}


def _range_bounds(expr, alias, allow_unqualified):
    """``(col, low, high, low_incl, high_incl)`` for an index range
    scan (``<``/``>``/``<=``/``>=``/``BETWEEN`` against a literal)."""
    if isinstance(expr, ast.Between) and not expr.negated:
        column = _scoped_column(expr.expr, alias, allow_unqualified)
        if (column is not None
                and isinstance(expr.low, ast.Literal)
                and isinstance(expr.high, ast.Literal)
                and expr.low.value is not None
                and expr.high.value is not None):
            return (column, expr.low.value, expr.high.value, True, True)
        return None
    if not isinstance(expr, ast.BinaryOp) or expr.op not in _FLIPPED:
        return None
    op = expr.op
    if isinstance(expr.left, ast.ColumnRef) and isinstance(expr.right,
                                                           ast.Literal):
        ref, literal = expr.left, expr.right.value
    elif isinstance(expr.right, ast.ColumnRef) and isinstance(expr.left,
                                                              ast.Literal):
        ref, literal = expr.right, expr.left.value
        op = _FLIPPED[op]
    else:
        return None
    column = _scoped_column(ref, alias, allow_unqualified)
    if column is None or literal is None:
        return None
    if op == "<":
        return (column, None, literal, True, False)
    if op == "<=":
        return (column, None, literal, True, True)
    if op == ">":
        return (column, literal, None, False, True)
    return (column, literal, None, True, True)


def _literal_fits_column(table, column, literal):
    """Index access is only trusted when the literal's class matches
    the column's storage class: stored values are homogeneous after
    ``store_convert``, so within a class the index key order/equality
    agrees with :func:`compare` — but a numeric literal against a
    string column coerces row-by-row and must fall back to a scan."""
    cls = type_class(table.column(column).type_name)
    if cls == "n":
        return isinstance(literal, (bool, int, float, str))
    if cls == "s":
        return isinstance(literal, str)
    return False


def _field_label(expr):
    """Column heading MySQL would produce for an unaliased expression."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return "%s(...)" % expr.name.lower()
    if isinstance(expr, ast.Literal):
        from repro.sqldb.types import render_value
        return render_value(expr.value)
    return type(expr).__name__.lower()


# -- distributed planning ----------------------------------------------
#
# The sharding pass.  A :class:`DistributedPlanner` classifies one
# parsed statement against a shard catalog (a duck-typed object with
# ``shard_key(table)`` and ``columns(table)`` — the router supplies
# :class:`repro.shard.catalog.ShardCatalog`) and returns a
# :class:`ShardRoute`.  The planner never computes a hash: single-shard
# routes carry the *key values* and the router's catalog maps value →
# shard ordinal, which keeps every piece of hash-partitioning
# arithmetic inside ``repro/shard`` (a lint gate pins this).
#
# Route kinds:
#
# * ``"single"`` — shard-key equality (or a keyed DML/INSERT): the
#   original SQL text runs on exactly one shard, preserving that
#   shard's warm pipeline-cache path;
# * ``"scatter"`` — a cross-shard SELECT: ``plan`` is a
#   :class:`~repro.sqldb.plan.PhysicalPlan` whose leaves are
#   :class:`~repro.sqldb.plan.ShardScan` nodes carrying rewritten
#   per-shard SQL, merged by a gather operator (union / partial→final
#   aggregate / merge-topk) and optionally the ordinary streaming
#   operators (Distinct, Sort, Limit) above it;
# * ``"broadcast"`` — DDL fanned out to every shard;
# * ``"any"`` — statements without sharded state (SHOW/DESCRIBE, or a
#   table the catalog pins whole to shard 0).
#
# v1 scope: multi-shard DML, transactions, UNION, HAVING and FROM-
# subqueries across shards raise errno 1235 ("not supported") at plan
# time — before anything executes anywhere.

_UNSUPPORTED_ERRNO = 1235

_BROADCAST_STATEMENTS = (
    ast.CreateTable, ast.DropTable, ast.CreateIndex, ast.DropIndex,
    ast.AlterTableAddColumn, ast.AlterTableDropColumn, ast.TruncateTable,
)

#: aggregate functions with a partial→final decomposition
_DECOMPOSABLE_AGGREGATES = ("COUNT", "SUM", "MIN", "MAX", "AVG")


class ShardRoute(object):
    """One routed statement: where it runs and what runs there."""

    __slots__ = ("kind", "table", "key_values", "sql", "plan")

    def __init__(self, kind, table=None, key_values=(), sql=None,
                 plan=None):
        self.kind = kind
        self.table = table
        #: shard-key values for ``"single"`` routes — the router hashes
        #: them; more than one distinct target shard is a routing error
        self.key_values = tuple(key_values)
        self.sql = sql
        self.plan = plan

    def __repr__(self):
        if self.kind == "scatter":
            return "ShardRoute(scatter, %r)" % (self.plan,)
        return "ShardRoute(%s, table=%r, keys=%r)" % (
            self.kind, self.table, self.key_values
        )


def _unsupported(what):
    return ExecutionError(
        "%s is not supported across shards (v1: single-shard writes, "
        "scatter/gather reads)" % what, errno=_UNSUPPORTED_ERRNO,
    )


class DistributedPlanner(object):
    """Classify statements as single-shard or cross-shard and build the
    scatter/gather plan for the latter."""

    def __init__(self, shard_count, catalog):
        self.shard_count = shard_count
        self.catalog = catalog
        self._next_id = 0

    def _mk(self, node):
        self._next_id += 1
        node.node_id = self._next_id
        return node

    # -- classification ------------------------------------------------

    def route(self, stmt, sql_text):
        """The :class:`ShardRoute` for one parsed statement."""
        if isinstance(stmt, _BROADCAST_STATEMENTS):
            return ShardRoute("broadcast", sql=sql_text)
        if isinstance(stmt, (ast.Begin, ast.Commit, ast.Rollback)):
            raise _unsupported("an explicit transaction")
        if isinstance(stmt, ast.Insert):
            return self._route_insert(stmt, sql_text)
        if isinstance(stmt, (ast.Update, ast.Delete)):
            return self._route_dml(stmt, sql_text)
        if isinstance(stmt, ast.Select):
            return self._route_select(stmt, sql_text)
        # SHOW TABLES / DESCRIBE / EXPLAIN: schema is identical on every
        # shard (DDL broadcasts), so any one shard answers
        return ShardRoute("any", sql=sql_text)

    def _key_for(self, table):
        return self.catalog.shard_key(table)

    def _where_key_value(self, stmt, alias, key):
        """The literal the WHERE clause pins the shard key to, if any."""
        if stmt.where is None:
            return None
        for operand in _and_operands(stmt.where):
            pair = _equality_pair(operand, alias)
            if pair is not None and pair[0].lower() == key:
                return pair
        return None

    # -- writes --------------------------------------------------------

    def _route_insert(self, stmt, sql_text):
        key = self._key_for(stmt.table)
        if key is None:
            return ShardRoute("any", table=stmt.table, sql=sql_text)
        columns = stmt.columns or self.catalog.columns(stmt.table)
        if not columns:
            raise _unsupported(
                "INSERT into %r before its CREATE TABLE reached the "
                "router (unknown column order)" % stmt.table
            )
        lowered = [c.lower() for c in columns]
        if key not in lowered:
            raise _unsupported(
                "INSERT into %r without its shard key %r" % (stmt.table,
                                                             key)
            )
        position = lowered.index(key)
        values = []
        for row in stmt.rows:
            if position >= len(row) or not isinstance(row[position],
                                                      ast.Literal):
                raise _unsupported(
                    "INSERT into %r with a non-literal shard key"
                    % stmt.table
                )
            values.append(row[position].value)
        return ShardRoute("single", table=stmt.table, key_values=values,
                          sql=sql_text)

    def _route_dml(self, stmt, sql_text):
        key = self._key_for(stmt.table)
        if key is None:
            return ShardRoute("any", table=stmt.table, sql=sql_text)
        pair = self._where_key_value(stmt, stmt.table, key)
        if pair is None:
            raise _unsupported(
                "multi-shard %s of %r (no shard-key equality on %r)"
                % (type(stmt).__name__.upper(), stmt.table, key)
            )
        return ShardRoute("single", table=stmt.table,
                          key_values=(pair[1],), sql=sql_text)

    # -- reads ---------------------------------------------------------

    def _route_select(self, stmt, sql_text):
        if stmt.unions:
            raise _unsupported("UNION")
        sources = list(stmt.tables) + [join.table for join in stmt.joins]
        for source in sources:
            if not isinstance(source, ast.TableRef):
                raise _unsupported("a FROM subquery")
        if not sources:
            # SELECT without FROM: pure expression, any shard answers
            return ShardRoute("any", sql=sql_text)
        keyed = []          # shard-key values pinning sharded sources
        pinned = 0          # unsharded sources (whole table on shard 0)
        scatterable = []    # sharded sources without a key equality
        for ref in sources:
            key = self._key_for(ref.name)
            if key is None:
                pinned += 1
                continue
            pair = self._where_key_value(stmt, ref.alias or ref.name, key)
            if pair is None:
                scatterable.append(ref)
            else:
                keyed.append(pair[1])
        if not scatterable and not pinned:
            # every source has a shard-key equality: single-shard (the
            # router verifies the key values co-locate)
            return ShardRoute("single", table=sources[0].name,
                              key_values=keyed, sql=sql_text)
        if len(sources) == 1:
            if pinned:
                # the only source lives whole on shard 0
                return ShardRoute("any", table=sources[0].name,
                                  sql=sql_text)
            return self._scatter_select(stmt, sources[0])
        raise _unsupported("a cross-shard join")

    # -- scatter/gather plan construction ------------------------------

    def _output_fields(self, stmt, table):
        """Expand ``*`` through the catalog's column order so the
        gather knows its output shape."""
        fields = []
        for field in stmt.fields:
            if isinstance(field.expr, ast.Star):
                columns = self.catalog.columns(table)
                if not columns:
                    raise _unsupported(
                        "SELECT * from %r before its CREATE TABLE "
                        "reached the router" % table
                    )
                fields.extend(
                    ast.SelectField(ast.ColumnRef(name))
                    for name in columns
                )
            else:
                fields.append(field)
        return fields

    def _order_key_indexes(self, order_by, columns):
        """Map each ORDER BY expression to an output-column position.
        Cross-shard ordering happens over result tuples — the key must
        be something every shard already returned."""
        lowered = [c.lower() for c in columns]
        indexes = []
        for item in order_by:
            expr = item.expr
            if isinstance(expr, ast.Literal) and expr.type_tag == "int" \
                    and 1 <= expr.value <= len(columns):
                indexes.append(expr.value - 1)
            elif isinstance(expr, ast.ColumnRef) and expr.table is None \
                    and expr.name.lower() in lowered:
                indexes.append(lowered.index(expr.name.lower()))
            else:
                raise _unsupported(
                    "cross-shard ORDER BY on a non-output column"
                )
        return indexes

    @staticmethod
    def _limit_ints(limit):
        """LIMIT/OFFSET as plan-time ints (literals only across shards)."""
        count = limit.count
        offset = limit.offset
        if not isinstance(count, ast.Literal) or (
                offset is not None and not isinstance(offset, ast.Literal)):
            raise _unsupported("a non-literal cross-shard LIMIT")
        return (max(int(count.value), 0),
                0 if offset is None else max(int(offset.value), 0))

    def _shard_scans(self, stmt):
        """One :class:`ShardScan` per shard ordinal for *stmt*."""
        from repro.sqldb.unparse import to_sql

        sql = to_sql(stmt)
        return [self._mk(plan_mod.ShardScan(shard, sql))
                for shard in range(self.shard_count)]

    def _scatter_select(self, stmt, ref):
        if stmt.having is not None:
            raise _unsupported("cross-shard HAVING")
        fields = self._output_fields(stmt, ref.name)
        columns = [f.alias or _field_label(f.expr) for f in fields]
        aggregates = _collect_aggregates(stmt)
        if aggregates or stmt.group_by:
            root = self._gather_aggregate(stmt, ref, fields, columns)
        elif stmt.order_by and stmt.limit is not None:
            root = self._gather_topk(stmt, ref, fields, columns)
        else:
            root = self._gather_union(stmt, ref, fields, columns)
        plan = plan_mod.PhysicalPlan("select", root, columns=columns,
                                     tables=(ref.name.lower(),))
        return ShardRoute("scatter", table=ref.name, plan=plan)

    def _gather_union(self, stmt, ref, fields, columns):
        """Plain SELECT: concatenate disjoint partitions; DISTINCT
        dedupes above the gather, a bare LIMIT pushes down fused."""
        per_shard = ast.Select(
            fields=fields, tables=[ref], where=stmt.where,
            order_by=list(stmt.order_by), distinct=stmt.distinct,
        )
        count = offset = None
        if stmt.limit is not None:
            count, offset = self._limit_ints(stmt.limit)
            per_shard.limit = ast.Limit(
                ast.Literal(count + offset, "int")
            )
        if stmt.order_by:
            # validated here so the Sort above the gather never needs an
            # evaluation context
            self._order_key_indexes(stmt.order_by, columns)
        root = self._mk(plan_mod.GatherUnion(self._shard_scans(per_shard)))
        if stmt.distinct:
            root = self._mk(plan_mod.Distinct(root))
        if stmt.order_by:
            root = self._mk(plan_mod.Sort(root, stmt.order_by, columns))
        if stmt.limit is not None:
            root = self._mk(plan_mod.Limit(
                root, ast.Literal(count, "int"),
                None if not offset else ast.Literal(offset, "int"),
            ))
        return root

    def _gather_topk(self, stmt, ref, fields, columns):
        """ORDER BY + LIMIT: each shard returns its local top
        ``offset + count`` rows and the gather merge-heaps them."""
        if stmt.distinct:
            raise _unsupported("cross-shard SELECT DISTINCT ... LIMIT")
        count, offset = self._limit_ints(stmt.limit)
        key_indexes = self._order_key_indexes(stmt.order_by, columns)
        descending = [o.direction == "DESC" for o in stmt.order_by]
        per_shard = ast.Select(
            fields=fields, tables=[ref], where=stmt.where,
            order_by=list(stmt.order_by),
            limit=ast.Limit(ast.Literal(count + offset, "int")),
        )
        return self._mk(plan_mod.GatherTopK(
            self._shard_scans(per_shard), key_indexes, descending,
            count, offset,
        ))

    def _gather_aggregate(self, stmt, ref, fields, columns):
        """COUNT/SUM/MIN/MAX/AVG (with optional GROUP BY): shards
        compute partials, the gather merges and finalizes."""
        if stmt.distinct:
            raise _unsupported("cross-shard SELECT DISTINCT aggregates")
        group_exprs = list(stmt.group_by)
        partial_fields = []     # the per-shard SELECT list
        merges = []             # fold op per partial column
        finals = []             # output projection over merged partials
        describe = []
        key_indexes = []
        for field, column in zip(fields, columns):
            expr = field.expr
            if isinstance(expr, ast.FuncCall) and is_aggregate(expr.name):
                name = expr.name.upper()
                if name not in _DECOMPOSABLE_AGGREGATES:
                    raise _unsupported(
                        "cross-shard aggregate %s()" % name
                    )
                if expr.distinct:
                    raise _unsupported(
                        "cross-shard %s(DISTINCT ...)" % name
                    )
                if name == "AVG":
                    sum_idx = len(partial_fields)
                    partial_fields.append(ast.SelectField(
                        ast.FuncCall("SUM", list(expr.args))
                    ))
                    merges.append("sum")
                    partial_fields.append(ast.SelectField(
                        ast.FuncCall("COUNT", list(expr.args))
                    ))
                    merges.append("sum")
                    finals.append(("avg", sum_idx, sum_idx + 1))
                    describe.append("avg->sum/count")
                else:
                    finals.append(("col", len(partial_fields)))
                    partial_fields.append(ast.SelectField(expr))
                    merges.append("sum" if name in ("COUNT", "SUM")
                                  else name.lower())
                    describe.append(
                        "count->sum" if name == "COUNT" else name.lower()
                    )
            elif any(expr == group for group in group_exprs):
                key_indexes.append(len(partial_fields))
                finals.append(("col", len(partial_fields)))
                partial_fields.append(field)
                merges.append("key")
                describe.append(column.lower())
            else:
                raise _unsupported(
                    "cross-shard SELECT of a non-grouped column"
                )
        # group-by keys the output doesn't show still partition the
        # merge: append them as hidden trailing partial columns
        shown = [field.expr for field in partial_fields]
        for group in group_exprs:
            if not any(group == expr for expr in shown):
                key_indexes.append(len(partial_fields))
                partial_fields.append(ast.SelectField(group))
                merges.append("key")
        per_shard = ast.Select(
            fields=partial_fields, tables=[ref], where=stmt.where,
            group_by=group_exprs,
        )
        root = self._mk(plan_mod.GatherAggregate(
            self._shard_scans(per_shard), key_indexes, merges, finals,
            ", ".join(describe),
        ))
        if stmt.order_by:
            key_indexes = self._order_key_indexes(stmt.order_by, columns)
            if stmt.limit is not None:
                count, offset = self._limit_ints(stmt.limit)
                root = self._mk(plan_mod.GatherTopK(
                    (root,), key_indexes,
                    [o.direction == "DESC" for o in stmt.order_by],
                    count, offset,
                ))
            else:
                root = self._mk(plan_mod.Sort(root, stmt.order_by,
                                              columns))
        elif stmt.limit is not None:
            count, offset = self._limit_ints(stmt.limit)
            root = self._mk(plan_mod.Limit(
                root, ast.Literal(count, "int"),
                None if not offset else ast.Literal(offset, "int"),
            ))
        return root
