"""SQL tokenizer with MySQL-flavoured syntax.

Produces a list of :class:`Token` plus the comments encountered (comments
matter: SEPTIC's optional *external identifier* travels to the server in a
``/* ... */`` comment concatenated to the query).

MySQL quirks reproduced here:

* ``--`` starts a comment only when followed by whitespace/end of input
  (``a--b`` is a double minus);
* ``#`` comments to end of line;
* ``/*! ... */`` version comments: their *content* is executed, not skipped;
* backslash escapes inside string literals, plus doubled quotes;
* hex literals ``0x414243`` and ``x'41'``;
* backtick-quoted identifiers.
"""

from repro.sqldb.errors import LexerError


class TokenType:
    """Token type tags (plain strings keep debugging output readable)."""

    IDENT = "IDENT"          # unquoted or backtick-quoted identifier
    KEYWORD = "KEYWORD"      # reserved word, value upper-cased
    INT = "INT"
    FLOAT = "FLOAT"
    STRING = "STRING"
    HEX = "HEX"              # hex literal, value is the decoded string
    OP = "OP"                # operator / punctuation
    PARAM = "PARAM"          # `?` placeholder
    EOF = "EOF"


KEYWORDS = frozenset(
    """
    SELECT FROM WHERE AND OR XOR NOT NULL TRUE FALSE INSERT INTO VALUES
    UPDATE SET DELETE CREATE TABLE DROP IF EXISTS PRIMARY KEY AUTO_INCREMENT
    DEFAULT UNIQUE JOIN INNER LEFT RIGHT OUTER CROSS ON AS ORDER BY GROUP
    HAVING LIMIT OFFSET ASC DESC UNION ALL DISTINCT LIKE IN IS BETWEEN
    CASE WHEN THEN ELSE END DIV MOD REGEXP RLIKE SHOW TABLES DESCRIBE
    INTEGER INT BIGINT SMALLINT TINYINT VARCHAR TEXT CHAR DATETIME DATE
    FLOAT DOUBLE DECIMAL BOOLEAN BOOL REPLACE DUPLICATE CAST CONVERT
    SIGNED UNSIGNED BEGIN START TRANSACTION COMMIT ROLLBACK INDEX EXPLAIN
    ALTER ADD COLUMN TRUNCATE COLUMNS
    """.split()
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<=>", "<<", ">>", "<>", "!=", ">=", "<=", ":=", "&&", "||",
    "=", "<", ">", "+", "-", "*", "/", "%", "(", ")", ",", ";",
    ".", "&", "|", "^", "~", "!", "@",
)


class Token(object):
    """A single lexical token.

    ``value`` is normalized: keywords upper-cased, string/hex literals
    decoded to their contents, numbers kept as text (the parser converts).
    """

    __slots__ = ("type", "value", "pos")

    def __init__(self, type_, value, pos):
        self.type = type_
        self.value = value
        self.pos = pos

    def matches(self, type_, value=None):
        if self.type != type_:
            return False
        return value is None or self.value == value

    def __repr__(self):
        return "Token(%s, %r)" % (self.type, self.value)

    def __eq__(self, other):
        return (
            isinstance(other, Token)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self):
        return hash((self.type, self.value))


class LexResult(object):
    """Tokens plus side-channel information the engine needs."""

    __slots__ = ("tokens", "comments")

    def __init__(self, tokens, comments):
        self.tokens = tokens
        #: All comment bodies in source order (used by the ID generator to
        #: pick up external identifiers).
        self.comments = comments


_IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$"
)
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")

_STRING_ESCAPES = {
    "0": "\0",
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "b": "\b",
    "Z": "\x1a",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "%": "\\%",   # MySQL keeps \% and \_ literally (LIKE patterns)
    "_": "\\_",
}


def tokenize(sql):
    """Tokenize *sql* and return a :class:`LexResult`.

    Raises :class:`LexerError` on unterminated strings/comments or
    characters that cannot start a token.
    """
    tokens = []
    comments = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        # -- whitespace ------------------------------------------------
        if ch in " \t\r\n\f\v":
            i += 1
            continue
        # -- comments --------------------------------------------------
        if ch == "#":
            j = sql.find("\n", i)
            j = n if j < 0 else j
            comments.append(sql[i + 1 : j].strip())
            i = j
            continue
        if ch == "-" and sql.startswith("--", i):
            nxt = sql[i + 2 : i + 3]
            if nxt == "" or nxt in " \t\r\n":
                j = sql.find("\n", i)
                j = n if j < 0 else j
                comments.append(sql[i + 2 : j].strip())
                i = j
                continue
            # fall through: "a--b" is two minus signs
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated comment at position %d" % i)
            body = sql[i + 2 : end]
            if body.startswith("!"):
                # Version comment: MySQL executes its content.  Strip the
                # optional 5-digit version number and re-lex the body.
                inner = body[1:]
                k = 0
                while k < len(inner) and k < 5 and inner[k].isdigit():
                    k += 1
                inner = inner[k:]
                sub = tokenize(inner)
                tokens.extend(sub.tokens[:-1])  # drop inner EOF
                comments.extend(sub.comments)
            else:
                comments.append(body.strip())
            i = end + 2
            continue
        # -- string literals -------------------------------------------
        if ch in "'\"":
            value, i = _lex_string(sql, i, ch)
            tokens.append(Token(TokenType.STRING, value, i))
            continue
        # -- hex literals ----------------------------------------------
        if ch in "xX" and sql[i + 1 : i + 2] == "'":
            end = sql.find("'", i + 2)
            if end < 0:
                raise LexerError("unterminated hex literal at %d" % i)
            digits = sql[i + 2 : end]
            tokens.append(Token(TokenType.HEX, _decode_hex(digits, i), i))
            i = end + 1
            continue
        if ch == "0" and sql[i + 1 : i + 2] in "xX":
            j = i + 2
            while j < n and sql[j] in _HEX_DIGITS:
                j += 1
            if j == i + 2 or (j < n and sql[j] in _IDENT_CONT):
                # "0x" with no digits, or 0x12ZZ: lex as number+ident
                tokens.append(Token(TokenType.INT, "0", i))
                i += 1
                continue
            tokens.append(Token(TokenType.HEX, _decode_hex(sql[i + 2 : j], i), i))
            i = j
            continue
        # -- numbers ---------------------------------------------------
        if ch in _DIGITS or (
            ch == "." and sql[i + 1 : i + 2] in _DIGITS
        ):
            tok, i = _lex_number(sql, i)
            tokens.append(tok)
            continue
        # -- identifiers / keywords ------------------------------------
        if ch in _IDENT_START:
            j = i + 1
            while j < n and sql[j] in _IDENT_CONT:
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        if ch == "`":
            end = sql.find("`", i + 1)
            if end < 0:
                raise LexerError("unterminated quoted identifier at %d" % i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : end], i))
            i = end + 1
            continue
        # -- placeholder -----------------------------------------------
        if ch == "?":
            tokens.append(Token(TokenType.PARAM, "?", i))
            i += 1
            continue
        # -- operators -------------------------------------------------
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OP, op, i))
                i += len(op)
                break
        else:
            raise LexerError(
                "unexpected character %r at position %d" % (ch, i)
            )
    tokens.append(Token(TokenType.EOF, "", n))
    return LexResult(tokens, comments)


def _lex_string(sql, i, quote):
    """Lex a quoted string starting at ``sql[i] == quote``.

    Returns ``(decoded_value, next_index)``.  Handles backslash escapes and
    doubled quotes.
    """
    out = []
    j = i + 1
    n = len(sql)
    while j < n:
        ch = sql[j]
        if ch == "\\" and j + 1 < n:
            esc = sql[j + 1]
            out.append(_STRING_ESCAPES.get(esc, esc))
            j += 2
            continue
        if ch == quote:
            if sql[j + 1 : j + 2] == quote:  # doubled quote
                out.append(quote)
                j += 2
                continue
            return "".join(out), j + 1
        out.append(ch)
        j += 1
    raise LexerError("unterminated string literal at position %d" % i)


def _lex_number(sql, i):
    """Lex an integer or float starting at position *i*."""
    j = i
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while j < n:
        ch = sql[j]
        if ch in _DIGITS:
            j += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            j += 1
        elif ch in "eE" and not seen_exp and j > i:
            nxt = sql[j + 1 : j + 2]
            nxt2 = sql[j + 2 : j + 3]
            if nxt in _DIGITS or (nxt in "+-" and nxt2 in _DIGITS):
                seen_exp = True
                j += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    text = sql[i:j]
    if seen_dot or seen_exp:
        return Token(TokenType.FLOAT, text, i), j
    return Token(TokenType.INT, text, i), j


def _decode_hex(digits, pos):
    """Decode a hex literal's digits to the string MySQL would produce."""
    if len(digits) % 2:
        digits = "0" + digits
    try:
        return bytes.fromhex(digits).decode("utf-8", "replace")
    except ValueError:
        raise LexerError("invalid hex literal at position %d" % pos)
