"""Statement execution against the in-memory storage engine.

The planner here is deliberately small but real: single-table (and join
probe-side) predicates resolve to ``eq`` (hash bucket) or ``range``
(bisect) index access, equi-joins build a hash table on the smaller
side (falling back to nested loops for non-equi or type-incompatible
keys), and ORDER BY fused with LIMIT runs as a heap top-k instead of a
full sort.  Every choice is observable: ``EXPLAIN`` reports the access
type (``ALL``/``ref``/``range``/``hash``) and :attr:`Executor.plan_stats`
counts which strategies actually ran.
"""

import functools
import heapq

from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import ExecutionError
from repro.sqldb.expression import EvalContext, evaluate, _agg_key
from repro.sqldb.functions import is_aggregate
from repro.sqldb.storage import Column, ResultSet
from repro.sqldb.types import compare, is_truthy, sort_key, type_class


class ExecutionResult(object):
    """Uniform result wrapper: a result set or an affected-row count."""

    __slots__ = ("result_set", "affected_rows", "last_insert_id",
                 "sleep_seconds")

    def __init__(self, result_set=None, affected_rows=0, last_insert_id=None,
                 sleep_seconds=0.0):
        self.result_set = result_set
        self.affected_rows = affected_rows
        self.last_insert_id = last_insert_id
        #: simulated SLEEP()/BENCHMARK() seconds accumulated while executing
        self.sleep_seconds = sleep_seconds

    @property
    def is_select(self):
        return self.result_set is not None

    def __repr__(self):
        if self.is_select:
            return "ExecutionResult(%r)" % (self.result_set,)
        return "ExecutionResult(affected=%d)" % self.affected_rows


class Executor(object):
    """Executes validated statements against a :class:`Database` catalog."""

    def __init__(self, database):
        self._db = database
        #: planner toggles — the benchmarks flip these to measure the
        #: legacy strategies against the indexed ones on equal footing
        self.enable_hash_join = True
        self.enable_topk = True
        #: counts of the strategies that actually ran (plan testability)
        self.plan_stats = {
            "index_eq": 0, "index_range": 0, "full_scans": 0,
            "hash_joins": 0, "nested_loop_joins": 0,
            "topk_orders": 0, "full_sorts": 0,
        }

    # -- entry point -----------------------------------------------------

    def execute(self, stmt, session=None):
        if session is None:
            session = self._db.default_session
        ctx = EvalContext(self._db, executor=self, session=session)
        if isinstance(stmt, ast.Select):
            rs = self._select(stmt, ctx)
            return ExecutionResult(result_set=rs,
                                   sleep_seconds=ctx.sleep_seconds)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt, ctx)
        if isinstance(stmt, ast.Update):
            return self._update(stmt, ctx)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt, ctx)
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, ast.DropTable):
            return self._drop_table(stmt)
        if isinstance(stmt, ast.ShowTables):
            names = sorted(self._db.tables)
            return ExecutionResult(
                result_set=ResultSet(["Tables_in_%s" % self._db.name],
                                     [(n,) for n in names])
            )
        if isinstance(stmt, ast.Describe):
            return self._describe(stmt)
        if isinstance(stmt, ast.Begin):
            session.begin()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.Commit):
            session.commit()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.Rollback):
            session.rollback()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.CreateIndex):
            self._db.table(stmt.table).create_index(stmt.name, stmt.column)
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.DropIndex):
            self._db.table(stmt.table).drop_index(stmt.name)
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.Explain):
            return ExecutionResult(result_set=self._explain(stmt.select))
        if isinstance(stmt, ast.AlterTableAddColumn):
            return self._alter_add_column(stmt)
        if isinstance(stmt, ast.AlterTableDropColumn):
            return self._alter_drop_column(stmt)
        if isinstance(stmt, ast.TruncateTable):
            table = self._db.table(stmt.table)
            removed = len(table.rows)
            table.truncate()   # also resets AUTO_INCREMENT
            return ExecutionResult(affected_rows=removed)
        raise ExecutionError("cannot execute %r" % type(stmt).__name__)

    # -- subquery support --------------------------------------------------

    def run_select_rows(self, select, outer_ctx=None):
        """Run a subquery SELECT, returning raw row tuples."""
        session = outer_ctx.session if outer_ctx is not None else None
        ctx = EvalContext(self._db, executor=self, session=session)
        if outer_ctx is not None:
            ctx._parent = outer_ctx
            ctx.row = dict(outer_ctx.row)
        rs = self._select(select, ctx, outer_row=ctx.row)
        return rs.rows

    # -- SELECT -------------------------------------------------------------

    def _select(self, stmt, ctx, outer_row=None):
        if not stmt.unions:
            return self._select_single(stmt, ctx, outer_row)
        # UNION: evaluate every branch without the union-level ORDER BY /
        # LIMIT, merge, then order and trim the merged rows.  The head is
        # evaluated with skip_order_limit rather than by blanking the AST
        # fields: cached statements are shared between executions (and
        # threads), so execution must never mutate them.
        order_by, limit = stmt.order_by, stmt.limit
        rs = self._select_single(stmt, ctx, outer_row, skip_order_limit=True)
        rows = list(rs.rows)
        dedupe = False
        for all_flag, branch in stmt.unions:
            branch_rs = self._select_single(branch, ctx, outer_row)
            if len(branch_rs.columns) != len(rs.columns):
                raise ExecutionError(
                    "The used SELECT statements have a different "
                    "number of columns", errno=1222,
                )
            rows.extend(branch_rs.rows)
            if not all_flag:
                dedupe = True
        if dedupe:
            deduped = []
            seen = set()
            for row in rows:
                key = tuple(
                    v.lower() if isinstance(v, str) else v for v in row
                )
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        if order_by:
            rows = self._order_union_rows(rows, order_by, rs.columns)
        if limit is not None:
            count = int(evaluate(limit.count, ctx))
            offset = 0
            if limit.offset is not None:
                offset = int(evaluate(limit.offset, ctx))
            rows = rows[offset : offset + max(count, 0)]
        return ResultSet(rs.columns, rows)

    def _order_union_rows(self, rows, order_by, columns):
        """Union-level ORDER BY: by position or output column name."""
        lowered = [c.lower() for c in columns]

        def key_index(expr):
            if isinstance(expr, ast.Literal) and expr.type_tag == "int":
                idx = expr.value - 1
                if idx < 0 or idx >= len(columns):
                    raise ExecutionError(
                        "Unknown column '%s' in 'order clause'" % expr.value
                    )
                return idx
            if isinstance(expr, ast.ColumnRef) and expr.table is None and \
                    expr.name.lower() in lowered:
                return lowered.index(expr.name.lower())
            raise ExecutionError(
                "ORDER BY on a UNION must name an output column"
            )

        indexed = [(key_index(o.expr), o.direction == "DESC")
                   for o in order_by]
        rows = list(rows)
        for idx, reverse in reversed(indexed):
            rows.sort(key=lambda row: sort_key(row[idx]), reverse=reverse)
        return rows

    def _select_single(self, stmt, ctx, outer_row=None,
                       skip_order_limit=False):
        source_rows, source_columns = self._build_sources(stmt, ctx,
                                                          outer_row)
        # WHERE
        if stmt.where is not None:
            source_rows = [
                row for row in source_rows
                if is_truthy(evaluate(stmt.where, ctx.child(row)))
            ]
        aggregates = self._collect_aggregates(stmt)
        if stmt.group_by or aggregates:
            source_rows = self._group(stmt, source_rows, aggregates, ctx)
            if stmt.having is not None:
                source_rows = [
                    row for row in source_rows
                    if is_truthy(evaluate(stmt.having, ctx.child(row)))
                ]
        # project
        columns, pairs = self._project(stmt, source_rows, source_columns, ctx)
        # DISTINCT
        if stmt.distinct:
            seen = set()
            deduped = []
            for src, out in pairs:
                key = tuple(
                    v.lower() if isinstance(v, str) else v for v in out
                )
                if key not in seen:
                    seen.add(key)
                    deduped.append((src, out))
            pairs = deduped
        # LIMIT bounds (evaluated up front so ORDER BY can fuse with them)
        count = offset = None
        if stmt.limit is not None and not skip_order_limit:
            count = max(int(evaluate(stmt.limit.count, ctx)), 0)
            offset = 0
            if stmt.limit.offset is not None:
                offset = int(evaluate(stmt.limit.offset, ctx))
        # ORDER BY — a heap top-k when a LIMIT bounds the output
        if stmt.order_by and not skip_order_limit:
            if count is not None and offset >= 0 and self.enable_topk:
                pairs = self._order_topk(stmt, pairs, columns, ctx,
                                         offset + count)
            else:
                pairs = self._order(stmt, pairs, columns, ctx)
        # LIMIT
        if count is not None:
            pairs = pairs[offset : offset + count]
        return ResultSet(columns, [out for _, out in pairs])

    def _table_rows(self, ref, ctx, outer_row):
        if isinstance(ref, ast.DerivedTable):
            return self._derived_rows(ref, ctx, outer_row)
        table = self._db.table(ref.name)
        alias = (ref.alias or ref.name).lower()
        columns = [(alias, col.name) for col in table.columns]
        rows = []
        for stored in table.rows:
            row = {} if outer_row is None else dict(outer_row)
            for col_name, value in stored.items():
                row["%s.%s" % (alias, col_name)] = value
            row["__source__%s" % alias] = stored
            rows.append(row)
        return rows, columns

    def _derived_rows(self, ref, ctx, outer_row):
        """Materialize a FROM-clause subquery under its alias."""
        alias = ref.alias.lower()
        result = self._select(ref.select, ctx, outer_row)
        col_names = [c.lower() for c in result.columns]
        columns = [(alias, name) for name in col_names]
        rows = []
        for values in result.rows:
            row = {} if outer_row is None else dict(outer_row)
            for name, value in zip(col_names, values):
                row["%s.%s" % (alias, name)] = value
            rows.append(row)
        return rows, columns

    def _build_sources(self, stmt, ctx, outer_row):
        if not stmt.tables:
            base = {} if outer_row is None else dict(outer_row)
            return [base], []
        first = stmt.tables[0]
        alias_map = self._alias_map(stmt)
        single = len(stmt.tables) == 1 and not stmt.joins
        rows = columns = None
        if not isinstance(first, ast.DerivedTable):
            plan = self._access_plan(first, stmt.where,
                                     allow_unqualified=single)
            if plan is not None:
                rows, columns = self._plan_rows(first, plan, outer_row)
        if rows is None:
            rows, columns = self._table_rows(first, ctx, outer_row)
            if not isinstance(first, ast.DerivedTable):
                self.plan_stats["full_scans"] += 1
        for ref in stmt.tables[1:]:
            right_rows, right_cols = self._table_rows(ref, ctx, outer_row)
            rows = [
                _merge(a, b) for a in rows for b in right_rows
            ]
            columns += right_cols
        left_aliases = {alias for alias, _ in columns}
        for join in stmt.joins:
            right_rows, right_cols = self._table_rows(join.table, ctx,
                                                      outer_row)
            rows = self._apply_join(join, rows, right_rows, right_cols,
                                    ctx, left_aliases, alias_map)
            columns += right_cols
            left_aliases |= {alias for alias, _ in right_cols}
        return rows, columns

    def _alias_map(self, stmt):
        """alias → catalog Table (``None`` for derived tables)."""
        mapping = {}
        for ref in list(stmt.tables) + [join.table for join in stmt.joins]:
            if isinstance(ref, ast.DerivedTable):
                mapping[ref.alias.lower()] = None
            else:
                alias = (ref.alias or ref.name).lower()
                mapping[alias] = self._db.tables.get(ref.name.lower())
        return mapping

    def _access_plan(self, ref, where, allow_unqualified=True):
        """Choose the access path for *ref* from the WHERE clause.

        Walks the flattened operands of (arbitrarily nested) AND chains
        and returns ``("eq", column, value)`` for an index bucket probe,
        ``("range", column, low, high, low_incl, high_incl)`` for a
        bisect scan, or ``None`` for a full scan.  Equality wins over
        range.  Unqualified column refs are only trusted when the caller
        says the statement is unambiguous (single table, no joins) —
        with joins in scope, only ``alias.column`` predicates narrow the
        probe side.  Narrowing is always a superset of the WHERE match
        (the full predicate still filters afterwards), so a declined
        plan costs a scan, never correctness.
        """
        if where is None:
            return None
        table = self._db.tables.get(ref.name.lower())
        if table is None:
            return None
        indexed = table.indexed_columns()
        alias = (ref.alias or ref.name).lower()
        range_plan = None
        for expr in _and_operands(where):
            pair = _equality_pair(expr, alias, allow_unqualified)
            if (pair is not None and pair[0] in indexed
                    and _literal_fits_column(table, pair[0], pair[1])):
                return ("eq",) + pair
            if range_plan is None:
                bounds = _range_bounds(expr, alias, allow_unqualified)
                if (bounds is not None and bounds[0] in indexed
                        and all(value is None
                                or _literal_fits_column(table, bounds[0],
                                                        value)
                                for value in (bounds[1], bounds[2]))):
                    range_plan = ("range",) + bounds
        return range_plan

    def _indexable_predicate(self, ref, where, allow_unqualified=True):
        """``(column, value)`` when an equality plan exists (legacy
        shim over :meth:`_access_plan`)."""
        plan = self._access_plan(ref, where, allow_unqualified)
        if plan is not None and plan[0] == "eq":
            return plan[1], plan[2]
        return None

    def _plan_rows(self, ref, plan, outer_row):
        """Materialize source rows through the chosen index plan."""
        table = self._db.table(ref.name)
        alias = (ref.alias or ref.name).lower()
        columns = [(alias, col.name) for col in table.columns]
        if plan[0] == "eq":
            stored_rows = table.index_lookup(plan[1], plan[2])
            self.plan_stats["index_eq"] += 1
        else:
            _, column, low, high, low_incl, high_incl = plan
            stored_rows = table.index_range(column, low, high,
                                            low_incl, high_incl)
            self.plan_stats["index_range"] += 1
        rows = []
        for stored in stored_rows:
            row = {} if outer_row is None else dict(outer_row)
            for col_name, cell in stored.items():
                row["%s.%s" % (alias, col_name)] = cell
            row["__source__%s" % alias] = stored
            rows.append(row)
        return rows, columns

    def _explain(self, select):
        """EXPLAIN output: one row per table source with the access type
        (``ref``/``range`` via an index, ``hash`` for a hash join,
        ``ALL`` for a scan) and the key column used."""
        rows = []
        alias_map = self._alias_map(select)
        single = len(select.tables) == 1 and not select.joins
        left_aliases = set()
        for pos, ref in enumerate(select.tables):
            if isinstance(ref, ast.DerivedTable):
                rows.append((ref.alias, "DERIVED", None, None))
                left_aliases.add(ref.alias.lower())
                continue
            table = self._db.table(ref.name)
            plan = None
            if pos == 0:
                plan = self._access_plan(ref, select.where,
                                         allow_unqualified=single)
            if plan is None:
                rows.append((table.name, "ALL", None, len(table)))
            elif plan[0] == "eq":
                rows.append((table.name, "ref", plan[1], len(table)))
            else:
                rows.append((table.name, "range", plan[1], len(table)))
            left_aliases.add((ref.alias or ref.name).lower())
        for join in select.joins:
            if isinstance(join.table, ast.DerivedTable):
                rows.append((join.table.alias, "DERIVED", None, None))
                left_aliases.add(join.table.alias.lower())
                continue
            table = self._db.table(join.table.name)
            keys = None
            if (self.enable_hash_join and join.on is not None
                    and join.kind in ("INNER", "LEFT", "RIGHT")):
                keys = self._equi_join_keys(join, left_aliases, alias_map)
            if keys is not None:
                rows.append((table.name, "hash",
                             keys[1].split(".", 1)[1], len(table)))
            else:
                rows.append((table.name, "ALL", None, len(table)))
            left_aliases.add((join.table.alias or join.table.name).lower())
        return ResultSet(["table", "type", "key", "rows"], rows)

    def _apply_join(self, join, left_rows, right_rows, right_cols, ctx,
                    left_aliases=None, alias_map=None):
        keys = None
        if (self.enable_hash_join and join.on is not None
                and left_aliases is not None
                and join.kind in ("INNER", "LEFT", "RIGHT")):
            keys = self._equi_join_keys(join, left_aliases, alias_map)
        if keys is not None:
            self.plan_stats["hash_joins"] += 1
            return self._hash_join(join, left_rows, right_rows,
                                   right_cols, ctx, keys)
        self.plan_stats["nested_loop_joins"] += 1
        return self._nested_join(join, left_rows, right_rows, right_cols,
                                 ctx)

    def _equi_join_keys(self, join, left_aliases, alias_map):
        """``(left "alias.col", right "alias.col")`` when the ON clause
        contains a hash-safe equi predicate, else ``None``.

        Hash-safe means: both sides are base-table columns whose types
        share a :func:`type_class` — :func:`compare` coerces *across*
        classes (``'1' = 1`` matches), which a static hash key cannot
        reproduce, so mixed-class keys fall back to nested loops.
        """
        right_ref = join.table
        if isinstance(right_ref, ast.DerivedTable):
            return None
        right_alias = (right_ref.alias or right_ref.name).lower()
        if right_alias in left_aliases:
            return None     # self-join without aliases: refs ambiguous
        for expr in _and_operands(join.on):
            if not isinstance(expr, ast.BinaryOp) or expr.op != "=":
                continue
            sides = []
            for operand in (expr.left, expr.right):
                side = self._join_side(operand, left_aliases, right_alias,
                                       alias_map)
                if side is None:
                    break
                sides.append(side)
            if len(sides) != 2:
                continue
            (side1, key1, class1), (side2, key2, class2) = sides
            if {side1, side2} != {"left", "right"}:
                continue
            if class1 is None or class1 != class2:
                continue
            if side1 == "left":
                return key1, key2
            return key2, key1
        return None

    def _join_side(self, operand, left_aliases, right_alias, alias_map):
        """Classify one ON operand: ``(side, "alias.col", type_class)``
        or ``None`` when it is not a resolvable base-table column."""
        if not isinstance(operand, ast.ColumnRef):
            return None
        name = operand.name.lower()
        if operand.table is not None:
            alias = operand.table.lower()
            if alias == right_alias:
                side = "right"
            elif alias in left_aliases:
                side = "left"
            else:
                return None
        else:
            scope = list(left_aliases) + [right_alias]
            if any(alias_map.get(a) is None for a in scope):
                return None     # a derived table could shadow the name
            owners = [a for a in scope
                      if alias_map[a].has_column(name)]
            if len(owners) != 1:
                return None
            alias = owners[0]
            side = "right" if alias == right_alias else "left"
        table = alias_map.get(alias)
        if table is None or not table.has_column(name):
            return None
        return side, "%s.%s" % (alias, name), \
            type_class(table.column(name).type_name)

    def _hash_join(self, join, left_rows, right_rows, right_cols, ctx,
                   keys):
        """Hash equi-join, building on the smaller input.

        Matches are bucketed per *outer* row (outer = left, or right for
        RIGHT JOIN) and emitted in outer-major order, which reproduces
        the nested-loop output order exactly regardless of which side
        the hash table was built on.  The full ON expression re-checks
        every hash candidate, so extra AND conditions still apply.
        NULL keys never match (SQL ``=`` semantics); for outer joins
        the unmatched rows null-extend as usual.
        """
        left_key, right_key = keys
        outer_is_left = join.kind != "RIGHT"
        if outer_is_left:
            outer_rows, inner_rows = left_rows, right_rows
            outer_key, inner_key = left_key, right_key
        else:
            outer_rows, inner_rows = right_rows, left_rows
            outer_key, inner_key = right_key, left_key

        def merged_for(outer, inner):
            return _merge(outer, inner) if outer_is_left \
                else _merge(inner, outer)

        matches = [[] for _ in outer_rows]
        if len(inner_rows) <= len(outer_rows):
            # build on inner, probe outer
            buckets = {}
            for inner in inner_rows:
                value = inner.get(inner_key)
                if value is None:
                    continue
                buckets.setdefault(sort_key(value), []).append(inner)
            for pos, outer in enumerate(outer_rows):
                value = outer.get(outer_key)
                if value is None:
                    continue
                for inner in buckets.get(sort_key(value), ()):
                    merged = merged_for(outer, inner)
                    if is_truthy(evaluate(join.on, ctx.child(merged))):
                        matches[pos].append(merged)
        else:
            # build on outer, probe inner (inner order per bucket is
            # preserved, so the emitted order is unchanged)
            buckets = {}
            for pos, outer in enumerate(outer_rows):
                value = outer.get(outer_key)
                if value is None:
                    continue
                buckets.setdefault(sort_key(value), []).append(pos)
            for inner in inner_rows:
                value = inner.get(inner_key)
                if value is None:
                    continue
                for pos in buckets.get(sort_key(value), ()):
                    merged = merged_for(outer_rows[pos], inner)
                    if is_truthy(evaluate(join.on, ctx.child(merged))):
                        matches[pos].append(merged)
        if join.kind == "INNER":
            out = []
            for bucket in matches:
                out.extend(bucket)
            return out
        out = []
        if outer_is_left:
            null_inner = {
                "%s.%s" % (alias, col): None for alias, col in right_cols
            }
            for pos, outer in enumerate(outer_rows):
                if matches[pos]:
                    out.extend(matches[pos])
                else:
                    out.append(_merge(outer, null_inner))
        else:
            left_keys = [
                key for key in (left_rows[0] if left_rows else {})
                if not key.startswith("__source__")
            ]
            null_inner = {key: None for key in left_keys}
            for pos, outer in enumerate(outer_rows):
                if matches[pos]:
                    out.extend(matches[pos])
                else:
                    out.append(_merge(null_inner, outer))
        return out

    def _nested_join(self, join, left_rows, right_rows, right_cols, ctx):
        out = []
        if join.kind in ("INNER", "CROSS"):
            for a in left_rows:
                for b in right_rows:
                    merged = _merge(a, b)
                    if join.on is None or is_truthy(
                        evaluate(join.on, ctx.child(merged))
                    ):
                        out.append(merged)
            return out
        if join.kind == "LEFT":
            null_right = {
                "%s.%s" % (alias, col): None for alias, col in right_cols
            }
            for a in left_rows:
                matched = False
                for b in right_rows:
                    merged = _merge(a, b)
                    if join.on is None or is_truthy(
                        evaluate(join.on, ctx.child(merged))
                    ):
                        matched = True
                        out.append(merged)
                if not matched:
                    out.append(_merge(a, null_right))
            return out
        if join.kind == "RIGHT":
            left_cols = [
                key for key in (left_rows[0] if left_rows else {})
                if not key.startswith("__source__")
            ]
            null_left = {key: None for key in left_cols}
            for b in right_rows:
                matched = False
                for a in left_rows:
                    merged = _merge(a, b)
                    if join.on is None or is_truthy(
                        evaluate(join.on, ctx.child(merged))
                    ):
                        matched = True
                        out.append(merged)
                if not matched:
                    out.append(_merge(null_left, b))
            return out
        raise ExecutionError("unsupported join kind %r" % join.kind)

    # -- aggregation ---------------------------------------------------------

    def _collect_aggregates(self, stmt):
        aggregates = []

        def walk(node):
            if node is None:
                return
            if isinstance(node, ast.FuncCall):
                if is_aggregate(node.name):
                    aggregates.append(node)
                    return  # no nested aggregates
                for arg in node.args:
                    walk(arg)
            elif isinstance(node, ast.SelectField):
                walk(node.expr)
            elif isinstance(node, ast.BinaryOp):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (ast.UnaryOp, ast.Not)):
                walk(node.operand)
            elif isinstance(node, ast.Cond):
                for operand in node.operands:
                    walk(operand)
            elif isinstance(node, ast.InList):
                walk(node.expr)
                if not isinstance(node.items, ast.Subquery):
                    for item in node.items:
                        walk(item)
            elif isinstance(node, ast.Between):
                walk(node.expr)
                walk(node.low)
                walk(node.high)
            elif isinstance(node, (ast.IsNull,)):
                walk(node.expr)
            elif isinstance(node, ast.Like):
                walk(node.expr)
                walk(node.pattern)
            elif isinstance(node, ast.Case):
                walk(node.operand)
                for cond, result in node.whens:
                    walk(cond)
                    walk(result)
                walk(node.default)

        for field in stmt.fields:
            walk(field)
        walk(stmt.having)
        for order in stmt.order_by:
            walk(order.expr)
        return aggregates

    def _group(self, stmt, rows, aggregates, ctx):
        groups = {}
        order = []
        if stmt.group_by:
            for row in rows:
                key = tuple(
                    _group_key(evaluate(expr, ctx.child(row)))
                    for expr in stmt.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            groups[()] = rows
            order.append(())
        out = []
        for key in order:
            members = groups[key]
            rep = dict(members[0]) if members else {}
            for agg in aggregates:
                rep["__agg__%s" % _agg_key(agg)] = self._eval_aggregate(
                    agg, members, ctx
                )
            out.append(rep)
        return out

    def _eval_aggregate(self, node, rows, ctx):
        name = node.name.upper()
        if name == "COUNT" and node.args and isinstance(node.args[0],
                                                        ast.Star):
            return len(rows)
        values = []
        for row in rows:
            value = evaluate(node.args[0], ctx.child(row))
            if value is not None:
                values.append(value)
        if node.distinct:
            unique = []
            for value in values:
                if all(compare(value, v) != 0 for v in unique):
                    unique.append(value)
            values = unique
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            from repro.sqldb.types import coerce_to_number
            return sum(coerce_to_number(v) for v in values)
        if name == "AVG":
            from repro.sqldb.types import coerce_to_number
            nums = [coerce_to_number(v) for v in values]
            return sum(nums) / float(len(nums))
        if name == "MIN":
            return min(values, key=sort_key)
        if name == "MAX":
            return max(values, key=sort_key)
        if name == "GROUP_CONCAT":
            from repro.sqldb.types import render_value
            return ",".join(render_value(v) for v in values)
        raise ExecutionError("unknown aggregate %r" % name)

    # -- projection / ordering ------------------------------------------------

    def _project(self, stmt, rows, source_columns, ctx):
        columns = []
        extractors = []
        for field in stmt.fields:
            if isinstance(field.expr, ast.Star):
                wanted = field.expr.table
                for alias, col in source_columns:
                    if wanted is not None and alias != wanted.lower():
                        continue
                    columns.append(col)
                    extractors.append(_column_extractor(alias, col))
                if wanted is not None and not any(
                    alias == wanted.lower() for alias, _ in source_columns
                ):
                    raise ExecutionError("Unknown table '%s'" % wanted)
            else:
                columns.append(field.alias or _field_label(field.expr))
                extractors.append(_expr_extractor(field.expr, ctx))
        pairs = []
        for row in rows:
            out = tuple(fn(row) for fn in extractors)
            pairs.append((row, out))
        return columns, pairs

    def _order_decorate(self, stmt, pairs, columns, ctx):
        """``[(sort keys, original position, pair), ...]`` for ORDER BY."""
        lowered = [c.lower() for c in columns]

        def keys_for(pair):
            src, out = pair
            key = []
            for order in stmt.order_by:
                expr = order.expr
                if isinstance(expr, ast.Literal) and expr.type_tag == "int":
                    idx = expr.value - 1
                    if idx < 0 or idx >= len(out):
                        raise ExecutionError(
                            "Unknown column '%d' in 'order clause'"
                            % expr.value
                        )
                    value = out[idx]
                elif (
                    isinstance(expr, ast.ColumnRef)
                    and expr.table is None
                    and expr.name.lower() in lowered
                ):
                    value = out[lowered.index(expr.name.lower())]
                else:
                    value = evaluate(expr, ctx.child(src))
                key.append(sort_key(value))
            return key

        return [(keys_for(pair), i, pair) for i, pair in enumerate(pairs)]

    def _order(self, stmt, pairs, columns, ctx):
        self.plan_stats["full_sorts"] += 1
        decorated = self._order_decorate(stmt, pairs, columns, ctx)
        # stable multi-key sort honouring per-key direction
        for pos in range(len(stmt.order_by) - 1, -1, -1):
            reverse = stmt.order_by[pos].direction == "DESC"
            decorated.sort(key=lambda item: item[0][pos], reverse=reverse)
        return [pair for _, _, pair in decorated]

    def _order_topk(self, stmt, pairs, columns, ctx, k):
        """ORDER BY fused with LIMIT: heap top-k over the same total
        order :meth:`_order` produces (per-key direction, stable by
        original position), without ever materializing the full sort."""
        if k >= len(pairs):
            return self._order(stmt, pairs, columns, ctx)
        self.plan_stats["topk_orders"] += 1
        decorated = self._order_decorate(stmt, pairs, columns, ctx)
        descending = [o.direction == "DESC" for o in stmt.order_by]

        def compare_items(a, b):
            for pos, desc in enumerate(descending):
                key_a, key_b = a[0][pos], b[0][pos]
                if key_a == key_b:
                    continue
                less = key_a < key_b
                if desc:
                    less = not less
                return -1 if less else 1
            return -1 if a[1] < b[1] else 1     # stability tiebreak

        top = heapq.nsmallest(k, decorated,
                              key=functools.cmp_to_key(compare_items))
        return [pair for _, _, pair in top]

    # -- DML --------------------------------------------------------------------

    def _insert(self, stmt, ctx):
        table = self._db.table(stmt.table)
        columns = stmt.columns or table.column_names()
        inserted = 0
        last_id = None
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise ExecutionError(
                    "Column count doesn't match value count", errno=1136
                )
            values = {}
            for col, expr in zip(columns, row_exprs):
                values[col.lower()] = evaluate(expr, ctx)
            if stmt.replace:
                # REPLACE INTO: delete any row conflicting on a unique
                # key, then insert (affected = deleted + inserted)
                inserted += self._delete_conflicting(table, values)
            try:
                auto = table.insert(values)
            except ExecutionError as exc:
                if exc.errno == 1062 and stmt.on_duplicate:
                    inserted += self._apply_on_duplicate(
                        table, stmt.on_duplicate, values, ctx
                    )
                    continue
                if stmt.ignore:
                    continue
                raise
            if auto is not None:
                last_id = auto
            inserted += 1
        if last_id is not None:
            ctx.session.last_insert_id = last_id
        return ExecutionResult(
            affected_rows=inserted,
            last_insert_id=last_id,
            sleep_seconds=ctx.sleep_seconds,
        )

    def _delete_conflicting(self, table, values):
        keys = [c.name for c in table.columns if c.primary_key or c.unique]
        conflicts = []
        for row in table.rows:
            if any(
                values.get(key) is not None
                and row.get(key) == table.convert(key, values[key])
                for key in keys
            ):
                conflicts.append(row)
        if conflicts:
            table.delete_rows(conflicts)
        return len(conflicts)

    def _apply_on_duplicate(self, table, assignments, new_values, ctx):
        """ON DUPLICATE KEY UPDATE: update the conflicting row.

        ``VALUES(col)`` inside an assignment refers to the value the
        failed insert attempted for *col* (MySQL semantics).
        """
        keys = [c.name for c in table.columns if c.primary_key or c.unique]
        target = None
        for row in table.rows:
            if any(
                new_values.get(key) is not None
                and row.get(key) == table.convert(key, new_values[key])
                for key in keys
            ):
                target = row
                break
        if target is None:
            return 0
        env = {"%s.%s" % (table.name, k): v for k, v in target.items()}
        updates = {}
        for col, expr in assignments:
            resolved = _resolve_values_refs(expr, new_values)
            value = table.convert(col, evaluate(resolved, ctx.child(env)))
            if target.get(col.lower()) != value:
                updates[col.lower()] = value
        if updates:
            table.update_row(target, updates)
        # MySQL reports 2 affected rows when an ODKU update changed one
        return 2 if updates else 0

    def _update(self, stmt, ctx):
        table = self._db.table(stmt.table)
        alias = table.name
        changed = 0
        targets = []
        for stored in table.rows:
            env = {"%s.%s" % (alias, k): v for k, v in stored.items()}
            if stmt.where is None or is_truthy(
                evaluate(stmt.where, ctx.child(env))
            ):
                targets.append((stored, env))
        targets = self._order_dml_targets(stmt.order_by, targets, ctx)
        if stmt.limit is not None:
            count = int(evaluate(stmt.limit.count, ctx))
            targets = targets[: max(count, 0)]
        for stored, env in targets:
            updates = {}
            for col, expr in stmt.assignments:
                if not table.has_column(col):
                    raise ExecutionError(
                        "Unknown column '%s' in 'field list'" % col,
                        errno=1054,
                    )
                updates[col.lower()] = table.convert(
                    col, evaluate(expr, ctx.child(env))
                )
            delta = {k: v for k, v in updates.items()
                     if stored.get(k) != v}
            if delta:
                table.update_row(stored, delta)
                changed += 1
        return ExecutionResult(
            affected_rows=changed, sleep_seconds=ctx.sleep_seconds
        )

    def _delete(self, stmt, ctx):
        table = self._db.table(stmt.table)
        alias = table.name
        targets = []
        for stored in table.rows:
            env = {"%s.%s" % (alias, k): v for k, v in stored.items()}
            if stmt.where is None or is_truthy(
                evaluate(stmt.where, ctx.child(env))
            ):
                targets.append((stored, env))
        targets = self._order_dml_targets(stmt.order_by, targets, ctx)
        if stmt.limit is not None:
            count = int(evaluate(stmt.limit.count, ctx))
            targets = targets[: max(count, 0)]
        doomed = [stored for stored, _ in targets]
        if doomed:
            table.delete_rows(doomed)
        return ExecutionResult(
            affected_rows=len(doomed), sleep_seconds=ctx.sleep_seconds
        )

    def _order_dml_targets(self, order_by, targets, ctx):
        """ORDER BY for UPDATE/DELETE target selection (matters with
        LIMIT: MySQL deletes/updates the first N *in order*)."""
        if not order_by:
            return targets
        decorated = list(targets)
        for item in reversed(order_by):
            reverse = item.direction == "DESC"
            decorated.sort(
                key=lambda pair: sort_key(
                    evaluate(item.expr, ctx.child(pair[1]))
                ),
                reverse=reverse,
            )
        return decorated

    # -- DDL ----------------------------------------------------------------------

    def _create_table(self, stmt):
        name = stmt.name.lower()
        if name in self._db.tables:
            if stmt.if_not_exists:
                return ExecutionResult(affected_rows=0)
            raise ExecutionError(
                "Table '%s' already exists" % stmt.name, errno=1050
            )
        columns = []
        for cdef in stmt.columns:
            default = None
            if cdef.default is not None:
                default = cdef.default.value
            columns.append(
                Column(
                    cdef.name,
                    cdef.type_name,
                    length=cdef.length,
                    not_null=cdef.not_null,
                    primary_key=cdef.primary_key,
                    auto_increment=cdef.auto_increment,
                    default=default,
                    unique=cdef.unique,
                )
            )
        self._db.create_table(name, columns)
        return ExecutionResult(affected_rows=0)

    def _drop_table(self, stmt):
        name = stmt.name.lower()
        if name not in self._db.tables:
            if stmt.if_exists:
                return ExecutionResult(affected_rows=0)
            raise ExecutionError("Unknown table '%s'" % stmt.name, errno=1051)
        self._db.drop_table(name)
        return ExecutionResult(affected_rows=0)

    def _alter_add_column(self, stmt):
        table = self._db.table(stmt.table)
        cdef = stmt.column_def
        if table.has_column(cdef.name):
            raise ExecutionError(
                "Duplicate column name '%s'" % cdef.name, errno=1060
            )
        default = cdef.default.value if cdef.default is not None else None
        column = Column(
            cdef.name, cdef.type_name, length=cdef.length,
            not_null=cdef.not_null, primary_key=cdef.primary_key,
            auto_increment=cdef.auto_increment, default=default,
            unique=cdef.unique,
        )
        table.columns.append(column)
        table._by_name[column.name] = column
        from repro.sqldb.types import store_convert
        fill = None
        if default is not None:
            fill = store_convert(default, column.type_name, column.length)
        elif column.not_null:
            fill = "" if column.type_name in ("VARCHAR", "TEXT",
                                              "CHAR") else 0
        for row in table.rows:
            row[column.name] = fill
        table.touch()
        self._db.bump_schema_version()
        return ExecutionResult(affected_rows=len(table.rows))

    def _alter_drop_column(self, stmt):
        table = self._db.table(stmt.table)
        name = stmt.column.lower()
        if not table.has_column(name):
            raise ExecutionError(
                "Can't DROP '%s'; check that column/key exists"
                % stmt.column, errno=1091,
            )
        if len(table.columns) == 1:
            raise ExecutionError(
                "A table must have at least 1 column", errno=1090
            )
        table.columns = [c for c in table.columns if c.name != name]
        del table._by_name[name]
        for row in table.rows:
            row.pop(name, None)
        table.touch()
        self._db.bump_schema_version()
        return ExecutionResult(affected_rows=len(table.rows))

    def _describe(self, stmt):
        table = self._db.table(stmt.table)
        rows = []
        for col in table.columns:
            type_text = col.type_name.lower()
            if col.length is not None:
                type_text += "(%d)" % col.length
            rows.append(
                (
                    col.name,
                    type_text,
                    "NO" if col.not_null else "YES",
                    "PRI" if col.primary_key else
                    ("UNI" if col.unique else ""),
                    col.default,
                    "auto_increment" if col.auto_increment else "",
                )
            )
        return ExecutionResult(
            result_set=ResultSet(
                ["Field", "Type", "Null", "Key", "Default", "Extra"], rows
            )
        )


def _resolve_values_refs(expr, new_values):
    """Replace ``VALUES(col)`` calls with the attempted insert value."""
    if isinstance(expr, ast.FuncCall) and expr.name == "VALUES" and \
            len(expr.args) == 1 and isinstance(expr.args[0], ast.ColumnRef):
        value = new_values.get(expr.args[0].name.lower())
        from repro.sqldb.prepared import literal_for
        return literal_for(value)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _resolve_values_refs(expr.left, new_values),
            _resolve_values_refs(expr.right, new_values),
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            [_resolve_values_refs(a, new_values) for a in expr.args],
            expr.distinct,
        )
    return expr


def _and_operands(expr):
    """Flatten arbitrarily nested AND chains into their leaf operands."""
    if isinstance(expr, ast.Cond) and expr.op == "AND":
        leaves = []
        for operand in expr.operands:
            leaves.extend(_and_operands(operand))
        return leaves
    return [expr]


def _scoped_column(expr, alias, allow_unqualified):
    """Column name when *expr* is a ColumnRef resolvable to *alias*."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    if expr.table is None:
        return expr.name.lower() if allow_unqualified else None
    return expr.name.lower() if expr.table.lower() == alias else None


def _equality_pair(expr, alias, allow_unqualified=True):
    """``col = literal`` (either side) scoped to *alias*, else ``None``."""
    if not isinstance(expr, ast.BinaryOp) or expr.op != "=":
        return None
    for left, right in ((expr.left, expr.right), (expr.right, expr.left)):
        if isinstance(left, ast.ColumnRef) and isinstance(right,
                                                          ast.Literal):
            column = _scoped_column(left, alias, allow_unqualified)
            if column is None:
                continue
            if right.value is None:
                return None  # NULL never matches through '='
            return column, right.value
    return None


#: comparison flips when the literal moves to the left of the operator
_FLIPPED = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}


def _range_bounds(expr, alias, allow_unqualified):
    """``(col, low, high, low_incl, high_incl)`` for an index range
    scan (``<``/``>``/``<=``/``>=``/``BETWEEN`` against a literal)."""
    if isinstance(expr, ast.Between) and not expr.negated:
        column = _scoped_column(expr.expr, alias, allow_unqualified)
        if (column is not None
                and isinstance(expr.low, ast.Literal)
                and isinstance(expr.high, ast.Literal)
                and expr.low.value is not None
                and expr.high.value is not None):
            return (column, expr.low.value, expr.high.value, True, True)
        return None
    if not isinstance(expr, ast.BinaryOp) or expr.op not in _FLIPPED:
        return None
    op = expr.op
    if isinstance(expr.left, ast.ColumnRef) and isinstance(expr.right,
                                                           ast.Literal):
        ref, literal = expr.left, expr.right.value
    elif isinstance(expr.right, ast.ColumnRef) and isinstance(expr.left,
                                                              ast.Literal):
        ref, literal = expr.right, expr.left.value
        op = _FLIPPED[op]
    else:
        return None
    column = _scoped_column(ref, alias, allow_unqualified)
    if column is None or literal is None:
        return None
    if op == "<":
        return (column, None, literal, True, False)
    if op == "<=":
        return (column, None, literal, True, True)
    if op == ">":
        return (column, literal, None, False, True)
    return (column, literal, None, True, True)


def _literal_fits_column(table, column, literal):
    """Index access is only trusted when the literal's class matches
    the column's storage class: stored values are homogeneous after
    ``store_convert``, so within a class the index key order/equality
    agrees with :func:`compare` — but a numeric literal against a
    string column coerces row-by-row and must fall back to a scan."""
    cls = type_class(table.column(column).type_name)
    if cls == "n":
        return isinstance(literal, (bool, int, float, str))
    if cls == "s":
        return isinstance(literal, str)
    return False


def _merge(a, b):
    merged = dict(a)
    merged.update(b)
    return merged


def _group_key(value):
    if isinstance(value, str):
        return ("s", value.lower())
    if value is None:
        return ("n", None)
    return ("v", float(value))


def _column_extractor(alias, col):
    key = "%s.%s" % (alias, col)

    def extract(row):
        return row.get(key)

    return extract


def _expr_extractor(expr, ctx):
    def extract(row):
        return evaluate(expr, ctx.child(row))

    return extract


def _field_label(expr):
    """Column heading MySQL would produce for an unaliased expression."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return "%s(...)" % expr.name.lower()
    if isinstance(expr, ast.Literal):
        from repro.sqldb.types import render_value
        return render_value(expr.value)
    return type(expr).__name__.lower()
