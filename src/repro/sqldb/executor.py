"""Statement dispatch and glue around the plan/execute split.

Since the plan-layer refactor the executor makes no planning decisions:
access paths, join strategies and the top-k choice all live in
:mod:`repro.sqldb.planner`, and the streaming operators that carry them
out live in :mod:`repro.sqldb.plan`.  What remains here is dispatch,
the DDL/SHOW/transaction handlers (which execute directly against the
catalog), plan preparation/caching, and the rollup of per-execution
:class:`~repro.sqldb.plan.StageStats` into :attr:`Executor.plan_stats`.
"""

from repro.sqldb import ast_nodes as ast
from repro.sqldb import plan as plan_mod
from repro.sqldb.errors import ExecutionError
from repro.sqldb.expression import EvalContext
from repro.sqldb.plan import ExecutionResult, ExecState
from repro.sqldb.planner import Planner
from repro.sqldb.storage import Column, ResultSet, WriteTxn

__all__ = ["Executor", "ExecutionResult"]

#: statement kinds that go through the planner
_PLANNED = (ast.Select, ast.Insert, ast.Update, ast.Delete, ast.Explain)

#: bound on the by-identity subquery-plan memo
_SUBPLAN_MEMO_LIMIT = 256


class Executor(object):
    """Executes validated statements against a :class:`Database` catalog."""

    def __init__(self, database):
        self._db = database
        #: planner toggles — the benchmarks flip these to measure the
        #: legacy strategies against the indexed ones on equal footing
        self.enable_hash_join = True
        self.enable_topk = True
        #: counts of the strategies that actually ran (plan testability),
        #: rolled up from each execution's StageStats
        self.plan_stats = {
            "index_eq": 0, "index_range": 0, "full_scans": 0,
            "hash_joins": 0, "nested_loop_joins": 0,
            "topk_orders": 0, "full_sorts": 0,
            "peak_materialized_rows": 0,
        }
        #: StageStats of the most recently executed plan
        self.last_stage_stats = None
        #: subquery plans memoized by AST identity — correlated
        #: subqueries replan once, not once per outer row
        self._subplan_memo = {}

    # -- planning ---------------------------------------------------------

    def _fingerprint(self):
        """Everything a cached plan's validity depends on besides the
        cache key itself (the key already pins schema_version)."""
        return (self.enable_hash_join, self.enable_topk)

    def prepare(self, stmt, entry=None):
        """Physical plan for *stmt* (``None`` for unplanned kinds).

        When *entry* is the statement's pipeline-cache entry, the plan
        is cached on it alongside the planner-toggle fingerprint: a
        toggle flip replans instead of running a stale strategy, and
        DDL invalidates through the entry itself (the cache key
        includes ``schema_version``)."""
        if not isinstance(stmt, _PLANNED):
            return None
        fingerprint = self._fingerprint()
        if entry is not None:
            cached = entry.plan
            if cached is not None and cached[0] == fingerprint:
                return cached[1]
        planner = Planner(self._db,
                          enable_hash_join=self.enable_hash_join,
                          enable_topk=self.enable_topk)
        plan = planner.plan_statement(stmt)
        if entry is not None and plan is not None:
            entry.plan = (fingerprint, plan)
        return plan

    def _subquery_plan(self, select):
        key = id(select)
        fingerprint = (self._db.schema_version,) + self._fingerprint()
        memo = self._subplan_memo.get(key)
        # the identity check makes recycled id() values harmless; the
        # strong reference in the memo keeps live keys stable
        if memo is not None and memo[0] is select \
                and memo[1] == fingerprint:
            return memo[2]
        planner = Planner(self._db,
                          enable_hash_join=self.enable_hash_join,
                          enable_topk=self.enable_topk)
        plan = planner.plan_statement(select)
        if len(self._subplan_memo) >= _SUBPLAN_MEMO_LIMIT:
            self._subplan_memo.clear()
        self._subplan_memo[key] = (select, fingerprint, plan)
        return plan

    def _absorb(self, stats, query_context=None):
        """Roll one execution's StageStats into the cumulative
        plan_stats, and expose them for instrumentation."""
        plan_stats = self.plan_stats
        for name, amount in stats.counters.items():
            plan_stats[name] = plan_stats.get(name, 0) + amount
        if stats.peak_materialized_rows > \
                plan_stats["peak_materialized_rows"]:
            plan_stats["peak_materialized_rows"] = \
                stats.peak_materialized_rows
        self.last_stage_stats = stats
        if query_context is not None:
            query_context.stage_stats = stats

    # -- entry point -----------------------------------------------------

    def execute(self, stmt, session=None, prepared=None,
                query_context=None):
        if session is None:
            session = self._db.default_session
        ctx = EvalContext(self._db, executor=self, session=session)
        if prepared is None and isinstance(stmt, _PLANNED):
            prepared = self.prepare(stmt)
        if isinstance(stmt, ast.Select):
            # pin the snapshot for the whole statement: scans below see
            # exactly the versions committed at this watermark
            view = self._db.open_read_view(session)
            ctx.read_view = view
            try:
                state = ExecState(ctx)
                rows = [out for _, out in prepared.root.rows(state)]
            finally:
                self._db.close_read_view(view)
            state.stats.note_materialized(len(rows))
            self._absorb(state.stats, query_context)
            return ExecutionResult(
                result_set=ResultSet(prepared.columns, rows),
                sleep_seconds=ctx.sleep_seconds,
            )
        if isinstance(stmt, ast.Explain):
            return ExecutionResult(
                result_set=plan_mod.render_explain(prepared, self._db)
            )
        if isinstance(stmt, (ast.Insert, ast.Update, ast.Delete)):
            txn, own_txn = self._write_txn_for(session)
            ctx.write_txn = txn
            state = ExecState(ctx)
            try:
                result = prepared.root.run(state)
            finally:
                # an autocommit statement is its own mini-transaction:
                # seal even on failure, so partial effects (MySQL keeps
                # the rows before a failing multi-row INSERT) become
                # visible exactly as they always were
                if own_txn:
                    self._db._seal_txn(txn)
            self._absorb(state.stats, query_context)
            return result
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, ast.DropTable):
            return self._drop_table(stmt)
        if isinstance(stmt, ast.ShowTables):
            names = sorted(self._db.tables)
            return ExecutionResult(
                result_set=ResultSet(["Tables_in_%s" % self._db.name],
                                     [(n,) for n in names])
            )
        if isinstance(stmt, ast.Describe):
            return self._describe(stmt)
        if isinstance(stmt, ast.Begin):
            session.begin()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.Commit):
            session.commit()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.Rollback):
            session.rollback()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.CreateIndex):
            self._db.table(stmt.table).create_index(stmt.name, stmt.column)
            # cached plans chose their access path without this index
            self._db.bump_schema_version()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.DropIndex):
            self._db.table(stmt.table).drop_index(stmt.name)
            # cached plans may probe the index being dropped
            self._db.bump_schema_version()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.AlterTableAddColumn):
            return self._alter_add_column(stmt)
        if isinstance(stmt, ast.AlterTableDropColumn):
            return self._alter_drop_column(stmt)
        if isinstance(stmt, ast.TruncateTable):
            table = self._db.table(stmt.table)
            removed = table.row_count()
            txn, own_txn = self._write_txn_for(session)
            try:
                table.truncate(txn=txn)   # also resets AUTO_INCREMENT
            finally:
                if own_txn:
                    self._db._seal_txn(txn)
            return ExecutionResult(affected_rows=removed)
        raise ExecutionError("cannot execute %r" % type(stmt).__name__)

    def _write_txn_for(self, session):
        """The write transaction a mutating statement installs versions
        under: the session's open transaction (sealed at COMMIT), or a
        fresh statement-scoped one the caller must seal itself.
        Returns ``(txn, owns_seal)``."""
        if (session is not None and session.in_transaction
                and session.write_txn is not None):
            return session.write_txn, False
        return WriteTxn(), True

    # -- subquery support --------------------------------------------------

    def run_select_rows(self, select, outer_ctx=None):
        """Run a subquery SELECT, returning raw row tuples."""
        session = outer_ctx.session if outer_ctx is not None else None
        ctx = EvalContext(self._db, executor=self, session=session)
        outer_row = None
        if outer_ctx is not None:
            ctx._parent = outer_ctx
            ctx.row = dict(outer_ctx.row)
            outer_row = ctx.row
            # a subquery reads under the statement's pinned snapshot
            ctx.read_view = outer_ctx.read_view
        plan = self._subquery_plan(select)
        state = ExecState(ctx, outer_row=outer_row)
        rows = [out for _, out in plan.root.rows(state)]
        state.stats.note_materialized(len(rows))
        self._absorb(state.stats)
        return rows

    # -- DDL ----------------------------------------------------------------------

    def _create_table(self, stmt):
        name = stmt.name.lower()
        if name in self._db.tables:
            if stmt.if_not_exists:
                return ExecutionResult(affected_rows=0)
            raise ExecutionError(
                "Table '%s' already exists" % stmt.name, errno=1050
            )
        columns = []
        for cdef in stmt.columns:
            default = None
            if cdef.default is not None:
                default = cdef.default.value
            columns.append(
                Column(
                    cdef.name,
                    cdef.type_name,
                    length=cdef.length,
                    not_null=cdef.not_null,
                    primary_key=cdef.primary_key,
                    auto_increment=cdef.auto_increment,
                    default=default,
                    unique=cdef.unique,
                )
            )
        self._db.create_table(name, columns)
        return ExecutionResult(affected_rows=0)

    def _drop_table(self, stmt):
        name = stmt.name.lower()
        if name not in self._db.tables:
            if stmt.if_exists:
                return ExecutionResult(affected_rows=0)
            raise ExecutionError("Unknown table '%s'" % stmt.name, errno=1051)
        self._db.drop_table(name)
        return ExecutionResult(affected_rows=0)

    def _alter_add_column(self, stmt):
        table = self._db.table(stmt.table)
        cdef = stmt.column_def
        if table.has_column(cdef.name):
            raise ExecutionError(
                "Duplicate column name '%s'" % cdef.name, errno=1060
            )
        default = cdef.default.value if cdef.default is not None else None
        column = Column(
            cdef.name, cdef.type_name, length=cdef.length,
            not_null=cdef.not_null, primary_key=cdef.primary_key,
            auto_increment=cdef.auto_increment, default=default,
            unique=cdef.unique,
        )
        table.columns.append(column)
        table._by_name[column.name] = column
        from repro.sqldb.types import store_convert
        fill = None
        if default is not None:
            fill = store_convert(default, column.type_name, column.length)
        elif column.not_null:
            fill = "" if column.type_name in ("VARCHAR", "TEXT",
                                              "CHAR") else 0
        table.fill_column(column.name, fill)
        self._db.bump_schema_version()
        return ExecutionResult(affected_rows=table.row_count())

    def _alter_drop_column(self, stmt):
        table = self._db.table(stmt.table)
        name = stmt.column.lower()
        if not table.has_column(name):
            raise ExecutionError(
                "Can't DROP '%s'; check that column/key exists"
                % stmt.column, errno=1091,
            )
        if len(table.columns) == 1:
            raise ExecutionError(
                "A table must have at least 1 column", errno=1090
            )
        table.columns = [c for c in table.columns if c.name != name]
        del table._by_name[name]
        table.strip_column(name)
        self._db.bump_schema_version()
        return ExecutionResult(affected_rows=table.row_count())

    def _describe(self, stmt):
        table = self._db.table(stmt.table)
        rows = []
        for col in table.columns:
            type_text = col.type_name.lower()
            if col.length is not None:
                type_text += "(%d)" % col.length
            rows.append(
                (
                    col.name,
                    type_text,
                    "NO" if col.not_null else "YES",
                    "PRI" if col.primary_key else
                    ("UNI" if col.unique else ""),
                    col.default,
                    "auto_increment" if col.auto_increment else "",
                )
            )
        return ExecutionResult(
            result_set=ResultSet(
                ["Field", "Type", "Null", "Key", "Default", "Extra"], rows
            )
        )
