"""Statement execution against the in-memory storage engine."""

from repro.sqldb import ast_nodes as ast
from repro.sqldb.errors import ExecutionError
from repro.sqldb.expression import EvalContext, evaluate, _agg_key
from repro.sqldb.functions import is_aggregate
from repro.sqldb.storage import Column, ResultSet
from repro.sqldb.types import compare, is_truthy, sort_key


class ExecutionResult(object):
    """Uniform result wrapper: a result set or an affected-row count."""

    __slots__ = ("result_set", "affected_rows", "last_insert_id",
                 "sleep_seconds")

    def __init__(self, result_set=None, affected_rows=0, last_insert_id=None,
                 sleep_seconds=0.0):
        self.result_set = result_set
        self.affected_rows = affected_rows
        self.last_insert_id = last_insert_id
        #: simulated SLEEP()/BENCHMARK() seconds accumulated while executing
        self.sleep_seconds = sleep_seconds

    @property
    def is_select(self):
        return self.result_set is not None

    def __repr__(self):
        if self.is_select:
            return "ExecutionResult(%r)" % (self.result_set,)
        return "ExecutionResult(affected=%d)" % self.affected_rows


class Executor(object):
    """Executes validated statements against a :class:`Database` catalog."""

    def __init__(self, database):
        self._db = database

    # -- entry point -----------------------------------------------------

    def execute(self, stmt, session=None):
        if session is None:
            session = self._db.default_session
        ctx = EvalContext(self._db, executor=self, session=session)
        if isinstance(stmt, ast.Select):
            rs = self._select(stmt, ctx)
            return ExecutionResult(result_set=rs,
                                   sleep_seconds=ctx.sleep_seconds)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt, ctx)
        if isinstance(stmt, ast.Update):
            return self._update(stmt, ctx)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt, ctx)
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, ast.DropTable):
            return self._drop_table(stmt)
        if isinstance(stmt, ast.ShowTables):
            names = sorted(self._db.tables)
            return ExecutionResult(
                result_set=ResultSet(["Tables_in_%s" % self._db.name],
                                     [(n,) for n in names])
            )
        if isinstance(stmt, ast.Describe):
            return self._describe(stmt)
        if isinstance(stmt, ast.Begin):
            session.begin()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.Commit):
            session.commit()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.Rollback):
            session.rollback()
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.CreateIndex):
            self._db.table(stmt.table).create_index(stmt.name, stmt.column)
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.DropIndex):
            self._db.table(stmt.table).drop_index(stmt.name)
            return ExecutionResult(affected_rows=0)
        if isinstance(stmt, ast.Explain):
            return ExecutionResult(result_set=self._explain(stmt.select))
        if isinstance(stmt, ast.AlterTableAddColumn):
            return self._alter_add_column(stmt)
        if isinstance(stmt, ast.AlterTableDropColumn):
            return self._alter_drop_column(stmt)
        if isinstance(stmt, ast.TruncateTable):
            table = self._db.table(stmt.table)
            removed = len(table.rows)
            table.rows = []
            table._auto_counter = 0   # TRUNCATE resets AUTO_INCREMENT
            table.touch()
            return ExecutionResult(affected_rows=removed)
        raise ExecutionError("cannot execute %r" % type(stmt).__name__)

    # -- subquery support --------------------------------------------------

    def run_select_rows(self, select, outer_ctx=None):
        """Run a subquery SELECT, returning raw row tuples."""
        session = outer_ctx.session if outer_ctx is not None else None
        ctx = EvalContext(self._db, executor=self, session=session)
        if outer_ctx is not None:
            ctx._parent = outer_ctx
            ctx.row = dict(outer_ctx.row)
        rs = self._select(select, ctx, outer_row=ctx.row)
        return rs.rows

    # -- SELECT -------------------------------------------------------------

    def _select(self, stmt, ctx, outer_row=None):
        if not stmt.unions:
            return self._select_single(stmt, ctx, outer_row)
        # UNION: evaluate every branch without the union-level ORDER BY /
        # LIMIT, merge, then order and trim the merged rows.  The head is
        # evaluated with skip_order_limit rather than by blanking the AST
        # fields: cached statements are shared between executions (and
        # threads), so execution must never mutate them.
        order_by, limit = stmt.order_by, stmt.limit
        rs = self._select_single(stmt, ctx, outer_row, skip_order_limit=True)
        rows = list(rs.rows)
        dedupe = False
        for all_flag, branch in stmt.unions:
            branch_rs = self._select_single(branch, ctx, outer_row)
            if len(branch_rs.columns) != len(rs.columns):
                raise ExecutionError(
                    "The used SELECT statements have a different "
                    "number of columns", errno=1222,
                )
            rows.extend(branch_rs.rows)
            if not all_flag:
                dedupe = True
        if dedupe:
            deduped = []
            seen = set()
            for row in rows:
                key = tuple(
                    v.lower() if isinstance(v, str) else v for v in row
                )
                if key not in seen:
                    seen.add(key)
                    deduped.append(row)
            rows = deduped
        if order_by:
            rows = self._order_union_rows(rows, order_by, rs.columns)
        if limit is not None:
            count = int(evaluate(limit.count, ctx))
            offset = 0
            if limit.offset is not None:
                offset = int(evaluate(limit.offset, ctx))
            rows = rows[offset : offset + max(count, 0)]
        return ResultSet(rs.columns, rows)

    def _order_union_rows(self, rows, order_by, columns):
        """Union-level ORDER BY: by position or output column name."""
        lowered = [c.lower() for c in columns]

        def key_index(expr):
            if isinstance(expr, ast.Literal) and expr.type_tag == "int":
                idx = expr.value - 1
                if idx < 0 or idx >= len(columns):
                    raise ExecutionError(
                        "Unknown column '%s' in 'order clause'" % expr.value
                    )
                return idx
            if isinstance(expr, ast.ColumnRef) and expr.table is None and \
                    expr.name.lower() in lowered:
                return lowered.index(expr.name.lower())
            raise ExecutionError(
                "ORDER BY on a UNION must name an output column"
            )

        indexed = [(key_index(o.expr), o.direction == "DESC")
                   for o in order_by]
        rows = list(rows)
        for idx, reverse in reversed(indexed):
            rows.sort(key=lambda row: sort_key(row[idx]), reverse=reverse)
        return rows

    def _select_single(self, stmt, ctx, outer_row=None,
                       skip_order_limit=False):
        source_rows, source_columns = self._build_sources(stmt, ctx,
                                                          outer_row)
        # WHERE
        if stmt.where is not None:
            source_rows = [
                row for row in source_rows
                if is_truthy(evaluate(stmt.where, ctx.child(row)))
            ]
        aggregates = self._collect_aggregates(stmt)
        if stmt.group_by or aggregates:
            source_rows = self._group(stmt, source_rows, aggregates, ctx)
            if stmt.having is not None:
                source_rows = [
                    row for row in source_rows
                    if is_truthy(evaluate(stmt.having, ctx.child(row)))
                ]
        # project
        columns, pairs = self._project(stmt, source_rows, source_columns, ctx)
        # DISTINCT
        if stmt.distinct:
            seen = set()
            deduped = []
            for src, out in pairs:
                key = tuple(
                    v.lower() if isinstance(v, str) else v for v in out
                )
                if key not in seen:
                    seen.add(key)
                    deduped.append((src, out))
            pairs = deduped
        # ORDER BY
        if stmt.order_by and not skip_order_limit:
            pairs = self._order(stmt, pairs, columns, ctx)
        # LIMIT
        if stmt.limit is not None and not skip_order_limit:
            count = int(evaluate(stmt.limit.count, ctx))
            offset = 0
            if stmt.limit.offset is not None:
                offset = int(evaluate(stmt.limit.offset, ctx))
            pairs = pairs[offset : offset + max(count, 0)]
        return ResultSet(columns, [out for _, out in pairs])

    def _table_rows(self, ref, ctx, outer_row):
        if isinstance(ref, ast.DerivedTable):
            return self._derived_rows(ref, ctx, outer_row)
        table = self._db.table(ref.name)
        alias = (ref.alias or ref.name).lower()
        columns = [(alias, col.name) for col in table.columns]
        rows = []
        for stored in table.rows:
            row = {} if outer_row is None else dict(outer_row)
            for col_name, value in stored.items():
                row["%s.%s" % (alias, col_name)] = value
            row["__source__%s" % alias] = stored
            rows.append(row)
        return rows, columns

    def _derived_rows(self, ref, ctx, outer_row):
        """Materialize a FROM-clause subquery under its alias."""
        alias = ref.alias.lower()
        result = self._select(ref.select, ctx, outer_row)
        col_names = [c.lower() for c in result.columns]
        columns = [(alias, name) for name in col_names]
        rows = []
        for values in result.rows:
            row = {} if outer_row is None else dict(outer_row)
            for name, value in zip(col_names, values):
                row["%s.%s" % (alias, name)] = value
            rows.append(row)
        return rows, columns

    def _build_sources(self, stmt, ctx, outer_row):
        if not stmt.tables:
            base = {} if outer_row is None else dict(outer_row)
            return [base], []
        first = stmt.tables[0]
        if (
            len(stmt.tables) == 1
            and not stmt.joins
            and not isinstance(first, ast.DerivedTable)
        ):
            narrowed = self._index_narrowed_rows(first, stmt.where,
                                                 outer_row)
            if narrowed is not None:
                return narrowed
        rows, columns = self._table_rows(stmt.tables[0], ctx, outer_row)
        for ref in stmt.tables[1:]:
            right_rows, right_cols = self._table_rows(ref, ctx, outer_row)
            rows = [
                _merge(a, b) for a in rows for b in right_rows
            ]
            columns += right_cols
        for join in stmt.joins:
            right_rows, right_cols = self._table_rows(join.table, ctx,
                                                      outer_row)
            rows = self._apply_join(join, rows, right_rows, right_cols, ctx)
            columns += right_cols
        return rows, columns

    def _indexable_predicate(self, ref, where):
        """Find ``col = literal`` usable through an index on *ref*.

        Looks at the WHERE expression itself or the operands of a
        top-level AND; returns ``(column, value)`` or ``None``.
        """
        if where is None:
            return None
        table = self._db.tables.get(ref.name.lower())
        if table is None:
            return None
        indexed = table.indexed_columns()
        alias = (ref.alias or ref.name).lower()
        candidates = [where]
        if isinstance(where, ast.Cond) and where.op == "AND":
            candidates = where.operands
        for expr in candidates:
            pair = _equality_pair(expr, alias)
            if pair is not None and pair[0] in indexed:
                return pair
        return None

    def _index_narrowed_rows(self, ref, where, outer_row):
        """Single-table index access path, or ``None`` for a full scan."""
        pair = self._indexable_predicate(ref, where)
        if pair is None:
            return None
        column, value = pair
        table = self._db.table(ref.name)
        alias = (ref.alias or ref.name).lower()
        columns = [(alias, col.name) for col in table.columns]
        rows = []
        for stored in table.index_lookup(column, value):
            row = {} if outer_row is None else dict(outer_row)
            for col_name, cell in stored.items():
                row["%s.%s" % (alias, col_name)] = cell
            row["__source__%s" % alias] = stored
            rows.append(row)
        return rows, columns

    def _explain(self, select):
        """EXPLAIN output: one row per table source with the access type
        (``ref`` via an index, ``ALL`` for a full scan) and the key."""
        rows = []
        for ref in select.tables:
            if isinstance(ref, ast.DerivedTable):
                rows.append((ref.alias, "DERIVED", None, None))
                continue
            table = self._db.table(ref.name)
            pair = None
            if len(select.tables) == 1 and not select.joins:
                pair = self._indexable_predicate(ref, select.where)
            if pair is not None:
                rows.append((table.name, "ref", pair[0], len(table)))
            else:
                rows.append((table.name, "ALL", None, len(table)))
        for join in select.joins:
            if isinstance(join.table, ast.DerivedTable):
                rows.append((join.table.alias, "DERIVED", None, None))
            else:
                table = self._db.table(join.table.name)
                rows.append((table.name, "ALL", None, len(table)))
        return ResultSet(["table", "type", "key", "rows"], rows)

    def _apply_join(self, join, left_rows, right_rows, right_cols, ctx):
        out = []
        if join.kind in ("INNER", "CROSS"):
            for a in left_rows:
                for b in right_rows:
                    merged = _merge(a, b)
                    if join.on is None or is_truthy(
                        evaluate(join.on, ctx.child(merged))
                    ):
                        out.append(merged)
            return out
        if join.kind == "LEFT":
            null_right = {
                "%s.%s" % (alias, col): None for alias, col in right_cols
            }
            for a in left_rows:
                matched = False
                for b in right_rows:
                    merged = _merge(a, b)
                    if join.on is None or is_truthy(
                        evaluate(join.on, ctx.child(merged))
                    ):
                        matched = True
                        out.append(merged)
                if not matched:
                    out.append(_merge(a, null_right))
            return out
        if join.kind == "RIGHT":
            left_cols = [
                key for key in (left_rows[0] if left_rows else {})
                if not key.startswith("__source__")
            ]
            null_left = {key: None for key in left_cols}
            for b in right_rows:
                matched = False
                for a in left_rows:
                    merged = _merge(a, b)
                    if join.on is None or is_truthy(
                        evaluate(join.on, ctx.child(merged))
                    ):
                        matched = True
                        out.append(merged)
                if not matched:
                    out.append(_merge(null_left, b))
            return out
        raise ExecutionError("unsupported join kind %r" % join.kind)

    # -- aggregation ---------------------------------------------------------

    def _collect_aggregates(self, stmt):
        aggregates = []

        def walk(node):
            if node is None:
                return
            if isinstance(node, ast.FuncCall):
                if is_aggregate(node.name):
                    aggregates.append(node)
                    return  # no nested aggregates
                for arg in node.args:
                    walk(arg)
            elif isinstance(node, ast.SelectField):
                walk(node.expr)
            elif isinstance(node, ast.BinaryOp):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (ast.UnaryOp, ast.Not)):
                walk(node.operand)
            elif isinstance(node, ast.Cond):
                for operand in node.operands:
                    walk(operand)
            elif isinstance(node, ast.InList):
                walk(node.expr)
                if not isinstance(node.items, ast.Subquery):
                    for item in node.items:
                        walk(item)
            elif isinstance(node, ast.Between):
                walk(node.expr)
                walk(node.low)
                walk(node.high)
            elif isinstance(node, (ast.IsNull,)):
                walk(node.expr)
            elif isinstance(node, ast.Like):
                walk(node.expr)
                walk(node.pattern)
            elif isinstance(node, ast.Case):
                walk(node.operand)
                for cond, result in node.whens:
                    walk(cond)
                    walk(result)
                walk(node.default)

        for field in stmt.fields:
            walk(field)
        walk(stmt.having)
        for order in stmt.order_by:
            walk(order.expr)
        return aggregates

    def _group(self, stmt, rows, aggregates, ctx):
        groups = {}
        order = []
        if stmt.group_by:
            for row in rows:
                key = tuple(
                    _group_key(evaluate(expr, ctx.child(row)))
                    for expr in stmt.group_by
                )
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            groups[()] = rows
            order.append(())
        out = []
        for key in order:
            members = groups[key]
            rep = dict(members[0]) if members else {}
            for agg in aggregates:
                rep["__agg__%s" % _agg_key(agg)] = self._eval_aggregate(
                    agg, members, ctx
                )
            out.append(rep)
        return out

    def _eval_aggregate(self, node, rows, ctx):
        name = node.name.upper()
        if name == "COUNT" and node.args and isinstance(node.args[0],
                                                        ast.Star):
            return len(rows)
        values = []
        for row in rows:
            value = evaluate(node.args[0], ctx.child(row))
            if value is not None:
                values.append(value)
        if node.distinct:
            unique = []
            for value in values:
                if all(compare(value, v) != 0 for v in unique):
                    unique.append(value)
            values = unique
        if name == "COUNT":
            return len(values)
        if not values:
            return None
        if name == "SUM":
            from repro.sqldb.types import coerce_to_number
            return sum(coerce_to_number(v) for v in values)
        if name == "AVG":
            from repro.sqldb.types import coerce_to_number
            nums = [coerce_to_number(v) for v in values]
            return sum(nums) / float(len(nums))
        if name == "MIN":
            return min(values, key=sort_key)
        if name == "MAX":
            return max(values, key=sort_key)
        if name == "GROUP_CONCAT":
            from repro.sqldb.types import render_value
            return ",".join(render_value(v) for v in values)
        raise ExecutionError("unknown aggregate %r" % name)

    # -- projection / ordering ------------------------------------------------

    def _project(self, stmt, rows, source_columns, ctx):
        columns = []
        extractors = []
        for field in stmt.fields:
            if isinstance(field.expr, ast.Star):
                wanted = field.expr.table
                for alias, col in source_columns:
                    if wanted is not None and alias != wanted.lower():
                        continue
                    columns.append(col)
                    extractors.append(_column_extractor(alias, col))
                if wanted is not None and not any(
                    alias == wanted.lower() for alias, _ in source_columns
                ):
                    raise ExecutionError("Unknown table '%s'" % wanted)
            else:
                columns.append(field.alias or _field_label(field.expr))
                extractors.append(_expr_extractor(field.expr, ctx))
        pairs = []
        for row in rows:
            out = tuple(fn(row) for fn in extractors)
            pairs.append((row, out))
        return columns, pairs

    def _order(self, stmt, pairs, columns, ctx):
        lowered = [c.lower() for c in columns]

        def keys_for(pair):
            src, out = pair
            key = []
            for order in stmt.order_by:
                expr = order.expr
                if isinstance(expr, ast.Literal) and expr.type_tag == "int":
                    idx = expr.value - 1
                    if idx < 0 or idx >= len(out):
                        raise ExecutionError(
                            "Unknown column '%d' in 'order clause'"
                            % expr.value
                        )
                    value = out[idx]
                elif (
                    isinstance(expr, ast.ColumnRef)
                    and expr.table is None
                    and expr.name.lower() in lowered
                ):
                    value = out[lowered.index(expr.name.lower())]
                else:
                    value = evaluate(expr, ctx.child(src))
                key.append(
                    (sort_key(value), order.direction == "DESC")
                )
            return key

        decorated = [(keys_for(pair), i, pair)
                     for i, pair in enumerate(pairs)]
        # stable multi-key sort honouring per-key direction
        for pos in range(len(stmt.order_by) - 1, -1, -1):
            reverse = stmt.order_by[pos].direction == "DESC"
            decorated.sort(key=lambda item: item[0][pos][0], reverse=reverse)
        return [pair for _, _, pair in decorated]

    # -- DML --------------------------------------------------------------------

    def _insert(self, stmt, ctx):
        table = self._db.table(stmt.table)
        columns = stmt.columns or table.column_names()
        inserted = 0
        last_id = None
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise ExecutionError(
                    "Column count doesn't match value count", errno=1136
                )
            values = {}
            for col, expr in zip(columns, row_exprs):
                values[col.lower()] = evaluate(expr, ctx)
            if stmt.replace:
                # REPLACE INTO: delete any row conflicting on a unique
                # key, then insert (affected = deleted + inserted)
                inserted += self._delete_conflicting(table, values)
            try:
                auto = table.insert(values)
            except ExecutionError as exc:
                if exc.errno == 1062 and stmt.on_duplicate:
                    inserted += self._apply_on_duplicate(
                        table, stmt.on_duplicate, values, ctx
                    )
                    continue
                if stmt.ignore:
                    continue
                raise
            if auto is not None:
                last_id = auto
            inserted += 1
        if last_id is not None:
            ctx.session.last_insert_id = last_id
        return ExecutionResult(
            affected_rows=inserted,
            last_insert_id=last_id,
            sleep_seconds=ctx.sleep_seconds,
        )

    def _delete_conflicting(self, table, values):
        keys = [c.name for c in table.columns if c.primary_key or c.unique]
        removed = 0
        keep = []
        for row in table.rows:
            conflict = any(
                values.get(key) is not None
                and row.get(key) == table.convert(key, values[key])
                for key in keys
            )
            if conflict:
                removed += 1
            else:
                keep.append(row)
        table.rows = keep
        if removed:
            table.touch()
        return removed

    def _apply_on_duplicate(self, table, assignments, new_values, ctx):
        """ON DUPLICATE KEY UPDATE: update the conflicting row.

        ``VALUES(col)`` inside an assignment refers to the value the
        failed insert attempted for *col* (MySQL semantics).
        """
        keys = [c.name for c in table.columns if c.primary_key or c.unique]
        target = None
        for row in table.rows:
            if any(
                new_values.get(key) is not None
                and row.get(key) == table.convert(key, new_values[key])
                for key in keys
            ):
                target = row
                break
        if target is None:
            return 0
        env = {"%s.%s" % (table.name, k): v for k, v in target.items()}
        changed = False
        for col, expr in assignments:
            resolved = _resolve_values_refs(expr, new_values)
            value = table.convert(col, evaluate(resolved, ctx.child(env)))
            if target.get(col.lower()) != value:
                target[col.lower()] = value
                changed = True
        if changed:
            table.touch()
        # MySQL reports 2 affected rows when an ODKU update changed one
        return 2 if changed else 0

    def _update(self, stmt, ctx):
        table = self._db.table(stmt.table)
        alias = table.name
        changed = 0
        targets = []
        for stored in table.rows:
            env = {"%s.%s" % (alias, k): v for k, v in stored.items()}
            if stmt.where is None or is_truthy(
                evaluate(stmt.where, ctx.child(env))
            ):
                targets.append((stored, env))
        targets = self._order_dml_targets(stmt.order_by, targets, ctx)
        if stmt.limit is not None:
            count = int(evaluate(stmt.limit.count, ctx))
            targets = targets[: max(count, 0)]
        for stored, env in targets:
            updates = {}
            for col, expr in stmt.assignments:
                if not table.has_column(col):
                    raise ExecutionError(
                        "Unknown column '%s' in 'field list'" % col,
                        errno=1054,
                    )
                updates[col.lower()] = table.convert(
                    col, evaluate(expr, ctx.child(env))
                )
            if any(stored.get(k) != v for k, v in updates.items()):
                stored.update(updates)
                changed += 1
        if changed:
            table.touch()
        return ExecutionResult(
            affected_rows=changed, sleep_seconds=ctx.sleep_seconds
        )

    def _delete(self, stmt, ctx):
        table = self._db.table(stmt.table)
        alias = table.name
        targets = []
        for stored in table.rows:
            env = {"%s.%s" % (alias, k): v for k, v in stored.items()}
            if stmt.where is None or is_truthy(
                evaluate(stmt.where, ctx.child(env))
            ):
                targets.append((stored, env))
        targets = self._order_dml_targets(stmt.order_by, targets, ctx)
        if stmt.limit is not None:
            count = int(evaluate(stmt.limit.count, ctx))
            targets = targets[: max(count, 0)]
        doomed = {id(stored) for stored, _ in targets}
        table.rows = [row for row in table.rows if id(row) not in doomed]
        if doomed:
            table.touch()
        return ExecutionResult(
            affected_rows=len(doomed), sleep_seconds=ctx.sleep_seconds
        )

    def _order_dml_targets(self, order_by, targets, ctx):
        """ORDER BY for UPDATE/DELETE target selection (matters with
        LIMIT: MySQL deletes/updates the first N *in order*)."""
        if not order_by:
            return targets
        decorated = list(targets)
        for item in reversed(order_by):
            reverse = item.direction == "DESC"
            decorated.sort(
                key=lambda pair: sort_key(
                    evaluate(item.expr, ctx.child(pair[1]))
                ),
                reverse=reverse,
            )
        return decorated

    # -- DDL ----------------------------------------------------------------------

    def _create_table(self, stmt):
        name = stmt.name.lower()
        if name in self._db.tables:
            if stmt.if_not_exists:
                return ExecutionResult(affected_rows=0)
            raise ExecutionError(
                "Table '%s' already exists" % stmt.name, errno=1050
            )
        columns = []
        for cdef in stmt.columns:
            default = None
            if cdef.default is not None:
                default = cdef.default.value
            columns.append(
                Column(
                    cdef.name,
                    cdef.type_name,
                    length=cdef.length,
                    not_null=cdef.not_null,
                    primary_key=cdef.primary_key,
                    auto_increment=cdef.auto_increment,
                    default=default,
                    unique=cdef.unique,
                )
            )
        self._db.create_table(name, columns)
        return ExecutionResult(affected_rows=0)

    def _drop_table(self, stmt):
        name = stmt.name.lower()
        if name not in self._db.tables:
            if stmt.if_exists:
                return ExecutionResult(affected_rows=0)
            raise ExecutionError("Unknown table '%s'" % stmt.name, errno=1051)
        self._db.drop_table(name)
        return ExecutionResult(affected_rows=0)

    def _alter_add_column(self, stmt):
        table = self._db.table(stmt.table)
        cdef = stmt.column_def
        if table.has_column(cdef.name):
            raise ExecutionError(
                "Duplicate column name '%s'" % cdef.name, errno=1060
            )
        default = cdef.default.value if cdef.default is not None else None
        column = Column(
            cdef.name, cdef.type_name, length=cdef.length,
            not_null=cdef.not_null, primary_key=cdef.primary_key,
            auto_increment=cdef.auto_increment, default=default,
            unique=cdef.unique,
        )
        table.columns.append(column)
        table._by_name[column.name] = column
        from repro.sqldb.types import store_convert
        fill = None
        if default is not None:
            fill = store_convert(default, column.type_name, column.length)
        elif column.not_null:
            fill = "" if column.type_name in ("VARCHAR", "TEXT",
                                              "CHAR") else 0
        for row in table.rows:
            row[column.name] = fill
        table.touch()
        self._db.bump_schema_version()
        return ExecutionResult(affected_rows=len(table.rows))

    def _alter_drop_column(self, stmt):
        table = self._db.table(stmt.table)
        name = stmt.column.lower()
        if not table.has_column(name):
            raise ExecutionError(
                "Can't DROP '%s'; check that column/key exists"
                % stmt.column, errno=1091,
            )
        if len(table.columns) == 1:
            raise ExecutionError(
                "A table must have at least 1 column", errno=1090
            )
        table.columns = [c for c in table.columns if c.name != name]
        del table._by_name[name]
        for row in table.rows:
            row.pop(name, None)
        table.touch()
        self._db.bump_schema_version()
        return ExecutionResult(affected_rows=len(table.rows))

    def _describe(self, stmt):
        table = self._db.table(stmt.table)
        rows = []
        for col in table.columns:
            type_text = col.type_name.lower()
            if col.length is not None:
                type_text += "(%d)" % col.length
            rows.append(
                (
                    col.name,
                    type_text,
                    "NO" if col.not_null else "YES",
                    "PRI" if col.primary_key else
                    ("UNI" if col.unique else ""),
                    col.default,
                    "auto_increment" if col.auto_increment else "",
                )
            )
        return ExecutionResult(
            result_set=ResultSet(
                ["Field", "Type", "Null", "Key", "Default", "Extra"], rows
            )
        )


def _resolve_values_refs(expr, new_values):
    """Replace ``VALUES(col)`` calls with the attempted insert value."""
    if isinstance(expr, ast.FuncCall) and expr.name == "VALUES" and \
            len(expr.args) == 1 and isinstance(expr.args[0], ast.ColumnRef):
        value = new_values.get(expr.args[0].name.lower())
        from repro.sqldb.prepared import literal_for
        return literal_for(value)
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(
            expr.op,
            _resolve_values_refs(expr.left, new_values),
            _resolve_values_refs(expr.right, new_values),
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            [_resolve_values_refs(a, new_values) for a in expr.args],
            expr.distinct,
        )
    return expr


def _equality_pair(expr, alias):
    """``col = literal`` (either side) scoped to *alias*, else ``None``."""
    if not isinstance(expr, ast.BinaryOp) or expr.op != "=":
        return None
    column, literal = None, None
    for left, right in ((expr.left, expr.right), (expr.right, expr.left)):
        if isinstance(left, ast.ColumnRef) and isinstance(right,
                                                          ast.Literal):
            if left.table is None or left.table.lower() == alias:
                column, literal = left.name.lower(), right.value
                break
    if column is None or literal is None and not isinstance(
        literal, (int, float, str)
    ):
        return None
    if literal is None:
        return None  # NULL never matches through '='
    return column, literal


def _merge(a, b):
    merged = dict(a)
    merged.update(b)
    return merged


def _group_key(value):
    if isinstance(value, str):
        return ("s", value.lower())
    if value is None:
        return ("n", None)
    return ("v", float(value))


def _column_extractor(alias, col):
    key = "%s.%s" % (alias, col)

    def extract(row):
        return row.get(key)

    return extract


def _expr_extractor(expr, ctx):
    def extract(row):
        return evaluate(expr, ctx.child(row))

    return extract


def _field_label(expr):
    """Column heading MySQL would produce for an unaliased expression."""
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FuncCall):
        return "%s(...)" % expr.name.lower()
    if isinstance(expr, ast.Literal):
        from repro.sqldb.types import render_value
        return render_value(expr.value)
    return type(expr).__name__.lower()
