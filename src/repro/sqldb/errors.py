"""Exception hierarchy for the mini-MySQL substrate."""


class SQLError(Exception):
    """Base class for every error raised by the SQL engine."""

    #: MySQL-style error code (approximate; used by tests and the web layer).
    errno = 1064

    #: True for faults that may succeed on retry (the client connector's
    #: bounded retry-with-backoff keys off this).
    transient = False

    def __init__(self, message, errno=None):
        super().__init__(message)
        self.message = message
        if errno is not None:
            self.errno = errno

    def __str__(self):
        return "ERROR %d: %s" % (self.errno, self.message)


class LexerError(SQLError):
    """Raised when the tokenizer meets an invalid character sequence."""

    errno = 1064


class ParseError(SQLError):
    """Raised when the token stream does not form a valid statement."""

    errno = 1064


class ValidationError(SQLError):
    """Raised when a parsed statement references unknown tables/columns."""

    errno = 1054


class ExecutionError(SQLError):
    """Raised when a valid statement fails during execution."""

    errno = 1105


class MultiStatementError(SQLError):
    """Raised when a client sends several statements in one call without
    having enabled multi-statement support (mirrors MySQL's
    ``CLIENT_MULTI_STATEMENTS`` behaviour, the reason classic piggy-backed
    injection fails against ``mysql_query``)."""

    errno = 1064


class TransientEngineError(SQLError):
    """An unexpected internal engine fault, surfaced as the MySQL-style
    "lost connection" error.  Marked transient: the statement did not
    produce a result, and retrying it is reasonable (unlike an
    :class:`ExecutionError`, which reports a deterministic failure)."""

    errno = 2013
    transient = True


class WriteConflictError(TransientEngineError):
    """First-writer-wins conflict under snapshot isolation: the statement
    tried to modify a row that another transaction has a pending version
    of (or that committed after this transaction's snapshot).  Surfaced
    with MySQL's deadlock errno because that is the error class clients
    already treat as "roll back and retry"; the conflict check runs
    *before* any row is touched, so a retry never double-applies."""

    errno = 1213  # "Deadlock found when trying to get lock; try restarting"


class WalError(SQLError):
    """A durability-layer failure (write-ahead log or checkpoint)."""

    errno = 1030  # "Got error ... from storage engine"


class WalCorruptionError(WalError):
    """On-disk WAL/checkpoint state fails its integrity checks in a way a
    crash cannot explain (bit rot mid-log, mangled checkpoint).

    Torn *tails* are normal crash artifacts and never raise — they are
    truncated during recovery.  This error is reserved for damage inside
    the supposedly-durable prefix, which must be surfaced, not guessed
    around.  ``clean_records`` carries the records before the damage and
    ``database``, when recovery got that far, the engine rebuilt from
    that clean prefix.
    """

    def __init__(self, message, offset=None, clean_records=None):
        super().__init__(message)
        #: byte offset of the damaged record in the log (or ``None``)
        self.offset = offset
        #: intact records preceding the damage
        self.clean_records = clean_records or []
        #: the clean-prefix :class:`repro.sqldb.engine.Database`, filled
        #: by ``Database.recover`` before re-raising
        self.database = None


class PagerError(WalError):
    """A paged-storage failure (page file I/O, buffer-pool exhaustion,
    or an oversized record) after the pager's bounded retry budget is
    spent — the fail-closed escalation of the ``pager.*`` fault sites."""


class PageCorruptionError(PagerError):
    """A page read back from disk fails its checksum (or carries the
    wrong page number / magic).  Torn writes caught during recovery are
    repaired from the doublewrite area and never raise; this error
    surfaces damage the scrubber has not (yet) repaired.  ``page_no``
    names the damaged page."""

    def __init__(self, message, page_no=None):
        super().__init__(message)
        self.page_no = page_no


class QueryBlocked(SQLError):
    """Raised (to the client) when SEPTIC drops a query in prevention mode."""

    errno = 3090

    def __init__(self, message, record=None):
        super().__init__(message)
        #: The :class:`repro.core.logger.EventRecord` describing the attack.
        self.record = record
