"""The septic training module (paper §II-E, training-mode bullet).

"This module runs externally to SEPTIC [...] It works like a crawler,
navigating in the application looking for forms, to then inject benign
inputs that eventually are inserted in queries transmitted to MySQL."

:class:`SepticTrainer` does exactly that against a
:class:`repro.web.app.WebApplication`: it discovers the declared forms
and the parameterless GET routes, submits each form's benign samples, and
repeats for a configurable number of passes (a second pass demonstrates
that an already-learned query creates no second model).
"""

from repro.core.septic import Mode
from repro.web.http import Request


class TrainingReport(object):
    """What one training run did."""

    __slots__ = ("requests_sent", "models_before", "models_after",
                 "failures")

    def __init__(self, requests_sent, models_before, models_after, failures):
        self.requests_sent = requests_sent
        self.models_before = models_before
        self.models_after = models_after
        self.failures = failures

    @property
    def models_learned(self):
        return self.models_after - self.models_before

    def __repr__(self):
        return "TrainingReport(%d requests, %d new models, %d failures)" % (
            self.requests_sent, self.models_learned, len(self.failures)
        )


class SepticTrainer(object):
    """Crawler-style trainer: forms in, query models out."""

    def __init__(self, app, septic):
        self.app = app
        self.septic = septic

    def crawl(self):
        """Discover training requests: every declared form with its benign
        samples, plus every GET route that needs no parameters."""
        requests = []
        form_paths = {(form.method, form.path) for form in self.app.forms}
        for method, path in self.app.routes():
            if method == "GET" and (method, path) not in form_paths:
                requests.append(Request.get(path))
        for form in self.app.forms:
            requests.append(
                Request(form.method, form.path, form.benign_params())
            )
        return requests

    def train(self, passes=1, set_prevention=False):
        """Run the crawler in training mode.

        Ensures SEPTIC is in training mode for the duration; optionally
        switches it to prevention afterwards (the demo's phase C → D
        transition).  Returns a :class:`TrainingReport`.
        """
        previous_mode = self.septic.mode
        if previous_mode != Mode.TRAINING:
            self.septic.mode = Mode.TRAINING
        models_before = len(self.septic.store)
        sent = 0
        failures = []
        for _ in range(max(passes, 1)):
            for request in self.crawl():
                response = self.app.handle(request)
                sent += 1
                if response.status >= 500:
                    failures.append((request, response))
        models_after = len(self.septic.store)
        if set_prevention:
            self.septic.mode = Mode.PREVENTION
        elif previous_mode != Mode.TRAINING:
            self.septic.mode = previous_mode
        return TrainingReport(sent, models_before, models_after, failures)

    def train_with_requests(self, requests, passes=1, set_prevention=False):
        """Train from an explicit request list instead of crawling.

        Covers the paper's other training triggers: "application unit
        tests" or queries issued "manually by the programmer" — any
        recorded request sequence works (e.g. a BenchLab workload).
        """
        previous_mode = self.septic.mode
        if previous_mode != Mode.TRAINING:
            self.septic.mode = Mode.TRAINING
        models_before = len(self.septic.store)
        sent = 0
        failures = []
        for _ in range(max(passes, 1)):
            for request in requests:
                response = self.app.handle(request)
                sent += 1
                if response.status >= 500:
                    failures.append((request, response))
        models_after = len(self.septic.store)
        if set_prevention:
            self.septic.mode = Mode.PREVENTION
        elif previous_mode != Mode.TRAINING:
            self.septic.mode = previous_mode
        return TrainingReport(sent, models_before, models_after, failures)
