"""The SEPTIC facade: modules wired per Figure 1, modes per Table I.

``Septic.process_query`` is the hook the DBMS calls for every validated
query, right before execution:

* **training mode** — build QS, derive QM, generate ID, store the model
  (once per distinct ID), log, let the query execute;
* **normal mode** (*prevention* or *detection*) — build QS, generate ID,
  look the QM up; if found, run the attack detector (SQLI comparison +
  stored-injection plugins) and, on attack, log it and (prevention only)
  drop the query by raising :class:`repro.sqldb.errors.QueryBlocked`;
  if no QM is known for the ID, learn it incrementally and log the event
  for later administrator review.

The two detection switches (``detect_sqli`` / ``detect_stored``) give the
four configurations evaluated in the paper's Figure 5 (NN, YN, NY, YY).

``process_query`` is additionally a **crash-containment boundary**: an
internal SEPTIC fault (broken plugin, corrupted store, wedged logger,
watchdog timeout) never escapes raw.  It is logged, counted, fed to the
circuit breaker, and converted into the configured fail-policy outcome —
``fail_closed`` drops the query like an attack, ``fail_open`` lets it
run detection-style (see :mod:`repro.core.resilience`).
"""

from repro import faults as faults_mod
from repro.core import resilience
from repro.core.detector import AttackDetector, AttackType
from repro.core.id_generator import IdGenerator
from repro.core.logger import EventKind, SepticLogger
from repro.core.manager import QSQMManager
from repro.core.resilience import FailPolicy
from repro.core.store import QMStore
from repro.sqldb.errors import QueryBlocked


class Mode(object):
    """Operation modes (paper §II-E, Table I)."""

    TRAINING = "TRAINING"
    PREVENTION = "PREVENTION"
    DETECTION = "DETECTION"

    ALL = (TRAINING, PREVENTION, DETECTION)


class SepticConfig(object):
    """Tunable switches.

    ``detect_sqli`` / ``detect_stored`` are the Y/N pair of Figure 5;
    ``incremental_learning`` controls whether unknown queries are learned
    in normal mode (the paper's second learning path, the feature
    distinguishing SEPTIC from GreenSQL/Percona, §II-B).
    """

    __slots__ = ("detect_sqli", "detect_stored", "incremental_learning")

    def __init__(self, detect_sqli=True, detect_stored=True,
                 incremental_learning=True):
        self.detect_sqli = detect_sqli
        self.detect_stored = detect_stored
        self.incremental_learning = incremental_learning

    @classmethod
    def from_flags(cls, flags):
        """Build from the paper's two-letter notation: ``"NN"``, ``"YN"``,
        ``"NY"`` or ``"YY"`` (SQLI first, stored injection second)."""
        if len(flags) != 2 or any(f not in "YN" for f in flags.upper()):
            raise ValueError("flags must be two of Y/N, e.g. 'YN'")
        flags = flags.upper()
        return cls(detect_sqli=flags[0] == "Y", detect_stored=flags[1] == "Y")

    @property
    def flags(self):
        return ("Y" if self.detect_sqli else "N") + (
            "Y" if self.detect_stored else "N"
        )


class SepticStats(object):
    """Counters exposed for the evaluation harness.

    Increments go through :meth:`bump` under a lock: a ``+=`` on an
    attribute is a read-modify-write, and with the hook running on many
    sessions concurrently lost updates would make the paper's exact
    counts (Table I, Figure 5) non-reproducible.
    """

    _COUNTERS = ("queries_processed", "models_learned", "attacks_detected",
                 "queries_dropped", "sqli_detected", "stored_detected",
                 "unknown_queries",
                 # resilience counters (all zero unless SEPTIC itself
                 # faulted — the fault-matrix tests assert exact values)
                 "internal_faults", "watchdog_timeouts", "breaker_trips",
                 "breaker_resets", "fail_open_passes", "fail_closed_drops",
                 "store_recoveries")

    __slots__ = _COUNTERS + ("_lock",)

    def __init__(self):
        self._lock = resilience.make_lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def bump(self, name, amount=1):
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def as_dict(self):
        with self._lock:
            return {name: getattr(self, name) for name in self._COUNTERS}


class Septic(object):
    """The mechanism, ready to be plugged into a Database's hook point."""

    def __init__(self, mode=Mode.TRAINING, config=None, store=None,
                 logger=None, detector=None, id_generator=None,
                 fail_policy=FailPolicy.CLOSED, breaker=None,
                 watchdog_budget=5.0):
        self._mode = mode
        # "X if X is not None else default": several of these collaborators
        # define __len__, so an empty one is falsy and `X or default()`
        # would silently discard it.
        self.config = config if config is not None else SepticConfig()
        self.manager = QSQMManager(
            store=store if store is not None else QMStore(),
            id_generator=(
                id_generator if id_generator is not None else IdGenerator()
            ),
        )
        self.logger = logger if logger is not None else SepticLogger()
        self.detector = detector if detector is not None else AttackDetector()
        self.stats = SepticStats()
        if fail_policy not in FailPolicy.ALL:
            raise ValueError("unknown fail policy %r" % fail_policy)
        #: what a contained internal fault does to the in-flight query
        self.fail_policy = fail_policy
        #: trips PREVENTION down to DETECTION after repeated faults
        self.breaker = (
            breaker if breaker is not None else resilience.CircuitBreaker()
        )
        #: per-query virtual-clock budget (seconds); None disables
        self.watchdog_budget = watchdog_budget
        #: the database whose data dir co-persists the store (set by
        #: :meth:`bind_store`) — its retry stats ride ``status()``
        self.bound_database = None
        # a recovered store entry is an operator-relevant incident
        self.store.on_recover = self._store_recovered

    # the manager owns the store and ID generator (Figure 1); keep the
    # flat attributes as aliases for the public API
    @property
    def store(self):
        return self.manager.store

    @property
    def id_generator(self):
        return self.manager.id_generator

    # -- durability (co-persist the models with the data plane) ----------

    def bind_store(self, database, path=None, autosave=True):
        """Co-persist the QM store with *database*'s data directory.

        Wires the store to ``<data_dir>/qm_store.json`` (or *path*),
        stamps every save with the database's durable LSN and — with
        *autosave* — persists on every new model, so a kill at any
        point leaves the trained models on disk alongside the WAL they
        were trained against.  Loads whatever the file already holds
        and returns the number of models loaded.
        """
        store = self.store
        if path is None:
            if database.data_dir is None:
                raise ValueError(
                    "database has no data_dir; attach a WAL first or "
                    "pass an explicit path"
                )
            from repro.sqldb import wal as wal_mod

            path = wal_mod.qm_store_path(database.data_dir)
        self.bound_database = database
        store._path = path
        store.lsn_provider = lambda: database.durable_lsn
        store.autosave = autosave
        return self.reload_models()

    def reload_models(self):
        """Re-load persisted query models (the restart path: the demo
        restarts MySQL between training and normal mode, §IV-D).
        Returns the number of models loaded; 0 when nothing persists."""
        store = self.store
        if store._path is None:
            return 0
        count = store.load()
        self._safe_log(
            EventKind.MODELS_RELOADED,
            detail="%d models, wal_lsn=%d" % (count, store.wal_lsn),
        )
        return count

    # -- mode management ---------------------------------------------------

    @property
    def mode(self):
        return self._mode

    @mode.setter
    def mode(self, new_mode):
        if new_mode not in Mode.ALL:
            raise ValueError("unknown mode %r" % new_mode)
        self._mode = new_mode
        self.logger.log(EventKind.MODE_CHANGED, detail="mode=%s" % new_mode)

    @property
    def effective_mode(self):
        """The mode actually applied to this query: an OPEN circuit
        breaker degrades PREVENTION to DETECTION (availability first)
        until the cool-down closes it again."""
        if self._mode == Mode.PREVENTION and self.breaker.is_open:
            return Mode.DETECTION
        return self._mode

    def status(self):
        """Snapshot for the demo's "SEPTIC status" display.

        When the store is bound to a database (:meth:`bind_store`) the
        connector's transient-retry counters ride along under
        ``retry_stats``, so detection stats and retry pressure show up
        in one place."""
        database = getattr(self, "bound_database", None)
        retry_stats = getattr(database, "retry_stats", None)
        storage_stats = getattr(database, "storage_stats", None)
        net_stats = getattr(database, "net_stats", None)
        return {
            "retry_stats": (
                retry_stats.as_dict() if retry_stats is not None else None
            ),
            # socket front-end connection counters (open/active/pooled/
            # rejected and friends); None until a NetServer is started
            # over the bound database
            "net": (net_stats() if callable(net_stats) else None),
            # buffer-pool / pager / scrubber accounting (None for the
            # in-memory backend): pages_cached, evictions, dirty_flushes,
            # scrub_repairs and friends
            "storage": (
                storage_stats() if storage_stats is not None else None
            ),
            "mode": self._mode,
            "effective_mode": self.effective_mode,
            "detect_sqli": self.config.detect_sqli,
            "detect_stored": self.config.detect_stored,
            "incremental_learning": self.config.incremental_learning,
            "fail_policy": self.fail_policy,
            "watchdog_budget": self.watchdog_budget,
            "breaker": self.breaker.state_dict(),
            "store_integrity": self.store.integrity_stats(),
            "models": len(self.store),
            "plugins": [plugin.name for plugin in self.detector.plugins],
            "stats": self.stats.as_dict(),
        }

    # -- the DBMS hook -------------------------------------------------------

    def process_query(self, context):
        """Inspect one validated query (called by the engine).

        Raises :class:`QueryBlocked` to drop the query (prevention mode,
        or a contained internal fault under the fail-closed policy);
        returns normally to let execution proceed.  No other exception
        ever escapes: this is the crash-containment boundary.
        """
        self.stats.bump("queries_processed")
        self.breaker.on_query()
        checkpoint = None
        if faults_mod.ACTIVE is not None and self.watchdog_budget:
            # the virtual clock only moves under an armed fault plan (or
            # explicitly instrumented plugins), so the watchdog costs
            # nothing — and can never fire — in normal operation
            checkpoint = resilience.Watchdog(self.watchdog_budget).check
        try:
            self._process(context, checkpoint)
        except QueryBlocked:
            # a verdict, not a fault: the mechanism worked
            self.breaker.record_success()
            raise
        except resilience.WatchdogTimeout as exc:
            self._contain(exc, context, watchdog=True)
        except Exception as exc:
            self._contain(exc, context, watchdog=False)
        else:
            if self.breaker.record_success():
                self.stats.bump("breaker_resets")
                self._safe_log(EventKind.BREAKER_RESET,
                               detail="circuit closed after trial query")

    # -- internals --------------------------------------------------------------

    def _process(self, context, checkpoint):
        lookup = self.manager.receive(context, checkpoint)
        self.logger.log(EventKind.QS_BUILT,
                        query=context.sql,
                        detail="%d nodes" % len(lookup.structure))
        self.logger.log(EventKind.ID_GENERATED,
                        query_id=lookup.query_id.value)
        if checkpoint is not None:
            checkpoint()
        if self._mode == Mode.TRAINING:
            self._learn(lookup, context, training=True)
            return
        self._normal_mode(lookup, context, checkpoint)

    def _contain(self, exc, context, watchdog):
        """Absorb one internal fault per the fail policy (never re-raise
        anything but :class:`QueryBlocked`)."""
        self.stats.bump("internal_faults")
        if watchdog:
            self.stats.bump("watchdog_timeouts")
            self._safe_log(EventKind.WATCHDOG_TIMEOUT, query=context.sql,
                           detail=str(exc))
        else:
            self._safe_log(EventKind.INTERNAL_FAULT, query=context.sql,
                           detail="%s: %s" % (type(exc).__name__, exc))
        if self.breaker.record_fault():
            self.stats.bump("breaker_trips")
            self._safe_log(
                EventKind.BREAKER_TRIPPED,
                detail="circuit open after %s consecutive faults; "
                       "degrading to %s" % (self.breaker.threshold,
                                            Mode.DETECTION),
            )
        if self._mode == Mode.TRAINING or self.breaker.is_open \
                or self.fail_policy == FailPolicy.OPEN:
            # availability: let the query run, detection-style (training
            # never drops; an open breaker overrides fail-closed — that
            # is exactly the degradation it exists to provide)
            self.stats.bump("fail_open_passes")
            return
        self.stats.bump("fail_closed_drops")
        raise QueryBlocked(
            "query dropped by SEPTIC fail-closed policy "
            "(internal fault: %s)" % type(exc).__name__
        )

    def _safe_log(self, kind, **fields):
        """Log on the resilience path: a faulty logger must never turn
        fault handling into a second crash."""
        try:
            self.logger.log(kind, **fields)
        except Exception:
            pass

    def _store_recovered(self, full_id):
        """Callback from the QM store after a journal recovery."""
        self.stats.bump("store_recoveries")
        self._safe_log(EventKind.STORE_RECOVERED, query_id=full_id,
                       detail="model rebuilt from journal")

    def _learn(self, lookup, context, training):
        created = self.manager.learn(lookup)
        if created:
            self.stats.bump("models_learned")
            self.logger.log(
                EventKind.QM_CREATED,
                query=context.sql,
                query_id=lookup.query_id.value,
                model=lookup.model_of_query,
                detail="training" if training else "incremental",
            )
        return created

    def _normal_mode(self, lookup, context, checkpoint=None):
        structure = lookup.structure
        query_id = lookup.query_id
        model = lookup.model
        known = lookup.known
        # The internal hash changes whenever the structure changes, so a
        # mutated query will not match exactly.  When the query carries
        # an external identifier (call site), the manager also returns
        # the models learned for that call site.
        candidates = None if known else lookup.candidates
        if known:
            self.logger.log(EventKind.QM_FOUND, query_id=query_id.value)
        if self.config.detect_sqli:
            detection = self._sqli_detection(structure, model, candidates,
                                             checkpoint)
            if checkpoint is not None:
                checkpoint()
            if detection is not None and detection.is_attack:
                self._handle_attack(detection, query_id, context,
                                    model or (candidates[0] if candidates
                                              else None))
                return
            if detection is not None:
                self.logger.log(EventKind.COMPARISON_OK,
                                query_id=query_id.value)
            known = known or bool(candidates)
        if self.config.detect_stored:
            detection = self.detector.detect_stored(structure,
                                                    checkpoint=checkpoint)
            if checkpoint is not None:
                checkpoint()
            if detection.is_attack:
                self._handle_attack(detection, query_id, context, model)
                return
        if not known and not self.store.get(query_id):
            # Unknown query: incremental learning (administrator reviews
            # these later, paper §II-E).
            self.stats.bump("unknown_queries")
            if self.config.incremental_learning:
                self._learn(lookup, context, training=False)
        self.logger.log(EventKind.QUERY_EXECUTED, query_id=query_id.value)
        if checkpoint is not None:
            checkpoint()

    def _sqli_detection(self, structure, model, candidates, checkpoint=None):
        """Run the two-step comparison.

        Returns a Detection, or ``None`` when there is nothing to compare
        against (no model and no call-site candidates).
        """
        if model is not None:
            return self.detector.detect_sqli(structure, model)
        if candidates:
            # match against every model learned for this call site; an
            # attack is flagged only if none matches
            best = None
            for candidate in candidates:
                if checkpoint is not None:
                    checkpoint()
                detection = self.detector.detect_sqli(structure, candidate)
                if not detection.is_attack:
                    return detection
                if best is None or (detection.step or 0) > (best.step or 0):
                    best = detection  # prefer the most precise mismatch
            return best
        return None

    def _handle_attack(self, detection, query_id, context, model):
        self.stats.bump("attacks_detected")
        if detection.attack_type == AttackType.SQLI:
            self.stats.bump("sqli_detected")
        else:
            self.stats.bump("stored_detected")
        record = self.logger.log(
            EventKind.ATTACK_DETECTED,
            query=context.sql,
            query_id=query_id.value,
            model=model,
            attack_type=detection.attack_type,
            step=detection.step,
            detail=detection.detail,
        )
        if self.effective_mode == Mode.PREVENTION:
            self.stats.bump("queries_dropped")
            self.logger.log(
                EventKind.QUERY_DROPPED,
                query=context.sql,
                query_id=query_id.value,
                attack_type=detection.attack_type,
            )
            raise QueryBlocked(
                "query dropped by SEPTIC (%s, %s)"
                % (detection.attack_type, detection.kind_label),
                record=record,
            )
        # detection mode: log only, let the query execute
