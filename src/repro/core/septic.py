"""The SEPTIC facade: modules wired per Figure 1, modes per Table I.

``Septic.process_query`` is the hook the DBMS calls for every validated
query, right before execution:

* **training mode** — build QS, derive QM, generate ID, store the model
  (once per distinct ID), log, let the query execute;
* **normal mode** (*prevention* or *detection*) — build QS, generate ID,
  look the QM up; if found, run the attack detector (SQLI comparison +
  stored-injection plugins) and, on attack, log it and (prevention only)
  drop the query by raising :class:`repro.sqldb.errors.QueryBlocked`;
  if no QM is known for the ID, learn it incrementally and log the event
  for later administrator review.

The two detection switches (``detect_sqli`` / ``detect_stored``) give the
four configurations evaluated in the paper's Figure 5 (NN, YN, NY, YY).
"""

import threading

from repro.core.detector import AttackDetector, AttackType
from repro.core.id_generator import IdGenerator
from repro.core.logger import EventKind, SepticLogger
from repro.core.manager import QSQMManager
from repro.core.store import QMStore
from repro.sqldb.errors import QueryBlocked


class Mode(object):
    """Operation modes (paper §II-E, Table I)."""

    TRAINING = "TRAINING"
    PREVENTION = "PREVENTION"
    DETECTION = "DETECTION"

    ALL = (TRAINING, PREVENTION, DETECTION)


class SepticConfig(object):
    """Tunable switches.

    ``detect_sqli`` / ``detect_stored`` are the Y/N pair of Figure 5;
    ``incremental_learning`` controls whether unknown queries are learned
    in normal mode (the paper's second learning path, the feature
    distinguishing SEPTIC from GreenSQL/Percona, §II-B).
    """

    __slots__ = ("detect_sqli", "detect_stored", "incremental_learning")

    def __init__(self, detect_sqli=True, detect_stored=True,
                 incremental_learning=True):
        self.detect_sqli = detect_sqli
        self.detect_stored = detect_stored
        self.incremental_learning = incremental_learning

    @classmethod
    def from_flags(cls, flags):
        """Build from the paper's two-letter notation: ``"NN"``, ``"YN"``,
        ``"NY"`` or ``"YY"`` (SQLI first, stored injection second)."""
        if len(flags) != 2 or any(f not in "YN" for f in flags.upper()):
            raise ValueError("flags must be two of Y/N, e.g. 'YN'")
        flags = flags.upper()
        return cls(detect_sqli=flags[0] == "Y", detect_stored=flags[1] == "Y")

    @property
    def flags(self):
        return ("Y" if self.detect_sqli else "N") + (
            "Y" if self.detect_stored else "N"
        )


class SepticStats(object):
    """Counters exposed for the evaluation harness.

    Increments go through :meth:`bump` under a lock: a ``+=`` on an
    attribute is a read-modify-write, and with the hook running on many
    sessions concurrently lost updates would make the paper's exact
    counts (Table I, Figure 5) non-reproducible.
    """

    _COUNTERS = ("queries_processed", "models_learned", "attacks_detected",
                 "queries_dropped", "sqli_detected", "stored_detected",
                 "unknown_queries")

    __slots__ = _COUNTERS + ("_lock",)

    def __init__(self):
        self._lock = threading.Lock()
        for name in self._COUNTERS:
            setattr(self, name, 0)

    def bump(self, name, amount=1):
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def as_dict(self):
        with self._lock:
            return {name: getattr(self, name) for name in self._COUNTERS}


class Septic(object):
    """The mechanism, ready to be plugged into a Database's hook point."""

    def __init__(self, mode=Mode.TRAINING, config=None, store=None,
                 logger=None, detector=None, id_generator=None):
        self._mode = mode
        # "X if X is not None else default": several of these collaborators
        # define __len__, so an empty one is falsy and `X or default()`
        # would silently discard it.
        self.config = config if config is not None else SepticConfig()
        self.manager = QSQMManager(
            store=store if store is not None else QMStore(),
            id_generator=(
                id_generator if id_generator is not None else IdGenerator()
            ),
        )
        self.logger = logger if logger is not None else SepticLogger()
        self.detector = detector if detector is not None else AttackDetector()
        self.stats = SepticStats()

    # the manager owns the store and ID generator (Figure 1); keep the
    # flat attributes as aliases for the public API
    @property
    def store(self):
        return self.manager.store

    @property
    def id_generator(self):
        return self.manager.id_generator

    # -- mode management ---------------------------------------------------

    @property
    def mode(self):
        return self._mode

    @mode.setter
    def mode(self, new_mode):
        if new_mode not in Mode.ALL:
            raise ValueError("unknown mode %r" % new_mode)
        self._mode = new_mode
        self.logger.log(EventKind.MODE_CHANGED, detail="mode=%s" % new_mode)

    def status(self):
        """Snapshot for the demo's "SEPTIC status" display."""
        return {
            "mode": self._mode,
            "detect_sqli": self.config.detect_sqli,
            "detect_stored": self.config.detect_stored,
            "incremental_learning": self.config.incremental_learning,
            "models": len(self.store),
            "plugins": [plugin.name for plugin in self.detector.plugins],
            "stats": self.stats.as_dict(),
        }

    # -- the DBMS hook -------------------------------------------------------

    def process_query(self, context):
        """Inspect one validated query (called by the engine).

        Raises :class:`QueryBlocked` to drop the query (prevention mode
        only); returns normally to let execution proceed.
        """
        self.stats.bump("queries_processed")
        lookup = self.manager.receive(context)
        self.logger.log(EventKind.QS_BUILT,
                        query=context.sql,
                        detail="%d nodes" % len(lookup.structure))
        self.logger.log(EventKind.ID_GENERATED,
                        query_id=lookup.query_id.value)
        if self._mode == Mode.TRAINING:
            self._learn(lookup, context, training=True)
            return
        self._normal_mode(lookup, context)

    # -- internals --------------------------------------------------------------

    def _learn(self, lookup, context, training):
        created = self.manager.learn(lookup)
        if created:
            self.stats.bump("models_learned")
            self.logger.log(
                EventKind.QM_CREATED,
                query=context.sql,
                query_id=lookup.query_id.value,
                model=lookup.model_of_query,
                detail="training" if training else "incremental",
            )
        return created

    def _normal_mode(self, lookup, context):
        structure = lookup.structure
        query_id = lookup.query_id
        model = lookup.model
        known = lookup.known
        # The internal hash changes whenever the structure changes, so a
        # mutated query will not match exactly.  When the query carries
        # an external identifier (call site), the manager also returns
        # the models learned for that call site.
        candidates = None if known else lookup.candidates
        if known:
            self.logger.log(EventKind.QM_FOUND, query_id=query_id.value)
        if self.config.detect_sqli:
            detection = self._sqli_detection(structure, model, candidates)
            if detection is not None and detection.is_attack:
                self._handle_attack(detection, query_id, context,
                                    model or (candidates[0] if candidates
                                              else None))
                return
            if detection is not None:
                self.logger.log(EventKind.COMPARISON_OK,
                                query_id=query_id.value)
            known = known or bool(candidates)
        if self.config.detect_stored:
            detection = self.detector.detect_stored(structure)
            if detection.is_attack:
                self._handle_attack(detection, query_id, context, model)
                return
        if not known and not self.store.get(query_id):
            # Unknown query: incremental learning (administrator reviews
            # these later, paper §II-E).
            self.stats.bump("unknown_queries")
            if self.config.incremental_learning:
                self._learn(lookup, context, training=False)
        self.logger.log(EventKind.QUERY_EXECUTED, query_id=query_id.value)

    def _sqli_detection(self, structure, model, candidates):
        """Run the two-step comparison.

        Returns a Detection, or ``None`` when there is nothing to compare
        against (no model and no call-site candidates).
        """
        if model is not None:
            return self.detector.detect_sqli(structure, model)
        if candidates:
            # match against every model learned for this call site; an
            # attack is flagged only if none matches
            best = None
            for candidate in candidates:
                detection = self.detector.detect_sqli(structure, candidate)
                if not detection.is_attack:
                    return detection
                if best is None or (detection.step or 0) > (best.step or 0):
                    best = detection  # prefer the most precise mismatch
            return best
        return None

    def _handle_attack(self, detection, query_id, context, model):
        self.stats.bump("attacks_detected")
        if detection.attack_type == AttackType.SQLI:
            self.stats.bump("sqli_detected")
        else:
            self.stats.bump("stored_detected")
        record = self.logger.log(
            EventKind.ATTACK_DETECTED,
            query=context.sql,
            query_id=query_id.value,
            model=model,
            attack_type=detection.attack_type,
            step=detection.step,
            detail=detection.detail,
        )
        if self._mode == Mode.PREVENTION:
            self.stats.bump("queries_dropped")
            self.logger.log(
                EventKind.QUERY_DROPPED,
                query=context.sql,
                query_id=query_id.value,
                attack_type=detection.attack_type,
            )
            raise QueryBlocked(
                "query dropped by SEPTIC (%s, %s)"
                % (detection.attack_type, detection.kind_label),
                record=record,
            )
        # detection mode: log only, let the query execute
