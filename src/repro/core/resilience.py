"""Resilience primitives for the SEPTIC hook (the fail-policy engine).

The paper's pitch is that SEPTIC runs *inside* the DBMS with negligible
overhead and no interference.  That claim has a flip side the paper never
tests: when SEPTIC itself misbehaves — a detector plugin raises, the QM
store is corrupted, the logger wedges — the query path must not go down
with it, or operators will simply disable the protection.  This module
provides the building blocks :class:`repro.core.septic.Septic` uses to
degrade gracefully instead:

* :class:`VirtualClock` — a deterministic, thread-local clock the
  watchdog measures against.  It advances only when explicitly charged
  (by the fault injector's *hang* faults, or by instrumented plugins),
  so with nothing armed the watchdog can never fire spuriously and the
  hot path pays nothing.
* :class:`Watchdog` — a per-query deadline over the virtual clock.
  Checkpoints sprinkled through the hook call :meth:`Watchdog.check`;
  exceeding the budget raises :class:`WatchdogTimeout`, which the
  containment boundary converts into the configured fail-policy outcome.
* :class:`CircuitBreaker` — trips after ``threshold`` *consecutive*
  internal faults, degrading SEPTIC from PREVENTION to DETECTION
  (availability over blocking) until a ``cooldown`` of fault-free
  queries has passed; then it half-opens and one clean query closes it.
* :class:`FailPolicy` — what a contained internal fault does to the
  in-flight query: ``fail_closed`` drops it (security first, the query
  is refused like an attack), ``fail_open`` lets it run with
  detection-style logging (availability first) — the two columns of the
  paper's Table I applied to SEPTIC's own failures.
* :class:`RWLock` + :func:`make_lock`/:func:`make_rlock` — the locking
  toolkit for the whole package.  Table-granular reader–writer locks let
  SELECT-heavy traffic overlap while writers stay exclusive; the factory
  helpers are the only sanctioned way for modules outside the engine to
  construct plain mutexes (enforced by a lint gate), so every lock in
  the system is auditable from one place.
"""

import threading


def make_lock():
    """A plain mutex.  All modules outside ``engine.py``/``store.py``
    must construct their locks through this factory (or
    :func:`make_rlock`) so the lint gate can prove no ad-hoc locking
    grows outside the audited hierarchy."""
    return threading.Lock()


def make_rlock():
    """A reentrant mutex, same contract as :func:`make_lock`."""
    return threading.RLock()


class RWLock(object):
    """A writer-preference reader–writer lock.

    Readers share; a writer is exclusive.  A waiting writer blocks *new*
    readers (writer preference), so a stream of SELECTs cannot starve an
    UPDATE indefinitely.  Not reentrant in either mode — the engine's
    lock plans acquire each resource at most once per statement, in a
    global order, which is what makes deadlock freedom provable.

    Counters (``read_acquires``/``write_acquires``/``contended``) are
    exact and cheap; the BenchLab contention model and the lock tests
    read them to verify that shared mode really overlaps.
    """

    __slots__ = ("_mutex", "_readers_done", "_writers_done", "_readers",
                 "_writer", "_writers_waiting", "read_acquires",
                 "write_acquires", "contended")

    def __init__(self):
        self._mutex = threading.Lock()
        self._readers_done = threading.Condition(self._mutex)
        self._writers_done = self._readers_done  # one wait-set is enough
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self.read_acquires = 0
        self.write_acquires = 0
        self.contended = 0

    def acquire_read(self):
        with self._mutex:
            if self._writer or self._writers_waiting:
                self.contended += 1
            while self._writer or self._writers_waiting:
                self._readers_done.wait()
            self._readers += 1
            self.read_acquires += 1

    def release_read(self):
        with self._mutex:
            self._readers -= 1
            if self._readers == 0:
                self._readers_done.notify_all()

    def acquire_write(self):
        with self._mutex:
            if self._writer or self._readers:
                self.contended += 1
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._writers_done.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
            self.write_acquires += 1

    def release_write(self):
        with self._mutex:
            self._writer = False
            self._readers_done.notify_all()

    def acquire(self, shared):
        """Acquire in the given mode (``shared=True`` → read)."""
        if shared:
            self.acquire_read()
        else:
            self.acquire_write()

    def release(self, shared):
        if shared:
            self.release_read()
        else:
            self.release_write()

    def state_dict(self):
        with self._mutex:
            return {
                "readers": self._readers,
                "writer": self._writer,
                "writers_waiting": self._writers_waiting,
                "read_acquires": self.read_acquires,
                "write_acquires": self.write_acquires,
                "contended": self.contended,
            }


class WatchdogTimeout(Exception):
    """The per-query watchdog budget was exhausted.

    Deliberately *not* an :class:`repro.sqldb.errors.SQLError`: it is an
    internal signal for the containment boundary, never shown raw to a
    client.
    """


class VirtualClock(object):
    """A thread-local virtual clock, in seconds.

    Real wall time never moves it; only explicit :meth:`advance` calls
    do (hang faults, or plugins charging their own cost).  Per-thread so
    a hang injected into one session can never trip another session's
    watchdog — keeps chaos tests deterministic under concurrency.
    """

    def __init__(self):
        self._local = threading.local()

    def now(self):
        return getattr(self._local, "seconds", 0.0)

    def advance(self, seconds):
        self._local.seconds = self.now() + seconds


#: the clock every SEPTIC watchdog measures against (and hang faults charge)
HOOK_CLOCK = VirtualClock()


class Watchdog(object):
    """A per-query deadline on the virtual clock."""

    __slots__ = ("deadline", "clock", "budget")

    def __init__(self, budget, clock=None):
        self.clock = clock if clock is not None else HOOK_CLOCK
        self.budget = budget
        self.deadline = self.clock.now() + budget

    def check(self):
        """Raise :class:`WatchdogTimeout` when the budget is exceeded."""
        if self.clock.now() > self.deadline:
            raise WatchdogTimeout(
                "SEPTIC hook exceeded its %.3fs budget" % self.budget
            )


class FailPolicy(object):
    """What a contained internal SEPTIC fault does to the query."""

    #: drop the query (security over availability)
    CLOSED = "fail_closed"
    #: let the query run, detection-style (availability over security)
    OPEN = "fail_open"

    ALL = (CLOSED, OPEN)


class BreakerState(object):
    """Circuit breaker states."""

    CLOSED = "CLOSED"
    OPEN = "OPEN"
    HALF_OPEN = "HALF_OPEN"


class CircuitBreaker(object):
    """Trips PREVENTION down to DETECTION after repeated internal faults.

    State machine::

        CLOSED --threshold consecutive faults--> OPEN
        OPEN   --cooldown fault-free queries---> HALF_OPEN
        HALF_OPEN --clean query--> CLOSED   (reset)
        HALF_OPEN --fault-------> OPEN      (re-trip)

    All transitions happen under one lock so concurrent sessions observe
    exactly one trip per incident (the counters are exact, which the
    concurrency tests assert).  ``threshold=None`` disables tripping
    entirely.
    """

    def __init__(self, threshold=3, cooldown=8):
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = BreakerState.CLOSED
        self.trips = 0
        self.resets = 0
        self._consecutive = 0
        self._cooldown_left = 0
        self._lock = threading.Lock()

    @property
    def is_open(self):
        return self.state == BreakerState.OPEN

    def on_query(self):
        """Called once per processed query; walks OPEN toward HALF_OPEN.

        Returns ``True`` when this call transitioned the breaker to
        HALF_OPEN.
        """
        with self._lock:
            if self.state != BreakerState.OPEN:
                return False
            self._cooldown_left -= 1
            if self._cooldown_left > 0:
                return False
            self.state = BreakerState.HALF_OPEN
            return True

    def record_fault(self):
        """One internal fault; returns ``True`` when it tripped the
        breaker (CLOSED/HALF_OPEN → OPEN)."""
        with self._lock:
            self._consecutive += 1
            if self.state == BreakerState.OPEN:
                # already open: extend the cooldown, no new trip
                self._cooldown_left = self.cooldown
                return False
            if self.threshold is None:
                return False
            if (self.state == BreakerState.HALF_OPEN
                    or self._consecutive >= self.threshold):
                self.state = BreakerState.OPEN
                self._cooldown_left = self.cooldown
                self._consecutive = 0
                self.trips += 1
                return True
            return False

    def record_success(self):
        """One fault-free query; returns ``True`` when it closed (reset)
        the breaker out of HALF_OPEN."""
        with self._lock:
            self._consecutive = 0
            if self.state != BreakerState.HALF_OPEN:
                return False
            self.state = BreakerState.CLOSED
            self.resets += 1
            return True

    def state_dict(self):
        """Snapshot for ``Septic.status()`` and the tests."""
        with self._lock:
            return {
                "state": self.state,
                "threshold": self.threshold,
                "cooldown": self.cooldown,
                "cooldown_left": self._cooldown_left,
                "consecutive_faults": self._consecutive,
                "trips": self.trips,
                "resets": self.resets,
            }

    def __repr__(self):
        return "CircuitBreaker(%s, trips=%d, resets=%d)" % (
            self.state, self.trips, self.resets
        )


class RetryStats(object):
    """Counters for the client connector's transient-retry path.

    One instance hangs off every :class:`repro.sqldb.engine.Database`
    (aggregating across all its connections) and one off each
    :class:`repro.sqldb.connection.Connection`;
    ``Septic.status()`` exports the database-level aggregate alongside
    :class:`repro.core.septic.SepticStats`, so operators see retry
    pressure and detection stats in one place.
    """

    _COUNTERS = ("attempts", "retries", "exhausted", "gave_up")

    __slots__ = _COUNTERS + ("backoff_seconds", "_lock")

    def __init__(self):
        self._lock = make_lock()
        #: queries that hit at least one transient fault
        self.attempts = 0
        #: individual retry attempts issued
        self.retries = 0
        #: retry budgets fully spent (the error went back to the client)
        self.exhausted = 0
        #: transient errors returned without any retry (budget was 0 or
        #: partial results made a retry unsafe)
        self.gave_up = 0
        #: total backoff delay charged, in seconds
        self.backoff_seconds = 0.0

    def bump(self, name, amount=1):
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def add_backoff(self, seconds):
        with self._lock:
            self.backoff_seconds += seconds

    def as_dict(self):
        with self._lock:
            body = {name: getattr(self, name) for name in self._COUNTERS}
            body["backoff_seconds"] = round(self.backoff_seconds, 9)
            return body

    def __repr__(self):
        return "RetryStats(attempts=%d, retries=%d, exhausted=%d)" % (
            self.attempts, self.retries, self.exhausted
        )
