"""Query model (QM) — the learned abstraction of a query's structure.

A QM is the QS with the DATA of every ``<DATA_TYPE, DATA>`` node replaced
by the special value ⊥ (paper §II-C1, Figure 2b).  Element nodes keep both
type and data; data nodes keep only their type.
"""

from repro.sqldb.items import DATA_KINDS, Item
from repro.core.query_structure import QueryStructure


class _Bottom(object):
    """The ⊥ sentinel.  A singleton distinct from every user value."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super(_Bottom, cls).__new__(cls)
        return cls._instance

    def __repr__(self):
        return "⊥"

    def __reduce__(self):
        return (_Bottom, ())


#: The single ⊥ value used in every query model.
BOTTOM = _Bottom()


class QueryModel(object):
    """An ordered sequence of nodes; data payloads abstracted to ⊥."""

    __slots__ = ("nodes",)

    def __init__(self, nodes):
        self.nodes = list(nodes)

    @classmethod
    def from_structure(cls, structure):
        """Build the QM of a QS: replace DATA with ⊥ in all data nodes."""
        nodes = []
        for node in structure:
            if node.kind in DATA_KINDS:
                nodes.append(Item(node.kind, BOTTOM))
            else:
                nodes.append(Item(node.kind, node.value))
        return cls(nodes)

    def __len__(self):
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index):
        return self.nodes[index]

    def __eq__(self, other):
        return isinstance(other, QueryModel) and self.nodes == other.nodes

    def __hash__(self):
        return hash(tuple((n.kind, n.value) for n in self.nodes))

    # -- serialization (the QM learned store persists models) --------------

    def to_dict(self):
        return {
            "nodes": [
                {
                    "kind": node.kind,
                    "value": None if node.value is BOTTOM else node.value,
                    "bottom": node.value is BOTTOM,
                }
                for node in self.nodes
            ]
        }

    @classmethod
    def from_dict(cls, data):
        nodes = []
        for entry in data["nodes"]:
            value = BOTTOM if entry.get("bottom") else entry.get("value")
            nodes.append(Item(entry["kind"], value))
        return cls(nodes)

    def canonical(self):
        """Canonical one-line text form, used for the internal identifier
        hash (see :mod:`repro.core.id_generator`)."""
        parts = []
        for node in self.nodes:
            value = "⊥" if node.value is BOTTOM else str(node.value)
            parts.append("%s=%s" % (node.kind, value))
        return "|".join(parts)

    def render(self):
        """Multi-line rendering, top of stack first (paper figure layout)."""
        lines = []
        for node in reversed(self.nodes):
            value = "⊥" if node.value is BOTTOM else node.value
            lines.append("%-14s %s" % (node.kind, value))
        return "\n".join(lines)

    def __repr__(self):
        return "QueryModel(%d nodes)" % len(self.nodes)
