"""SEPTIC — SElf-Protecting daTabases prevenIng attaCks.

The paper's primary contribution: a mechanism running *inside* the DBMS
(see :class:`repro.sqldb.engine.Database`) that detects and blocks SQL
injection and stored injection attacks by comparing query structures
against learned query models.

Modules mirror Figure 1 of the paper:

* :mod:`repro.core.query_structure` / :mod:`repro.core.query_model` —
  the QS & QM manager's data structures;
* :mod:`repro.core.id_generator` — the ID generator;
* :mod:`repro.core.store` — the "QM learned" store;
* :mod:`repro.core.detector` — the attack detector (two-step SQLI
  algorithm + stored-injection plugins);
* :mod:`repro.core.plugins` — stored injection plugins (XSS, RFI/LFI,
  OSCI, RCE);
* :mod:`repro.core.logger` — the logger / event register;
* :mod:`repro.core.septic` — the facade wiring everything, with the
  operation modes of Table I;
* :mod:`repro.core.training` — the external training module (crawler).
"""

from repro.core.septic import Septic, SepticConfig, Mode
from repro.core.query_structure import QueryStructure
from repro.core.query_model import QueryModel, BOTTOM
from repro.core.id_generator import IdGenerator, QueryId
from repro.core.store import QMStore
from repro.core.manager import QSQMManager, LookupResult
from repro.core.detector import AttackDetector, Detection, AttackType
from repro.core.logger import SepticLogger, EventRecord, EventKind
from repro.core.training import SepticTrainer, TrainingReport

__all__ = [
    "SepticTrainer",
    "TrainingReport",
    "QSQMManager",
    "LookupResult",
    "Septic",
    "SepticConfig",
    "Mode",
    "QueryStructure",
    "QueryModel",
    "BOTTOM",
    "IdGenerator",
    "QueryId",
    "QMStore",
    "AttackDetector",
    "Detection",
    "AttackType",
    "SepticLogger",
    "EventRecord",
    "EventKind",
]
