"""The attack detector module (paper §II-C3).

Two kinds of discovery:

* **SQLI detection** — compares the query structure (QS) with the learned
  query model (QM) in two steps: (1) *structural* verification — equal
  node counts; (2) *syntactical* verification — node-by-node element
  equality.  Step 2 only runs when step 1 passes.  An attack is flagged
  when either step fails; the logger records which step found it.
* **Stored injection detection** — for INSERT and UPDATE commands, the
  user-input data nodes are run through the plugin pipeline
  (:mod:`repro.core.plugins`): a lightweight character filter first, a
  precise validation second.
"""

from repro import faults as faults_mod
from repro.core.query_model import BOTTOM
from repro.core.plugins import default_plugins


class AttackType(object):
    """Labels recorded with each detection."""

    SQLI = "SQLI"
    STORED = "STORED_INJECTION"


class Detection(object):
    """The outcome of running the detector on one query."""

    __slots__ = ("is_attack", "attack_type", "step", "detail", "plugin")

    def __init__(self, is_attack, attack_type=None, step=None, detail=None,
                 plugin=None):
        self.is_attack = is_attack
        #: :class:`AttackType` label (or the plugin's specific type)
        self.attack_type = attack_type
        #: 1 = structural, 2 = syntactical (SQLI only)
        self.step = step
        #: human-readable mismatch description
        self.detail = detail
        #: plugin name (stored injection only)
        self.plugin = plugin

    @property
    def kind_label(self):
        """``structural`` / ``syntactical`` for SQLI, plugin name otherwise
        (the demo's event display logs this)."""
        if self.attack_type == AttackType.SQLI:
            return "structural" if self.step == 1 else "syntactical"
        return self.plugin or "-"

    def __bool__(self):
        return self.is_attack

    def __repr__(self):
        if not self.is_attack:
            return "Detection(benign)"
        return "Detection(%s, step=%s, %s)" % (
            self.attack_type, self.step, self.detail
        )


BENIGN = Detection(False)


class AttackDetector(object):
    """Runs the SQLI comparison algorithm and the stored-injection plugins."""

    def __init__(self, plugins=None):
        self.plugins = default_plugins() if plugins is None else list(plugins)

    # -- SQLI ----------------------------------------------------------------

    def detect_sqli(self, structure, model):
        """Compare *structure* (QS) against *model* (QM).

        Returns a :class:`Detection`; ``step`` reports whether the
        structural (1) or syntactical (2) verification failed.
        """
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("detector.run")
        if len(structure) != len(model):
            return Detection(
                True,
                AttackType.SQLI,
                step=1,
                detail="node count %d != model %d"
                % (len(structure), len(model)),
            )
        for index, (qs_node, qm_node) in enumerate(zip(structure, model)):
            if qs_node.kind != qm_node.kind:
                return Detection(
                    True,
                    AttackType.SQLI,
                    step=2,
                    detail="node %d: <%s, %s> does not match model <%s, %s>"
                    % (
                        index,
                        qs_node.kind,
                        qs_node.value,
                        qm_node.kind,
                        "⊥" if qm_node.value is BOTTOM else qm_node.value,
                    ),
                )
            if qm_node.value is not BOTTOM and \
                    qs_node.value != qm_node.value:
                return Detection(
                    True,
                    AttackType.SQLI,
                    step=2,
                    detail="node %d: element %r does not match model %r"
                    % (index, qs_node.value, qm_node.value),
                )
        return BENIGN

    def matches_any(self, structure, models):
        """``True`` when *structure* matches at least one of *models*
        (call sites may legitimately produce several query shapes)."""
        return any(
            not self.detect_sqli(structure, model) for model in models
        )

    # -- stored injection ------------------------------------------------------

    def detect_stored(self, structure, checkpoint=None):
        """Run the plugins over the user inputs of an INSERT/UPDATE.

        User inputs are the string payloads of the structure's data nodes
        (paper: "check if the user inputs provided to INSERT and UPDATE
        commands are erroneous").  *checkpoint*, when given, is called
        before each plugin run — the SEPTIC watchdog aborts runaway
        plugin work through it.
        """
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("detector.run")
        if structure.command() not in ("INSERT", "UPDATE"):
            return BENIGN
        for node in structure.data_nodes():
            if not isinstance(node.value, str):
                continue
            for plugin in self.plugins:
                if checkpoint is not None:
                    checkpoint()
                if faults_mod.ACTIVE is not None:
                    faults_mod.fire("plugin." + plugin.name)
                if plugin.inspect(node.value):
                    return Detection(
                        True,
                        plugin.attack_type,
                        detail="input %r flagged by %s"
                        % (_truncate(node.value), plugin.name),
                        plugin=plugin.name,
                    )
        return BENIGN


def _truncate(text, limit=80):
    return text if len(text) <= limit else text[: limit - 1] + "…"
