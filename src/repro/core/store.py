"""The "QM learned" store (paper Figure 1).

Maps full query IDs to query models, with a secondary index by external
identifier so that a structurally-mutated query (whose internal hash no
longer matches anything) can still be confronted with the models learned
for its call site.  Models live in memory and can be persisted to a JSON
file — the demo restarts MySQL between training and normal mode and the
"persistent query models are loaded" (paper §IV-D).
"""

import json
import os
import threading

from repro.core.query_model import QueryModel


class QMStore(object):
    """In-memory store of learned query models with JSON persistence.

    Thread-safe: one store serves every session of a database instance,
    and :meth:`put` must decide "new model?" atomically so concurrent
    learners of the same query count exactly one creation.
    """

    def __init__(self, path=None):
        #: full ID value -> QueryModel
        self._models = {}
        #: external identifier -> list of full ID values
        self._by_external = {}
        #: optional persistence file
        self._path = path
        self._lock = threading.RLock()

    def __len__(self):
        return len(self._models)

    def __contains__(self, query_id):
        return query_id.value in self._models

    def get(self, query_id):
        """The model stored under the full ID, or ``None``."""
        return self._models.get(query_id.value)

    def models_for_external(self, external):
        """All models learned for an external identifier (call site)."""
        if external is None:
            return []
        with self._lock:
            return [
                self._models[full]
                for full in self._by_external.get(external, [])
            ]

    def put(self, query_id, model):
        """Store *model* under *query_id*.

        Returns ``True`` when a new model was added, ``False`` when a model
        with this ID already existed (the demo shows a query processed
        twice creates its model only once).
        """
        with self._lock:
            if query_id.value in self._models:
                return False
            self._models[query_id.value] = model
            if query_id.external is not None:
                self._by_external.setdefault(query_id.external, []).append(
                    query_id.value
                )
            return True

    def clear(self):
        with self._lock:
            self._models.clear()
            self._by_external.clear()

    def ids(self):
        with self._lock:
            return sorted(self._models)

    # -- persistence -------------------------------------------------------

    def save(self, path=None):
        """Persist all models as JSON; returns the path written."""
        target = path or self._path
        if target is None:
            raise ValueError("no persistence path configured")
        with self._lock:
            payload = {
                "models": {
                    full: model.to_dict()
                    for full, model in self._models.items()
                },
                "externals": {
                    ext: list(fulls)
                    for ext, fulls in self._by_external.items()
                },
            }
        tmp = target + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        os.replace(tmp, target)
        return target

    def load(self, path=None):
        """Load models from JSON, replacing the in-memory contents.

        Missing file is not an error (first boot has nothing to load);
        returns the number of models loaded.
        """
        source = path or self._path
        if source is None:
            raise ValueError("no persistence path configured")
        if not os.path.exists(source):
            return 0
        with open(source) as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise ValueError(
                    "QM store file %r is corrupted: %s" % (source, exc)
                )
        try:
            models = {
                full: QueryModel.from_dict(data)
                for full, data in payload["models"].items()
            }
            externals = {
                ext: list(fulls)
                for ext, fulls in payload["externals"].items()
            }
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(
                "QM store file %r has an unexpected layout: %s"
                % (source, exc)
            )
        with self._lock:
            self._models = models
            self._by_external = externals
            return len(self._models)
