"""The "QM learned" store (paper Figure 1), with integrity and recovery.

Maps full query IDs to query models, with a secondary index by external
identifier so that a structurally-mutated query (whose internal hash no
longer matches anything) can still be confronted with the models learned
for its call site.  Models live in memory and can be persisted to a JSON
file — the demo restarts MySQL between training and normal mode and the
"persistent query models are loaded" (paper §IV-D).

A corrupted QM is worse than a missing one: SEPTIC would *silently
mis-classify* — flagging legitimate queries as attacks (a corrupted node
no longer matches) or, worse, letting attacks match a mangled model.
The store therefore keeps, per entry:

* a fast in-memory **fingerprint** (``hash()`` over the node tuples),
  verified on access when :attr:`paranoid` is set or a fault plan is
  armed (chaos runs always verify);
* an append-only **journal** of pristine serialized models with CRC32
  checksums, from which a corrupted or partially-written entry is
  rebuilt (:meth:`_recover`) instead of being served;
* CRC32 **checksums in the persistence file**, so a bit-rotted JSON
  store is detected at load time and the damaged entries are dropped,
  not trusted.

``verify_integrity()`` sweeps the whole store on demand;
``snapshot()``/``restore()`` give O(1) whole-store recovery points;
``rebuild_from_journal()`` reconstructs everything from the journal.
"""

import json
import os
import threading
import zlib

from repro import faults as faults_mod
from repro.core.query_model import QueryModel


def _crc(model):
    """Stable cross-process checksum of a model (used by journal/file)."""
    return zlib.crc32(model.canonical().encode("utf-8")) & 0xFFFFFFFF


class _ReadView(object):
    """One immutable copy-on-write snapshot of the store's lookup state.

    Readers load ``store._reads`` once (a single atomic reference read)
    and then see a mutually-consistent ``models``/``by_external``/
    ``fingerprints`` trio, no matter how many writers swap new views in
    underneath.  Views are never mutated after publication — writers
    build a fresh one under the store lock and assign it in one step.
    """

    __slots__ = ("models", "by_external", "fingerprints")

    def __init__(self, models, by_external, fingerprints):
        self.models = models
        self.by_external = by_external
        self.fingerprints = fingerprints


_EMPTY_VIEW = _ReadView({}, {}, {})


class QMStore(object):
    """In-memory store of learned query models with JSON persistence.

    Thread-safe: one store serves every session of a database instance,
    and :meth:`put` must decide "new model?" atomically so concurrent
    learners of the same query count exactly one creation.
    """

    def __init__(self, path=None, paranoid=False, on_recover=None,
                 lsn_provider=None, autosave=False):
        #: full ID value -> QueryModel
        self._models = {}
        #: external identifier -> list of full ID values
        self._by_external = {}
        #: full ID value -> in-memory fingerprint of the pristine model
        self._fingerprints = {}
        #: append-only log of (full, external, model_dict, crc32)
        self._journal = []
        #: optional persistence file
        self._path = path
        #: verify fingerprints on *every* get (otherwise only while a
        #: fault plan is armed, and on explicit verify_integrity sweeps)
        self.paranoid = paranoid
        #: callback(full_id) invoked after an entry is rebuilt (SEPTIC
        #: wires its logger/stats here)
        self.on_recover = on_recover
        #: corrupted entries detected (served-recovered or dropped)
        self.corruption_detected = 0
        #: entries successfully rebuilt from the journal
        self.recoveries = 0
        #: persisted entries rejected by the load-time checksum
        self.load_rejected = 0
        #: callback() → current WAL LSN; when set, every save stamps the
        #: payload with it so a restarted server knows which data-plane
        #: state its models were trained against
        self.lsn_provider = lsn_provider
        #: persist on every new model (kill-at-any-point durability for
        #: trained models; requires ``path``)
        self.autosave = autosave
        #: the WAL watermark read back by the last load (0 = none)
        self.wal_lsn = 0
        self._lock = threading.RLock()
        #: the published immutable read view; swapped (never mutated)
        #: by every completed write, so the SEPTIC hot read path needs
        #: no lock at all
        self._reads = _EMPTY_VIEW
        #: read views published so far (testability/observability)
        self.snapshot_swaps = 0

    def _publish(self):
        """Swap in a fresh read view (caller holds the lock).

        The copy makes writes O(n) in store size, which is the right
        trade here: models are learned once per distinct query (rare
        after warm-up) while every processed query reads."""
        self._reads = _ReadView(
            dict(self._models),
            {ext: tuple(fulls) for ext, fulls in self._by_external.items()},
            dict(self._fingerprints),
        )
        self.snapshot_swaps += 1

    def __len__(self):
        return len(self._models)

    def __contains__(self, query_id):
        return query_id.value in self._models

    def get(self, query_id):
        """The model stored under the full ID, or ``None``.

        Lock-free: reads one published :class:`_ReadView` reference.
        When integrity verification is active (``paranoid`` or a fault
        plan armed), a fingerprint mismatch triggers journal recovery
        instead of returning the damaged model.
        """
        full = query_id.value
        view = self._reads
        model = view.models.get(full)
        if model is None:
            return None
        verify = self.paranoid
        if faults_mod.ACTIVE is not None:
            model = faults_mod.fire("store.get", model,
                                    faults_mod.corrupt_model)
            verify = True
        if verify:
            fingerprint = view.fingerprints.get(full)
            if fingerprint is not None and _fingerprint(model) != fingerprint:
                model = self._recover(full)
        return model

    def models_for_external(self, external):
        """All models learned for an external identifier (call site).

        Lock-free: a single read view gives a consistent pairing of the
        external index and the model table."""
        if external is None:
            return []
        view = self._reads
        models = [
            view.models.get(full)
            for full in view.by_external.get(external, ())
        ]
        # recovery may have dropped unrecoverable entries; skip them
        return [model for model in models if model is not None]

    def put(self, query_id, model):
        """Store *model* under *query_id*.

        Returns ``True`` when a new model was added, ``False`` when a model
        with this ID already existed (the demo shows a query processed
        twice creates its model only once).  The pristine model is
        journaled before anything can corrupt it, so a fault between
        journal and table is recoverable.
        """
        full = query_id.value
        with self._lock:
            if full in self._models:
                return False
            fingerprint = _fingerprint(model)
            pristine = model.to_dict()
            checksum = _crc(model)
            if faults_mod.ACTIVE is not None:
                # may raise (raise/flaky) — nothing stored, nothing
                # journaled — or corrupt the model in place, which the
                # fingerprint (taken above) will catch on access
                model = faults_mod.fire("store.put", model,
                                        faults_mod.corrupt_model)
            self._journal.append((full, query_id.external, pristine,
                                  checksum))
            self._models[full] = model
            self._fingerprints[full] = fingerprint
            if query_id.external is not None:
                self._by_external.setdefault(query_id.external, []).append(
                    full
                )
            self._publish()
            if self.autosave and self._path is not None:
                self.save()
            return True

    def clear(self):
        with self._lock:
            self._models.clear()
            self._by_external.clear()
            self._fingerprints.clear()
            del self._journal[:]
            self._publish()

    def ids(self):
        return sorted(self._reads.models)

    # -- integrity & recovery ----------------------------------------------

    def _recover(self, full):
        """Rebuild the entry *full* from the newest valid journal record;
        drop it entirely when no valid record exists (an unknown query is
        safer than a corrupted model).  Returns the recovered model or
        ``None``."""
        with self._lock:
            self.corruption_detected += 1
            for entry in reversed(self._journal):
                record_full, _external, model_dict, checksum = entry
                if record_full != full:
                    continue
                model = QueryModel.from_dict(model_dict)
                if _crc(model) != checksum:
                    continue  # the journal record itself is damaged
                self._models[full] = model
                self._fingerprints[full] = _fingerprint(model)
                self.recoveries += 1
                callback = self.on_recover
                self._publish()
                break
            else:
                # unrecoverable: forget the entry (and its external index)
                self._models.pop(full, None)
                self._fingerprints.pop(full, None)
                for fulls in self._by_external.values():
                    if full in fulls:
                        fulls.remove(full)
                self._publish()
                return None
        if callback is not None:
            callback(full)
        return model

    def verify_integrity(self):
        """Sweep every entry; recover (or drop) corrupted ones.

        Returns the list of full IDs that failed verification.
        """
        with self._lock:
            damaged = [
                full
                for full, model in self._models.items()
                if _fingerprint(model) != self._fingerprints.get(full)
            ]
        for full in damaged:
            self._recover(full)
        return damaged

    def integrity_stats(self):
        with self._lock:
            return {
                "models": len(self._models),
                "journal_records": len(self._journal),
                "corruption_detected": self.corruption_detected,
                "recoveries": self.recoveries,
                "load_rejected": self.load_rejected,
            }

    def snapshot(self):
        """A self-contained recovery point (same layout as :meth:`save`)."""
        with self._lock:
            return self._payload()

    def restore(self, snapshot):
        """Replace the contents from a :meth:`snapshot` payload; entries
        failing their checksum are dropped.  Returns models restored."""
        return self._install(snapshot, source="<snapshot>")

    def rebuild_from_journal(self):
        """Reconstruct the whole store from the journal (first write per
        ID wins, matching :meth:`put` semantics).  Returns models kept."""
        with self._lock:
            journal = list(self._journal)
            self._models.clear()
            self._by_external.clear()
            self._fingerprints.clear()
            for full, external, model_dict, checksum in journal:
                if full in self._models:
                    continue
                model = QueryModel.from_dict(model_dict)
                if _crc(model) != checksum:
                    continue
                self._models[full] = model
                self._fingerprints[full] = _fingerprint(model)
                if external is not None:
                    self._by_external.setdefault(external, []).append(full)
            self._publish()
            return len(self._models)

    # -- persistence -------------------------------------------------------

    def _payload(self):
        """The serialized store (caller holds the lock)."""
        payload = {
            "models": {
                full: model.to_dict()
                for full, model in self._models.items()
            },
            "externals": {
                ext: list(fulls)
                for ext, fulls in self._by_external.items()
            },
            "checksums": {
                full: _crc(model)
                for full, model in self._models.items()
            },
        }
        if self.lsn_provider is not None:
            payload["wal_lsn"] = self.lsn_provider()
        return payload

    def save(self, path=None):
        """Persist all models as JSON; returns the path written."""
        target = path or self._path
        if target is None:
            raise ValueError("no persistence path configured")
        with self._lock:
            payload = self._payload()
        tmp = target + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        return target

    def load(self, path=None):
        """Load models from JSON, replacing the in-memory contents.

        Missing file is not an error (first boot has nothing to load);
        returns the number of models loaded.  Entries whose persisted
        checksum no longer matches are dropped and counted in
        :attr:`load_rejected` — a bit-rotted model must not be trusted.
        """
        source = path or self._path
        if source is None:
            raise ValueError("no persistence path configured")
        if not os.path.exists(source):
            return 0
        with open(source) as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise ValueError(
                    "QM store file %r is corrupted: %s" % (source, exc)
                )
        return self._install(payload, source=source)

    def _install(self, payload, source):
        """Validate *payload* and swap it in (shared by load/restore)."""
        try:
            models = {
                full: QueryModel.from_dict(data)
                for full, data in payload["models"].items()
            }
            externals = {
                ext: list(fulls)
                for ext, fulls in payload["externals"].items()
            }
            checksums = payload.get("checksums", {})
        except (KeyError, TypeError, AttributeError) as exc:
            raise ValueError(
                "QM store file %r has an unexpected layout: %s"
                % (source, exc)
            )
        rejected = [
            full for full, model in models.items()
            if full in checksums and _crc(model) != checksums[full]
        ]
        for full in rejected:
            del models[full]
        with self._lock:
            self.wal_lsn = payload.get("wal_lsn", 0)
            self._models = models
            self._by_external = {
                ext: [full for full in fulls if full in models]
                for ext, fulls in externals.items()
            }
            self._fingerprints = {
                full: _fingerprint(model)
                for full, model in models.items()
            }
            # re-seed the journal so recovery works for loaded models too
            self._journal = [
                (full, None, model.to_dict(), _crc(model))
                for full, model in models.items()
            ]
            self.load_rejected += len(rejected)
            self._publish()
            return len(self._models)


def _fingerprint(model):
    """Fast in-process integrity fingerprint (hash over node tuples)."""
    return hash(tuple((node.kind, node.value) for node in model.nodes))
