"""The QS&QM manager module (paper Figure 1, §II-C1).

The manager owns the query-structure/query-model lifecycle:

* receive the validated item stack from the DBMS and build the QS;
* derive the QM and (with the ID generator) the query ID;
* look the learned QM up in the store, or create and store a new one.

:class:`repro.core.septic.Septic` wires this manager to the attack
detector and the logger, per the figure's data flow.
"""

from repro.core.id_generator import IdGenerator
from repro.core.query_model import QueryModel
from repro.core.query_structure import QueryStructure
from repro.core.store import QMStore


class LookupResult(object):
    """What the manager hands to the detection stage for one query."""

    __slots__ = ("structure", "model_of_query", "query_id", "model",
                 "candidates")

    def __init__(self, structure, model_of_query, query_id, model,
                 candidates):
        #: the QS built from the DBMS stack
        self.structure = structure
        #: the QM derived from this query's own structure
        self.model_of_query = model_of_query
        #: the composed query ID
        self.query_id = query_id
        #: the learned QM under the exact ID (None when unknown)
        self.model = model
        #: learned QMs sharing the external identifier (call site) —
        #: consulted when the exact ID misses
        self.candidates = candidates

    @property
    def known(self):
        return self.model is not None

    def __repr__(self):
        return "LookupResult(id=%s, known=%s, candidates=%d)" % (
            self.query_id.value, self.known, len(self.candidates)
        )


class QSQMManager(object):
    """Builds structures/models and talks to the learned store."""

    def __init__(self, store=None, id_generator=None):
        self.store = store if store is not None else QMStore()
        self.id_generator = (
            id_generator if id_generator is not None else IdGenerator()
        )

    def receive(self, context, checkpoint=None):
        """Process one validated query: build QS/QM, compose the ID, and
        perform the store lookup.  Returns a :class:`LookupResult`.

        When the engine hands over a pipeline-cache memo
        (``context.memo``), the QS build, QM abstraction and ID
        composition are served from (or written back to) that memo, so a
        cache-hot query's hook cost collapses to the store lookup.  All
        three products are pure functions of the cached stack+comments;
        ``query_id`` is published last so a concurrently-read memo is
        either complete or ignored.

        *checkpoint*, when given, is the SEPTIC watchdog's deadline
        check — called after derivation and after the store lookup so a
        hang in either stage is caught here.
        """
        memo = getattr(context, "memo", None)
        if memo is not None and memo.ready:
            structure = memo.structure
            model_of_query = memo.model_of_query
            query_id = memo.query_id
        else:
            structure = QueryStructure.from_stack(context.stack)
            model_of_query = QueryModel.from_structure(structure)
            query_id = self.id_generator.generate(
                context.comments, model_of_query
            )
            if memo is not None:
                memo.structure = structure
                memo.model_of_query = model_of_query
                memo.query_id = query_id
        if checkpoint is not None:
            checkpoint()
        model = self.store.get(query_id)
        candidates = []
        if model is None:
            candidates = self.store.models_for_external(query_id.external)
        if checkpoint is not None:
            checkpoint()
        return LookupResult(structure, model_of_query, query_id, model,
                            candidates)

    def learn(self, lookup):
        """Store the query's model under its ID.

        Returns ``True`` when a new model was created (the demo shows a
        repeated query creates its model only once).
        """
        return self.store.put(lookup.query_id, lookup.model_of_query)
