"""Query structure (QS) — SEPTIC's view of one validated query.

MySQL keeps the validated query's elements in a stack; the QS&QM manager
copies that stack into its own structure whose nodes have the form
``<ELEM_TYPE, ELEM_DATA>`` or ``<DATA_TYPE, DATA>`` (paper §II-C1,
Figure 2a).
"""

from repro.sqldb.items import DATA_KINDS, Item


class QueryStructure(object):
    """An ordered sequence of item nodes (bottom of stack first)."""

    __slots__ = ("nodes",)

    def __init__(self, nodes):
        self.nodes = list(nodes)

    @classmethod
    def from_stack(cls, stack):
        """Copy the DBMS's validated item stack (paper: SEPTIC "receives
        this structure and creates another stack with that data")."""
        return cls(Item(item.kind, item.value) for item in stack)

    def __len__(self):
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def __getitem__(self, index):
        return self.nodes[index]

    def __eq__(self, other):
        return isinstance(other, QueryStructure) and self.nodes == other.nodes

    def __hash__(self):
        return hash(tuple(self.nodes))

    def data_nodes(self):
        """The ``<DATA_TYPE, DATA>`` nodes — where user input can live."""
        return [node for node in self.nodes if node.kind in DATA_KINDS]

    def command(self):
        """The statement kind implied by the bottom-most marker node."""
        if not self.nodes:
            return "UNKNOWN"
        kind = self.nodes[0].kind
        return {
            "FROM_TABLE": "SELECT",
            "SELECT_FIELD": "SELECT",
            "SUBSELECT_ITEM": "SELECT",
            "INSERT_TABLE": "INSERT",
            "REPLACE_TABLE": "INSERT",   # REPLACE INTO writes like INSERT
            "UPDATE_TABLE": "UPDATE",
            "DELETE_TABLE": "DELETE",
        }.get(kind, "SELECT")

    def tables(self):
        """Names of tables referenced by table-marker nodes, in order."""
        table_kinds = ("FROM_TABLE", "INSERT_TABLE", "REPLACE_TABLE",
                       "UPDATE_TABLE", "DELETE_TABLE")
        return [n.value for n in self.nodes if n.kind in table_kinds]

    def render(self):
        """Multi-line textual rendering, top of stack first (the layout of
        the paper's figures)."""
        lines = []
        for node in reversed(self.nodes):
            lines.append("%-14s %s" % (node.kind, node.value))
        return "\n".join(lines)

    def __repr__(self):
        return "QueryStructure(%d nodes)" % len(self.nodes)
