"""Email header injection plugin — an *extension* beyond the paper.

The paper ships plugins for XSS, RFI, LFI, OSCI and RCE and presents the
plugin pipeline as extensible ("plugins that are executed on the fly to
deal with specific attacks").  This module demonstrates that
extensibility with a sixth class: stored data that, when later embedded
in an outgoing email (contact forms, notifications), smuggles extra
headers or a second body through CR/LF sequences.

Not part of :func:`repro.core.plugins.default_plugins` — add it
explicitly::

    detector = AttackDetector(plugins=default_plugins()
                              + [EmailHeaderInjectionPlugin()])
"""

import re

from repro.core.plugins.base import StoredInjectionPlugin

_STEP1_RE = re.compile(r"[\r\n]|%0d|%0a", re.IGNORECASE)

_CONFIRM_RE = re.compile(
    r"""
    (?:%0d|%0a|[\r\n])\s*
    (?:
        (?:to|cc|bcc|from|subject|reply-to)\s*:   # injected header
      | content-type\s*:                           # MIME smuggling
      | mime-version\s*:
      | \.\s*(?:%0d|%0a|[\r\n])                    # SMTP end-of-message
    )
    """,
    re.IGNORECASE | re.VERBOSE,
)


class EmailHeaderInjectionPlugin(StoredInjectionPlugin):
    """Detects CR/LF header-injection payloads in stored inputs."""

    attack_type = "STORED_EMAIL_HEADER"

    def suspicious(self, text):
        return bool(_STEP1_RE.search(text))

    def confirm(self, text):
        return bool(_CONFIRM_RE.search(text))
