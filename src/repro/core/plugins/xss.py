"""Stored XSS plugin.

Step 1 looks for the characters the paper names (``<`` and ``>``); step 2
"inserts this input in a web page and calls an HTML parser" — we do
exactly that with :class:`html.parser.HTMLParser`, flagging script
elements, event-handler attributes and ``javascript:`` URIs.
"""

from html.parser import HTMLParser

from repro.core.plugins.base import StoredInjectionPlugin

_DANGEROUS_TAGS = frozenset(
    ["script", "iframe", "object", "embed", "svg", "math", "base", "form",
     "meta", "link", "video", "audio", "details", "marquee", "body", "img"]
)

_URI_ATTRS = frozenset(["href", "src", "action", "formaction", "data"])


class _XSSScanner(HTMLParser):
    """Parses a document and records script-capable constructs."""

    def __init__(self):
        HTMLParser.__init__(self, convert_charrefs=True)
        self.findings = []
        self._in_script = False

    def handle_starttag(self, tag, attrs):
        tag = tag.lower()
        if tag == "script":
            self._in_script = True
            self.findings.append("script element")
        elif tag in _DANGEROUS_TAGS:
            # dangerous only if it carries an active attribute
            pass
        for name, value in attrs:
            name = name.lower()
            if name.startswith("on"):
                self.findings.append("event handler %s" % name)
            elif name in _URI_ATTRS and value:
                uri = value.strip().lower().replace("\t", "").replace("\n", "")
                if uri.startswith("javascript:") or uri.startswith("data:text/html"):
                    self.findings.append("scriptable URI in %s" % name)

    def handle_endtag(self, tag):
        if tag.lower() == "script":
            self._in_script = False

    def handle_data(self, data):
        if self._in_script and data.strip():
            self.findings.append("script body")


class StoredXSSPlugin(StoredInjectionPlugin):
    """Detects persistent cross-site scripting payloads."""

    attack_type = "STORED_XSS"

    def suspicious(self, text):
        return "<" in text or ">" in text

    def confirm(self, text):
        page = "<html><body><p>%s</p></body></html>" % text
        scanner = _XSSScanner()
        try:
            scanner.feed(page)
            scanner.close()
        except Exception:
            # A payload that breaks the parser is itself suspicious.
            return True
        return bool(scanner.findings)

    def explain(self, text):
        """Findings list (used by the demo's event display)."""
        scanner = _XSSScanner()
        scanner.feed("<html><body><p>%s</p></body></html>" % text)
        scanner.close()
        return scanner.findings
