"""Remote code execution plugin (RCE).

Targets payloads that become code when the application later evaluates
stored data: PHP code fragments, ``eval``-family calls and serialized
object (PHP object injection) markers.
"""

import re

from repro.core.plugins.base import StoredInjectionPlugin

_STEP1_RE = re.compile(r"[<(${]|%3c|%28", re.IGNORECASE)

_CONFIRM_RE = re.compile(
    r"""
    (?:
        <\?php\b                               # php open tag
      | <\?=                                    # short echo tag
      | \b(?:eval|assert|system|exec|passthru|shell_exec|popen|
             proc_open|preg_replace|create_function|call_user_func)\s*\(
      | \bbase64_decode\s*\(
      | \bO:\d+:"[^"]+":\d+:{                   # serialized PHP object
      | \$\{?(?:_GET|_POST|_REQUEST|_COOKIE|GLOBALS)\b
      | \{\{.*\}\}                              # template injection
      | __import__\s*\(                         # python eval-family
      | \bos\.system\s*\(
    )
    """,
    re.IGNORECASE | re.VERBOSE,
)


class RCEPlugin(StoredInjectionPlugin):
    """Detects stored payloads that execute as code server-side."""

    attack_type = "STORED_RCE"

    def suspicious(self, text):
        return bool(_STEP1_RE.search(text))

    def confirm(self, text):
        return bool(_CONFIRM_RE.search(text))
