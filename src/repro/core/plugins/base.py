"""Base class for stored-injection plugins."""


class StoredInjectionPlugin(object):
    """One plugin detects one class of stored injection.

    Subclasses set :attr:`attack_type` (the label the logger records) and
    implement :meth:`suspicious` (step 1, cheap filter) and
    :meth:`confirm` (step 2, precise validation).
    """

    #: label recorded by the logger, e.g. ``"STORED_XSS"``
    attack_type = "STORED"

    def suspicious(self, text):
        """Step 1: lightweight check for characters/tokens associated with
        this plugin's attack class.  Must be cheap — it runs on every
        INSERT/UPDATE input."""
        raise NotImplementedError

    def confirm(self, text):
        """Step 2: precise validation, run only when step 1 flagged the
        input.  Returns ``True`` when the attack is confirmed."""
        raise NotImplementedError

    def inspect(self, text):
        """Run the two-step scheme; returns ``True`` on a confirmed attack."""
        return bool(text) and self.suspicious(text) and self.confirm(text)

    @property
    def name(self):
        return type(self).__name__

    def __repr__(self):
        return "%s()" % self.name
