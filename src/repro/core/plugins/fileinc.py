"""Remote and local file inclusion plugins (RFI, LFI)."""

import re

from repro.core.plugins.base import StoredInjectionPlugin

_RFI_URL_RE = re.compile(
    r"(?:https?|ftp|ftps|php|data|expect)\s*:", re.IGNORECASE
)
_RFI_CONFIRM_RE = re.compile(
    r"""
    (?:
        (?:https?|ftp|ftps)://\S+\.(?:php|txt|phtml|php5)\b   # remote script
      | (?:https?|ftp|ftps)://\S+[?&]\S*=                      # remote w/ args
      | data:text/plain;base64,                                # data wrapper
      | php://(?:input|filter|expect)                          # php wrappers
      | expect://                                              # expect wrapper
    )
    """,
    re.IGNORECASE | re.VERBOSE,
)

_LFI_CHARS_RE = re.compile(r"\.\.|/|\\|%2e|%2f|%5c|\x00", re.IGNORECASE)
_LFI_CONFIRM_RE = re.compile(
    r"""
    (?:
        (?:\.\./|\.\.\\){1,}                     # directory traversal
      | (?:%2e%2e(?:%2f|%5c)){1,}                 # encoded traversal
      | /etc/(?:passwd|shadow|hosts|group)\b      # unix secrets
      | /proc/self/environ\b
      | c:[\\/]windows[\\/]                       # windows system path
      | boot\.ini\b
      | \x00                                      # null byte truncation
      | php://filter/\S*resource=
    )
    """,
    re.IGNORECASE | re.VERBOSE,
)


class RFIPlugin(StoredInjectionPlugin):
    """Remote file inclusion: URLs/wrappers pointing at executable code."""

    attack_type = "STORED_RFI"

    def suspicious(self, text):
        return bool(_RFI_URL_RE.search(text))

    def confirm(self, text):
        return bool(_RFI_CONFIRM_RE.search(text))


class LFIPlugin(StoredInjectionPlugin):
    """Local file inclusion: path traversal and sensitive-file targets."""

    attack_type = "STORED_LFI"

    def suspicious(self, text):
        return bool(_LFI_CHARS_RE.search(text))

    def confirm(self, text):
        return bool(_LFI_CONFIRM_RE.search(text))
