"""OS command injection plugin (OSCI)."""

import re

from repro.core.plugins.base import StoredInjectionPlugin

_METACHAR_RE = re.compile(r"[;|&`$\n]|%0a|%3b|%7c|%26", re.IGNORECASE)

_CMDS = (
    "cat|ls|id|whoami|uname|wget|curl|nc|netcat|bash|sh|rm|cp|mv|"
    "ping|chmod|chown|touch|echo|python|perl|php|sleep|mkdir|kill|"
    "powershell|cmd|dir|type|net|ipconfig|ifconfig"
)

#: shell constructs an attacker actually needs for command injection
_CONFIRM_RE = re.compile(
    r"""
    (?:
        \$\((?:[^)]*)\)                     # $() substitution
      | `[^`]+`                             # backtick substitution
      | \|\s*(?:{cmds})\b                   # pipe into a command
      | (?:;|&&|\|\||\n)\s*(?:{cmds})\b     # chained command
    )
    """.format(cmds=_CMDS),
    re.IGNORECASE | re.VERBOSE,
)


class OSCIPlugin(StoredInjectionPlugin):
    """Detects shell metacharacter sequences that chain OS commands."""

    attack_type = "STORED_OSCI"

    def suspicious(self, text):
        return bool(_METACHAR_RE.search(text))

    def confirm(self, text):
        return bool(_CONFIRM_RE.search(text))
