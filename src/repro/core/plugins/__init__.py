"""Stored-injection detection plugins (paper §II-C3, second bullet).

Each plugin implements the two-step scheme the paper describes:

1. ``suspicious(text)`` — a lightweight character/token filter that cheaply
   decides whether the input *could* carry this plugin's attack class;
2. ``confirm(text)`` — a more precise, more expensive validation run only
   when step 1 flags the input.

The default plugin set covers the classes listed in the paper: stored XSS,
remote/local file inclusion (RFI, LFI), OS command injection (OSCI) and
remote code execution (RCE).
"""

from repro.core.plugins.base import StoredInjectionPlugin
from repro.core.plugins.xss import StoredXSSPlugin
from repro.core.plugins.fileinc import RFIPlugin, LFIPlugin
from repro.core.plugins.osci import OSCIPlugin
from repro.core.plugins.rce import RCEPlugin


def default_plugins():
    """The plugin set shipped with SEPTIC (one per attack class)."""
    return [
        StoredXSSPlugin(),
        RFIPlugin(),
        LFIPlugin(),
        OSCIPlugin(),
        RCEPlugin(),
    ]


__all__ = [
    "StoredInjectionPlugin",
    "StoredXSSPlugin",
    "RFIPlugin",
    "LFIPlugin",
    "OSCIPlugin",
    "RCEPlugin",
    "default_plugins",
]
