"""The logger module — SEPTIC's register of events (paper §II-C4).

An attack record contains the query received, the query identifier, its
query model and (for SQLI) the step of the algorithm that found the
problem.  For a newly observed query the logger registers the received
query, the query model and its identifier.  The demo adds a verbose event
register showing every action taken (query model creation, query
processing, attack detection); ``verbose=True`` enables that behaviour.
"""

from repro import faults as faults_mod
from repro.core.resilience import make_lock


class EventKind(object):
    """Event type tags."""

    MODE_CHANGED = "MODE_CHANGED"
    QS_BUILT = "QS_BUILT"
    ID_GENERATED = "ID_GENERATED"
    QM_FOUND = "QM_FOUND"
    QM_CREATED = "QM_CREATED"
    COMPARISON_OK = "COMPARISON_OK"
    ATTACK_DETECTED = "ATTACK_DETECTED"
    QUERY_DROPPED = "QUERY_DROPPED"
    QUERY_EXECUTED = "QUERY_EXECUTED"
    # -- resilience events (the fail-policy engine) ---------------------
    INTERNAL_FAULT = "INTERNAL_FAULT"
    WATCHDOG_TIMEOUT = "WATCHDOG_TIMEOUT"
    BREAKER_TRIPPED = "BREAKER_TRIPPED"
    BREAKER_RESET = "BREAKER_RESET"
    STORE_RECOVERED = "STORE_RECOVERED"
    MODELS_RELOADED = "MODELS_RELOADED"
    # -- plan-layer observability (opt-in, never significant) -----------
    STAGE_TIMING = "STAGE_TIMING"


#: kinds always recorded, even when not verbose (attack evidence and
#: operator-facing resilience incidents)
_SIGNIFICANT = frozenset(
    [EventKind.MODE_CHANGED, EventKind.QM_CREATED,
     EventKind.ATTACK_DETECTED, EventKind.QUERY_DROPPED,
     EventKind.INTERNAL_FAULT, EventKind.WATCHDOG_TIMEOUT,
     EventKind.BREAKER_TRIPPED, EventKind.BREAKER_RESET,
     EventKind.STORE_RECOVERED, EventKind.MODELS_RELOADED]
)


class EventRecord(object):
    """One logged event."""

    __slots__ = ("kind", "query", "query_id", "model", "attack_type",
                 "step", "detail", "sequence")

    def __init__(self, kind, query=None, query_id=None, model=None,
                 attack_type=None, step=None, detail=None, sequence=0):
        self.kind = kind
        self.query = query
        self.query_id = query_id
        self.model = model
        self.attack_type = attack_type
        self.step = step
        self.detail = detail
        self.sequence = sequence

    def format(self):
        """One-line rendering for the demo's SEPTIC events display."""
        parts = ["[%05d] %-16s" % (self.sequence, self.kind)]
        if self.attack_type:
            parts.append("type=%s" % self.attack_type)
        if self.step is not None:
            parts.append(
                "step=%d(%s)"
                % (self.step, "structural" if self.step == 1 else "syntactical")
            )
        if self.query_id is not None:
            parts.append("id=%s" % self.query_id)
        if self.detail:
            parts.append(self.detail)
        if self.query:
            parts.append("query=%r" % _short(self.query))
        return " ".join(parts)

    def __repr__(self):
        return "EventRecord(%s)" % self.format()


class SepticLogger(object):
    """Collects :class:`EventRecord` objects; optionally tees to a sink.

    The register is bounded by ``max_events``, but attack evidence must
    never be the casualty of the bound: when the register is full, an
    incoming *significant* record (attack detected, query dropped, model
    created, mode changed) evicts the oldest non-significant record —
    or, if only significant records remain, the oldest of those — so the
    newest evidence is always retained.  Incoming non-significant
    records are discarded instead.  Every record lost either way is
    counted in :attr:`dropped_events`.

    Thread-safe: one logger serves every session of a database instance.
    """

    def __init__(self, verbose=False, sink=None, max_events=100000):
        self.verbose = verbose
        #: optional callable invoked with each record's formatted line
        self.sink = sink
        self.max_events = max_events
        self.events = []
        #: count of records lost to the max_events bound (evicted or
        #: discarded), exposed so operators can tell the register is lossy
        self.dropped_events = 0
        self._sequence = 0
        self._lock = make_lock()

    def log(self, kind, **fields):
        if faults_mod.ACTIVE is not None:
            faults_mod.fire("logger.record")
        with self._lock:
            self._sequence += 1
            if not self.verbose and kind not in _SIGNIFICANT:
                return None
            record = EventRecord(kind, sequence=self._sequence, **fields)
            if len(self.events) < self.max_events:
                self.events.append(record)
            elif kind in _SIGNIFICANT:
                self._evict_for(record)
            else:
                self.dropped_events += 1
        if self.sink is not None:
            try:
                self.sink(record.format())
            except Exception:
                # a broken display/sink must never break query processing
                self.sink = None
        return record

    def _evict_for(self, record):
        """Make room for a significant *record* in a full register."""
        victim = None
        for index, event in enumerate(self.events):
            if event.kind not in _SIGNIFICANT:
                victim = index
                break
        # no expendable record: sacrifice the oldest significant one so
        # the newest evidence survives
        del self.events[victim if victim is not None else 0]
        self.dropped_events += 1
        self.events.append(record)

    # -- queries over the register ----------------------------------------

    def by_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    @property
    def attacks(self):
        return self.by_kind(EventKind.ATTACK_DETECTED)

    @property
    def new_models(self):
        return self.by_kind(EventKind.QM_CREATED)

    @property
    def drops(self):
        return self.by_kind(EventKind.QUERY_DROPPED)

    def clear(self):
        with self._lock:
            self.events = []
            self.dropped_events = 0

    def export_json(self, path):
        """Dump the event register as JSON (SIEM-style export)."""
        import json

        payload = [
            {
                "sequence": event.sequence,
                "kind": event.kind,
                "query": event.query,
                "query_id": event.query_id,
                "model": (
                    event.model.canonical()
                    if hasattr(event.model, "canonical")
                    else event.model
                ),
                "attack_type": event.attack_type,
                "step": event.step,
                "detail": event.detail,
            }
            for event in self.events
        ]
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)
        return path

    def __len__(self):
        return len(self.events)


def _short(text, limit=100):
    return text if len(text) <= limit else text[: limit - 1] + "…"
