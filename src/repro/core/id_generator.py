"""The ID generator module (paper §II-C2).

A query's ID is the composition of up to two identifiers:

* an **external identifier** — optional, arbitrary programmer/SSLE-defined
  value transported to the server inside a ``/* ... */`` comment
  concatenated with the query.  Our web layer's ``Zend`` shim injects
  call-site identifiers automatically (the paper's "minimal and optional
  support at server-side language engine level");
* an **internal identifier** — mandatory, produced by SEPTIC from the
  query model to ensure uniqueness (an MD5 over the QM canonical form).

The full ID is the concatenation of both, or just the internal identifier
when no external one is present.
"""

import hashlib
import re

#: Comments carrying external identifiers look like ``septic:<value>``;
#: a bare comment is also accepted as an external ID when it matches this
#: conservative token pattern (so seed-script comments don't become IDs).
_EXTERNAL_RE = re.compile(r"^septic:(?P<value>\S+)$")
_BARE_TOKEN_RE = re.compile(r"^[A-Za-z0-9_.:/@-]{1,120}$")


class QueryId(object):
    """The composed query identifier."""

    __slots__ = ("external", "internal")

    def __init__(self, internal, external=None):
        self.internal = internal
        self.external = external

    @property
    def value(self):
        """The full ID (concatenation of both identifiers)."""
        if self.external is not None:
            return "%s§%s" % (self.external, self.internal)
        return self.internal

    def __eq__(self, other):
        return isinstance(other, QueryId) and self.value == other.value

    def __hash__(self):
        return hash(self.value)

    def __repr__(self):
        return "QueryId(%r)" % self.value


class IdGenerator(object):
    """Produces :class:`QueryId` objects for incoming queries."""

    def __init__(self, accept_bare_comments=True):
        #: whether a bare token comment counts as an external identifier
        self.accept_bare_comments = accept_bare_comments

    def external_id(self, comments):
        """Retrieve the external identifier from the query's comments.

        The first comment explicitly marked ``septic:...`` wins; otherwise
        the first bare token comment is used (if enabled).
        """
        fallback = None
        for comment in comments:
            match = _EXTERNAL_RE.match(comment.strip())
            if match:
                return match.group("value")
            if fallback is None and self.accept_bare_comments and \
                    _BARE_TOKEN_RE.match(comment.strip()):
                fallback = comment.strip()
        return fallback

    def internal_id(self, model):
        """Hash the query model's canonical form (uniqueness guarantee)."""
        digest = hashlib.md5(
            model.canonical().encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def generate(self, comments, model):
        """Compose the full query ID for a query with *comments* whose
        (current) query model is *model*."""
        return QueryId(
            internal=self.internal_id(model),
            external=self.external_id(comments),
        )
