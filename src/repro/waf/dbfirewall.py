"""GreenSQL-style SQL proxy / database firewall.

Sits *between* the application and the DBMS (paper §I: "SQL proxies or
database firewalls [...] operating between the application and the
DBMS").  It learns a whitelist of query *fingerprints* — the raw SQL
text with literals normalized away — and, in enforcement mode, blocks
queries whose fingerprint was never learned.

Because it fingerprints the query **before** the DBMS decodes it, a
payload smuggled through a unicode confusable produces *the same
fingerprint as the benign query* (the U+02BC is just another character
inside a string literal to the proxy), so the attack sails through —
the outside-the-DBMS blind spot SEPTIC closes.
"""

import re

from repro.sqldb.errors import SQLError


class FirewallBlocked(SQLError):
    """Raised when the proxy rejects an unknown query fingerprint."""

    errno = 4042


_STRING_RE = re.compile(r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\"")
_NUMBER_RE = re.compile(r"\b\d+(?:\.\d+)?\b")
_COMMENT_RE = re.compile(r"/\*.*?\*/|--[^\n]*|#[^\n]*", re.DOTALL)
_WS_RE = re.compile(r"\s+")


def fingerprint(sql):
    """Normalize *sql* into a literal-free fingerprint.

    The proxy operates on the raw client bytes: string literals become
    ``?`` by scanning for ASCII quotes only — exactly what GreenSQL-era
    pattern learning did, and exactly why DBMS-side decoding defeats it.
    """
    # strings first: comment markers inside a literal are literal content
    text = _STRING_RE.sub("?", sql)
    text = _COMMENT_RE.sub(" ", text)
    text = _NUMBER_RE.sub("?", text)
    text = _WS_RE.sub(" ", text)
    return text.strip().lower()


class DatabaseFirewall(object):
    """Learning whitelist proxy wrapping a connection-like object."""

    MODE_LEARNING = "LEARNING"
    MODE_ENFORCING = "ENFORCING"

    def __init__(self, connection, mode=MODE_LEARNING):
        self._connection = connection
        self.mode = mode
        self.known = set()
        self.blocked_queries = []
        self.queries_seen = 0

    def learn(self, sql):
        self.known.add(fingerprint(sql))

    def query(self, sql):
        """Proxy one query to the backend, enforcing the whitelist."""
        self.queries_seen += 1
        print_ = fingerprint(sql)
        if self.mode == self.MODE_LEARNING:
            self.known.add(print_)
            return self._connection.query(sql)
        if print_ not in self.known:
            self.blocked_queries.append(sql)
            from repro.sqldb.connection import QueryOutcome
            return QueryOutcome(
                error=FirewallBlocked(
                    "query rejected by database firewall "
                    "(unknown fingerprint)"
                )
            )
        return self._connection.query(sql)

    def enforce(self):
        self.mode = self.MODE_ENFORCING

    def __len__(self):
        return len(self.known)

    def __getattr__(self, name):
        # transparent proxy: everything but query() passes through to
        # the real connection (escape_string, last_insert_id, ...)
        return getattr(self._connection, name)
