"""Protection-component baselines the paper compares SEPTIC against.

* :mod:`repro.waf.modsecurity` — a ModSecurity-like WAF scoring requests
  against an OWASP-CRS-style rule set at the HTTP layer;
* :mod:`repro.waf.dbfirewall` — a GreenSQL-like SQL proxy / database
  firewall whitelisting query fingerprints *between* the application and
  the DBMS.

Both live **outside** the DBMS, which is precisely why semantic-mismatch
attacks slip past them: they inspect data before the DBMS decodes it.
"""

from repro.waf.modsecurity import ModSecurity, WafVerdict
from repro.waf.dbfirewall import DatabaseFirewall, FirewallBlocked

__all__ = [
    "ModSecurity",
    "WafVerdict",
    "DatabaseFirewall",
    "FirewallBlocked",
]
