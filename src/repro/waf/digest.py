"""Percona-toolkit-style query digest (the paper's other related work).

§II-B compares SEPTIC's learning with "GreenSQL [5] and Percona Tools
[12]" — pt-query-digest groups a query log by normalized fingerprint and
reports per-class statistics.  :class:`QueryDigest` does the same over
our engine's traffic: attach it to a database (it wraps the SEPTIC hook
chain transparently), and it accumulates per-fingerprint counts and
timings — the workflow an administrator would use to review the queries
SEPTIC flags for incremental-learning approval.
"""

import time

from repro.waf.dbfirewall import fingerprint


class DigestEntry(object):
    """Aggregate statistics for one query class."""

    __slots__ = ("fingerprint", "count", "total_seconds", "first_seen_seq",
                 "samples")

    def __init__(self, fp, sequence):
        self.fingerprint = fp
        self.count = 0
        self.total_seconds = 0.0
        self.first_seen_seq = sequence
        #: a few raw examples (most recent kept)
        self.samples = []

    @property
    def avg_seconds(self):
        return self.total_seconds / self.count if self.count else 0.0

    def record(self, sql, seconds):
        self.count += 1
        self.total_seconds += seconds
        self.samples.append(sql)
        if len(self.samples) > 3:
            self.samples.pop(0)

    def __repr__(self):
        return "DigestEntry(%r, n=%d)" % (self.fingerprint[:40], self.count)


class QueryDigest(object):
    """Collects query-class statistics from a live database.

    Wraps the database's existing SEPTIC hook (if any): the digest
    observes, then delegates — so it composes with SEPTIC instead of
    replacing it.
    """

    def __init__(self, database=None):
        self._entries = {}
        self._sequence = 0
        self._inner = None
        if database is not None:
            self.attach(database)

    def attach(self, database):
        """Interpose on *database*'s hook chain."""
        self._inner = database.septic
        database.septic = self
        return self

    # -- hook interface -----------------------------------------------------

    def process_query(self, context):
        self._sequence += 1
        fp = fingerprint(context.sql)
        entry = self._entries.get(fp)
        if entry is None:
            entry = DigestEntry(fp, self._sequence)
            self._entries[fp] = entry
        start = time.perf_counter()
        try:
            if self._inner is not None:
                self._inner.process_query(context)
        finally:
            entry.record(context.sql, time.perf_counter() - start)

    # -- reporting -------------------------------------------------------------

    def __len__(self):
        return len(self._entries)

    def entries(self):
        """Entries ordered by count (descending), pt-query-digest style."""
        return sorted(
            self._entries.values(),
            key=lambda e: (-e.count, e.first_seen_seq),
        )

    def report(self, top=10):
        """Text report of the top query classes."""
        lines = ["# rank  count  avg(hook)  fingerprint"]
        for rank, entry in enumerate(self.entries()[:top], start=1):
            lines.append(
                "# %4d  %5d  %7.1fµs  %s"
                % (rank, entry.count, entry.avg_seconds * 1e6,
                   entry.fingerprint[:70])
            )
        return "\n".join(lines)
