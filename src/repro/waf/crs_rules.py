"""OWASP CRS 3.0-style rule set for the ModSecurity baseline.

Each rule is (id, paranoia_level, severity_score, description, compiled
regex).  The patterns are modelled on the CRS SQLI/XSS rule files
(942xxx / 941xxx): they are deliberately **ASCII-minded**, matching the
quote/keyword shapes attackers usually send — and therefore blind to the
unicode-confusable and second-order channels the paper exploits.  That
blindness is the behaviour under test, not an implementation shortcut.

Scores follow CRS: critical=5, error=4, warning=3, notice=2.  The default
inbound anomaly threshold is 5 (one critical rule is enough to block).
"""

import re


class Rule(object):
    __slots__ = ("rule_id", "paranoia", "score", "description", "regex")

    def __init__(self, rule_id, paranoia, score, description, pattern,
                 flags=re.IGNORECASE):
        self.rule_id = rule_id
        self.paranoia = paranoia
        self.score = score
        self.description = description
        self.regex = re.compile(pattern, flags)

    def matches(self, text):
        return self.regex.search(text) is not None

    def __repr__(self):
        return "Rule(%s, PL%d, %d)" % (self.rule_id, self.paranoia, self.score)


#: modelled on CRS REQUEST-942-APPLICATION-ATTACK-SQLI and 941 (XSS)
DEFAULT_RULES = [
    # --- SQLI: classic quote + logic ------------------------------------
    Rule("942100", 1, 5, "SQLi via libinjection-style quote/keyword combo",
         r"['\"`]\s*(?:or|and|xor|\|\||&&)\s*['\"0-9]"),
    Rule("942110", 1, 3, "quote followed by SQL comment",
         r"['\"`][^'\"`]*(?:--|#|/\*)"),
    Rule("942120", 1, 5, "SQL operator tautology with quotes",
         r"['\"`]\s*(?:=|<|>|like)\s*['\"`]"),
    Rule("942130", 1, 5, "classic 1=1 style tautology after quote",
         r"['\"`]\s*(?:or|and)\s+[\w'\"]+\s*=\s*[\w'\"]+"),
    Rule("942140", 1, 5, "DB names / information_schema access",
         r"\b(?:information_schema|mysql\.user|pg_catalog)\b"),
    # --- SQLI: UNION / piggyback -----------------------------------------
    Rule("942190", 1, 5, "UNION SELECT injection",
         r"\bunion\b.{0,40}\bselect\b"),
    Rule("942200", 1, 5, "stacked query / piggyback",
         r";\s*(?:select|insert|update|delete|drop|create|alter)\b"),
    Rule("942210", 1, 5, "chained SQL keywords after terminator",
         r"'\s*;\s*\w"),
    # --- SQLI: functions & blind channels ---------------------------------
    Rule("942220", 1, 5, "time-based blind functions",
         r"\b(?:sleep|benchmark|pg_sleep|waitfor\s+delay)\s*\("),
    Rule("942230", 1, 4, "conditional/blind probing functions",
         r"\b(?:if|case\s+when|ifnull|nullif)\s*\(.{0,60}\b(?:select|sleep)\b"),
    Rule("942240", 1, 4, "string-assembly functions used for evasion",
         r"\b(?:concat(?:_ws)?|group_concat|char|chr|unhex|0x[0-9a-f]{4,})\s*\(?"),
    Rule("942250", 1, 5, "EXEC/EXECUTE and stored procedure calls",
         r"\b(?:exec(?:ute)?\s+(?:immediate|master)|xp_cmdshell|sp_executesql)\b"),
    # --- SQLI: comment & whitespace evasion ------------------------------
    Rule("942260", 2, 3, "inline comment obfuscation",
         r"/\*!?\d*.{0,20}\*/"),
    Rule("942270", 1, 5, "basic sql injection 'or 1=1' without quotes",
         r"\b(?:or|and)\s+\d+\s*=\s*\d+"),
    Rule("942280", 2, 3, "double-encoded or percent-encoded quote",
         r"%2(?:2|7)|%u00(?:22|27)"),
    # --- SQLI: boolean context without quotes (numeric context) ----------
    Rule("942300", 2, 5, "numeric-context boolean injection",
         r"\b\d+\s+(?:or|and)\s+[\w]"),
    Rule("942310", 2, 3, "ORDER BY / GROUP BY probing",
         r"\b(?:order|group)\s+by\s+\d+"),
    # --- XSS (941xxx) -------------------------------------------------------
    Rule("941100", 1, 5, "script tag",
         r"<\s*script[^>]*>"),
    Rule("941110", 1, 5, "event handler attribute",
         r"\bon(?:error|load|click|mouseover|focus|submit)\s*="),
    Rule("941120", 1, 5, "javascript: URI",
         r"javascript\s*:"),
    Rule("941130", 1, 4, "iframe/object/embed vector",
         r"<\s*(?:iframe|object|embed|svg|img)\b"),
    Rule("941140", 2, 3, "html entity obfuscated angle bracket",
         r"&(?:lt|gt|#x3c|#60);",),
    # --- file inclusion / command injection (930/932 family) --------------
    Rule("930100", 1, 5, "path traversal",
         r"(?:\.\./|\.\.\\|%2e%2e%2f)"),
    Rule("930120", 1, 5, "OS sensitive file access",
         r"(?:/etc/(?:passwd|shadow)|boot\.ini|/proc/self)"),
    Rule("931100", 1, 5, "RFI: URL in parameter with script extension",
         r"(?:ht|f)tps?://[^\s]+\.(?:php|phtml|txt)\b"),
    Rule("932100", 1, 5, "unix command injection",
         r"(?:;|\||`|\$\()\s*(?:cat|ls|id|whoami|wget|curl|nc|bash|sh)\b"),
    Rule("933100", 1, 5, "PHP code injection",
         r"<\?php|\b(?:eval|system|passthru|shell_exec)\s*\("),
]


def rules_for_paranoia(level, rules=None):
    """Rules active at CRS paranoia level *level* (1..4)."""
    return [
        rule for rule in (rules or DEFAULT_RULES) if rule.paranoia <= level
    ]
