"""ModSecurity-like web application firewall with CRS anomaly scoring.

Mirrors the demo's ModSecurity 2.9.1 + OWASP CRS 3.0 deployment: rules
run over every request parameter (and the raw query string), matched rule
scores are summed, and the request is blocked when the inbound anomaly
score reaches the threshold (CRS default 5).

Crucially, the WAF sees parameters **as transmitted** — before PHP
processes them and long before MySQL decodes them — so payloads whose
maliciousness only materialises after DBMS-side decoding (unicode
confusables, GBK escape-eating, second-order retrieval) score zero here.
"""

import urllib.parse

from repro.waf.crs_rules import DEFAULT_RULES, rules_for_paranoia


class WafVerdict(object):
    """Outcome of evaluating one request."""

    __slots__ = ("blocked", "score", "matched", "rule_ids")

    def __init__(self, blocked, score, matched):
        self.blocked = blocked
        self.score = score
        #: list of (rule, parameter_name) pairs
        self.matched = matched
        self.rule_ids = ",".join(sorted({r.rule_id for r, _ in matched}))

    def __repr__(self):
        if not self.blocked:
            return "WafVerdict(pass, score=%d)" % self.score
        return "WafVerdict(BLOCK, score=%d, rules=%s)" % (
            self.score, self.rule_ids
        )


class ModSecurity(object):
    """The WAF engine."""

    name = "ModSecurity"

    def __init__(self, paranoia_level=1, inbound_threshold=5, rules=None,
                 enabled=True):
        self.paranoia_level = paranoia_level
        self.inbound_threshold = inbound_threshold
        self._all_rules = list(rules or DEFAULT_RULES)
        self.enabled = enabled
        #: audit log of (request, verdict) for blocked requests
        self.audit_log = []
        self.requests_evaluated = 0

    @property
    def rules(self):
        return rules_for_paranoia(self.paranoia_level, self._all_rules)

    def evaluate(self, request):
        """Score one request; record blocked ones in the audit log."""
        self.requests_evaluated += 1
        matched = []
        score = 0
        rules = self.rules
        for name, raw_value in request.params.items():
            for candidate in self._transformations(raw_value):
                hit_this_value = set()
                for rule in rules:
                    if rule.rule_id in hit_this_value:
                        continue
                    if rule.matches(candidate):
                        hit_this_value.add(rule.rule_id)
                        already = any(
                            r.rule_id == rule.rule_id and p == name
                            for r, p in matched
                        )
                        if not already:
                            matched.append((rule, name))
                            score += rule.score
        blocked = score >= self.inbound_threshold
        verdict = WafVerdict(blocked, score, matched)
        if blocked:
            self.audit_log.append((request, verdict))
        return verdict

    def _transformations(self, value):
        """CRS-style input transformations: raw + url-decoded (once).

        ModSecurity applies ``t:urlDecodeUni`` etc.; we decode percent
        encoding once, like the default CRS chain, so single-encoded
        payloads are caught but the DBMS-side decodings are (faithfully)
        not reproduced here.
        """
        text = str(value)
        yield text
        decoded = urllib.parse.unquote_plus(text)
        if decoded != text:
            yield decoded

    # -- demo controls -------------------------------------------------------

    def turn_on(self):
        self.enabled = True

    def turn_off(self):
        self.enabled = False

    def clear_log(self):
        self.audit_log = []
