"""``ShardRouter``: the scatter/gather front door of the sharded fleet.

One router fronts N shards; each shard is a
:class:`repro.replica.coordinator.ReplicaSet` (its own primary, its own
replicas, its own WAL shipping and lease elections — PR 7 reused
whole).  The router holds one failover-aware
:class:`~repro.replica.router.RoutingConnection` per shard and decides
*where* a statement runs with the distributed planning pass
(:class:`repro.sqldb.planner.DistributedPlanner`):

* **single-shard** — shard-key equality, keyed DML, keyed INSERT: the
  original SQL text goes to exactly one shard, so that shard's pipeline
  cache stays warm (the router never rewrites the hot path);
* **scatter** — cross-shard SELECT: per-shard subqueries stream through
  a gather operator tree (``Union`` concat / partial→final ``Aggregate``
  / merge-``TopK``) built from :mod:`repro.sqldb.plan` nodes;
* **broadcast** — DDL fans out to every shard, *after* the router's
  catalog epoch bumps so no cached route (and no per-shard pipeline
  cache, which keys on each engine's own schema version) can serve a
  stale plan;
* **pinned** — tables without a shard key live whole on shard 0.

SEPTIC runs *inside each shard* against that shard's own ``QMStore`` —
every shard sees the query after its own decode/parse, exactly the
paper's placement.  A blocked verdict on any shard aborts the whole
statement: reads stop mid-gather with the block as the statement error
(reads have no effects to tear), and writes are single-shard by
construction in v1, so there is never a partial cross-shard effect.

Everything here runs on the replica sets' virtual tick clocks — no
wall-clock reads (lint-gated), which is what lets the sharded crash
sweep replay failovers deterministically.
"""

import os
from collections import OrderedDict

from repro.replica.coordinator import ReplicaSet
from repro.shard.catalog import ShardCatalog
from repro.sqldb import plan as plan_mod
from repro.sqldb.connection import QueryOutcome
from repro.sqldb.errors import ExecutionError, SQLError
from repro.sqldb.parser import parse_sql
from repro.sqldb.planner import DistributedPlanner
from repro.sqldb.storage import ResultSet


class _GatherContext(object):
    """Duck-typed ``ExecState.ctx`` for gather trees.  The only leaf
    below a gather is :class:`~repro.sqldb.plan.ShardScan`, and the only
    thing it needs is ``shard_rows`` — there is no local database, no
    read view, no expression environment."""

    __slots__ = ("_router",)

    def __init__(self, router):
        self._router = router

    def shard_rows(self, shard, sql):
        outcome = self._router.connections[shard].query(sql)
        if outcome.error is not None:
            # a SEPTIC block (or any shard error) aborts the gather —
            # the generator chain unwinds before another shard is asked
            raise outcome.error
        for row in outcome.rows:
            yield row


class ShardRouter(object):
    """Front N replica-set shards with planner-driven routing."""

    def __init__(self, workdir, shards=2, replicas=1, septic_factory=None,
                 seed=1, charset=None, heartbeat_interval=5,
                 lease_intervals=3, wal_sync="commit", storage="memory",
                 max_lag_lsn=0, route_cache_size=256):
        self.catalog = ShardCatalog(shards)
        self.planner = DistributedPlanner(shards, self.catalog)
        self.shard_sets = [
            ReplicaSet(
                os.path.join(workdir, "shard%d" % ordinal),
                replicas=replicas,
                septic_factory=septic_factory,
                seed=seed + ordinal,
                heartbeat_interval=heartbeat_interval,
                lease_intervals=lease_intervals,
                wal_sync=wal_sync,
                storage=storage,
            )
            for ordinal in range(shards)
        ]
        self.connections = [
            replica_set.connect(max_lag_lsn=max_lag_lsn, charset=charset,
                                seed=seed + ordinal)
            for ordinal, replica_set in enumerate(self.shard_sets)
        ]
        #: bumped before every DDL broadcast; route-cache entries key on
        #: it, so a stale distributed plan can never be served
        self.catalog_epoch = 0
        self.route_cache_size = route_cache_size
        self._routes = OrderedDict()
        self.last_gather_stats = None
        self.stats = {
            "single_shard": 0, "scatter": 0, "broadcast": 0, "pinned": 0,
            "route_cache_hits": 0, "gather_peak_rows": 0,
        }

    @property
    def shard_count(self):
        return len(self.shard_sets)

    # -- catalog surface ----------------------------------------------

    def declare(self, table, key_column, columns=None):
        """Declare (or re-declare) *table*'s shard key; flushes cached
        routes, since routing decisions depend on it."""
        self.catalog_epoch += 1
        self._routes.clear()
        self.catalog.declare(table, key_column, columns)

    # -- routing -------------------------------------------------------

    def _route(self, sql):
        """``(stmt, ShardRoute)`` for one statement, LRU-cached per
        catalog epoch."""
        key = (sql, self.catalog_epoch)
        hit = self._routes.get(key)
        if hit is not None:
            self._routes.move_to_end(key)
            self.stats["route_cache_hits"] += 1
            return hit
        statements, _comments = parse_sql(sql)
        if len(statements) != 1:
            raise ExecutionError(
                "the shard router takes one statement per call",
                errno=1235,
            )
        stmt = statements[0]
        route = self.planner.route(stmt, sql)
        self._routes[key] = (stmt, route)
        if len(self._routes) > self.route_cache_size:
            self._routes.popitem(last=False)
        return stmt, route

    def _target_shard(self, route):
        ordinals = {
            self.catalog.shard_for(route.table, value)
            for value in route.key_values
        }
        if not ordinals:
            return 0
        if len(ordinals) > 1:
            raise ExecutionError(
                "statement touches rows on %d shards (%s) — multi-shard "
                "DML/joins are not supported"
                % (len(ordinals), sorted(ordinals)), errno=1235,
            )
        return ordinals.pop()

    # -- the client surface -------------------------------------------

    def query(self, sql):
        """Run one statement somewhere in the fleet; returns a
        :class:`~repro.sqldb.connection.QueryOutcome`."""
        try:
            stmt, route = self._route(sql)
        except SQLError as exc:
            return QueryOutcome(error=exc)
        if route.kind == "broadcast":
            return self._broadcast(stmt, route)
        if route.kind == "scatter":
            return self._gather(route)
        if route.kind == "single":
            try:
                shard = self._target_shard(route)
            except SQLError as exc:
                return QueryOutcome(error=exc)
            self.stats["single_shard"] += 1
            return self.connections[shard].query(route.sql)
        self.stats["pinned"] += 1
        return self.connections[0].query(route.sql)

    def query_or_raise(self, sql):
        outcome = self.query(sql)
        if not outcome.ok:
            raise outcome.error
        return outcome

    def _broadcast(self, stmt, route):
        """DDL to every shard.  The epoch bumps *first* so concurrent
        route lookups re-plan, and each shard engine bumps its own
        schema version as the DDL lands — its pipeline cache can never
        replay a pre-DDL plan.  The fan-out stops at the first shard
        error (DDL here is idempotent-or-retriable; the caller sees
        exactly which shard refused)."""
        self.catalog_epoch += 1
        self._routes.clear()
        self.catalog.observe_ddl(stmt)
        outcome = QueryOutcome()
        for connection in self.connections:
            outcome = connection.query(route.sql)
            if not outcome.ok:
                return outcome
        self.stats["broadcast"] += 1
        return outcome

    def _gather(self, route):
        stats = plan_mod.StageStats()
        state = plan_mod.ExecState(_GatherContext(self), stats)
        try:
            rows = [out for _, out in route.plan.root.rows(state)]
        except SQLError as exc:
            return QueryOutcome(error=exc)
        self.stats["scatter"] += 1
        self.last_gather_stats = stats
        if stats.peak_materialized_rows > self.stats["gather_peak_rows"]:
            self.stats["gather_peak_rows"] = stats.peak_materialized_rows
        return QueryOutcome(
            result_set=ResultSet(route.plan.columns, rows)
        )

    # -- fleet control (virtual time, crash testing) -------------------

    def tick(self, ticks=1):
        """Advance every shard's virtual clock (heartbeats, leases,
        WAL shipping ride on this)."""
        for replica_set in self.shard_sets:
            replica_set.tick(ticks)

    def ship(self):
        for replica_set in self.shard_sets:
            replica_set.ship()

    def kill_primary(self, shard):
        """Crash one shard's primary (the sharded crash sweep's kill
        switch)."""
        return self.shard_sets[shard].kill_primary()

    def primary_database(self, shard):
        primary = self.shard_sets[shard].primary
        return None if primary is None else primary.database

    def status(self):
        return {
            "shards": self.shard_count,
            "catalog_epoch": self.catalog_epoch,
            "tables": self.catalog.tables(),
            "stats": dict(self.stats),
            "primaries": [
                None if replica_set.primary is None
                else replica_set.primary.name
                for replica_set in self.shard_sets
            ],
        }

    def close(self):
        for replica_set in self.shard_sets:
            replica_set.close()

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()
        return False

    def __repr__(self):
        return "ShardRouter(%d shards, epoch=%d)" % (self.shard_count,
                                                     self.catalog_epoch)
