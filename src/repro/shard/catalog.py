"""The shard catalog: which tables are hash-partitioned, on what key,
and which shard a key value lives on.

This module is the **only** place in the tree that computes a hash
partition (``tests/test_lint.py`` pins that): the planner classifies
statements and extracts shard-key *values*, the router asks the catalog
to map value → shard ordinal.  Keeping the arithmetic in one module is
what makes the partitioning function swappable (and auditable) without
touching the query path.

Partitioning is CRC32 over a canonical encoding of the key value,
modulo the shard count.  The canonical form folds exactly the
equalities the engine's ``=`` folds — case-insensitive strings,
``1 = 1.0`` numerics — so a WHERE clause and the stored row always
agree on the shard.

Tables declare a shard key explicitly (:meth:`ShardCatalog.declare`)
or pick one up from their CREATE TABLE as it broadcasts through the
router: a non-AUTO_INCREMENT primary key becomes the default shard
key.  Tables with no usable key (or an AUTO_INCREMENT primary key —
the engine assigns those values, so a client could never route by
them) are *pinned*: the whole table lives on shard 0 and the planner
routes every touch of it there.
"""

import zlib

from repro.sqldb import ast_nodes as ast


def _canonical(value):
    """Byte encoding under which equal-under-SQL keys collide."""
    if value is None:
        return b"\x00"
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, int):
        return b"n:%d" % value
    if isinstance(value, float):
        return ("f:%r" % value).encode("ascii")
    if isinstance(value, bytes):
        return b"b:" + value
    # strings compare case-insensitively in the engine (MySQL's default
    # collation), so the hash must fold the same way
    return ("s:" + str(value).lower()).encode("utf-8")


class ShardCatalog(object):
    """Hash-partitioned table registry for a fleet of *shard_count*
    shards."""

    def __init__(self, shard_count):
        if shard_count < 1:
            raise ValueError("need at least one shard")
        self.shard_count = shard_count
        #: lowered table name -> {"key", "columns", "explicit"}
        self._tables = {}

    # -- declarations --------------------------------------------------

    def declare(self, table, key_column, columns=None):
        """Declare *table*'s shard key (``None`` pins the table whole
        to shard 0).  Explicit declarations survive the table's CREATE
        broadcast."""
        entry = self._tables.setdefault(
            table.lower(), {"key": None, "columns": [], "explicit": False}
        )
        entry["key"] = key_column.lower() if key_column else None
        entry["explicit"] = True
        if columns is not None:
            entry["columns"] = list(columns)

    def forget(self, table):
        self._tables.pop(table.lower(), None)

    def observe_ddl(self, stmt):
        """Track a DDL statement as the router broadcasts it."""
        if isinstance(stmt, ast.CreateTable):
            self._observe_create(stmt)
        elif isinstance(stmt, ast.DropTable):
            self.forget(stmt.name)
        elif isinstance(stmt, ast.AlterTableAddColumn):
            entry = self._tables.get(stmt.table.lower())
            if entry is not None:
                entry["columns"].append(stmt.column_def.name)
        elif isinstance(stmt, ast.AlterTableDropColumn):
            entry = self._tables.get(stmt.table.lower())
            if entry is not None:
                entry["columns"] = [
                    c for c in entry["columns"]
                    if c.lower() != stmt.column.lower()
                ]

    def _observe_create(self, stmt):
        entry = self._tables.setdefault(
            stmt.name.lower(),
            {"key": None, "columns": [], "explicit": False},
        )
        entry["columns"] = [col.name for col in stmt.columns]
        if not entry["explicit"]:
            entry["key"] = self._default_key(stmt.columns)

    @staticmethod
    def _default_key(columns):
        for col in columns:
            if col.primary_key and not col.auto_increment:
                return col.name.lower()
        return None

    # -- lookups -------------------------------------------------------

    def shard_key(self, table):
        """The shard-key column of *table* (lowered), or ``None`` for a
        pinned/unknown table."""
        entry = self._tables.get(table.lower())
        return None if entry is None else entry["key"]

    def columns(self, table):
        """Column names of *table* in declaration order (empty when its
        CREATE never passed through the router)."""
        entry = self._tables.get(table.lower())
        return [] if entry is None else list(entry["columns"])

    def tables(self):
        return sorted(self._tables)

    # -- the partitioning function ------------------------------------

    def shard_of(self, value):
        """The shard ordinal a key *value* hashes to."""
        return zlib.crc32(_canonical(value)) % self.shard_count

    def shard_for(self, table, value):
        """Shard ordinal for one key value of *table* (pinned tables
        always answer 0)."""
        if self.shard_key(table) is None:
            return 0
        return self.shard_of(value)

    def __repr__(self):
        return "ShardCatalog(%d shards, %d tables)" % (
            self.shard_count, len(self._tables)
        )
