"""Hash-sharded engine fleet: catalog + scatter/gather router.

``ShardRouter`` fronts N shards — each one a replica-set-fronted engine
(:mod:`repro.replica`) — and routes statements through the distributed
planning pass in :mod:`repro.sqldb.planner`.  All hash-partitioning
arithmetic lives in :mod:`repro.shard.catalog` (a lint gate keeps it
out of the planner and executor), and nothing in this package reads the
wall clock: failover and retry run on the replica sets' virtual ticks.
"""

from repro.shard.catalog import ShardCatalog
from repro.shard.router import ShardRouter

__all__ = ["ShardCatalog", "ShardRouter"]
