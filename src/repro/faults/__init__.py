"""Fault injection for the SEPTIC/engine stack (the chaos harness).

Production code exposes named **injection sites**; this package decides
what happens at them.  The contract that keeps the hot path honest:

* :data:`ACTIVE` is the armed :class:`FaultPlan`, or ``None``.  Call
  sites guard with ``if faults.ACTIVE is not None: faults.fire(...)`` —
  one module-attribute read and a ``None`` test when disarmed, which the
  ``bench_fault_overhead`` benchmark proves costs <2% of the warm
  cached query path.
* :func:`arm` / :func:`disarm` switch the global plan; :func:`armed` is
  the context-manager form every test uses, so a failing test can never
  leave a plan armed behind it.

The plan itself (sites, kinds, determinism) lives in
:mod:`repro.faults.plan`.
"""

from contextlib import contextmanager

from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    KNOWN_SITES,
    corrupt_model,
    forget,
    truncate_model,
)

#: the armed plan, or None (the common case: injection points are inert)
ACTIVE = None


def arm(plan):
    """Arm *plan* globally; returns it."""
    global ACTIVE
    ACTIVE = plan
    return plan


def disarm():
    """Disarm whichever plan is active (idempotent)."""
    global ACTIVE
    ACTIVE = None


@contextmanager
def armed(plan):
    """``with faults.armed(FaultPlan(...)) as plan: ...`` — arm for the
    block, always disarm after."""
    arm(plan)
    try:
        yield plan
    finally:
        disarm()


def fire(site, payload=None, corruptor=None):
    """Evaluate the armed plan at *site* (no-op passthrough when none)."""
    plan = ACTIVE
    if plan is None:
        return payload
    return plan.fire(site, payload, corruptor)


__all__ = [
    "ACTIVE",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KNOWN_SITES",
    "arm",
    "armed",
    "corrupt_model",
    "disarm",
    "fire",
    "forget",
    "truncate_model",
]
