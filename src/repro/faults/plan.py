"""Deterministic, seedable fault plans (the chaos engine's script).

A :class:`FaultPlan` names *where* faults happen (injection **sites**,
dotted strings like ``"store.get"`` or ``"plugin.StoredXSSPlugin"``),
*what* happens there (a :class:`FaultKind`), and *when* (skip the first
``after`` hits, then fire for ``times`` hits / fail ``fails`` times).
Production code calls :func:`repro.faults.fire` at each site; with no
plan armed that is a module-attribute ``None`` check and nothing else,
so the injection points are free in normal operation.

Fault kinds:

``raise``
    Raise :class:`InjectedFault` — models an arbitrary internal crash
    (deliberately *not* an SQLError, so nothing downstream can confuse
    it with a legitimate engine error).
``hang``
    Charge ``hang_seconds`` to the thread-local virtual clock
    (:data:`repro.core.resilience.HOOK_CLOCK`).  Inside the SEPTIC hook
    the per-query watchdog notices at its next checkpoint and aborts the
    runaway work; outside the hook it is inert by design.
``corrupt``
    Pass the site's payload through a corruptor (bit-flip a query-model
    node, forget a cache entry, …) using the plan's seeded RNG.  Sites
    with nothing to corrupt ignore the spec (it does not count as an
    injected fault).
``flaky``
    Raise :class:`InjectedFault` for the first ``fails`` hits, then
    succeed forever — the transient-fault shape retry/backoff and the
    circuit breaker are built for.

All bookkeeping happens under one lock, so hit counts (and therefore
which hits fault) are exact even when many sessions hammer one plan;
the seeded RNG makes corruptions reproducible run to run.
"""

import random

from repro.core.resilience import HOOK_CLOCK, make_lock


class FaultKind(object):
    """The supported fault kinds."""

    RAISE = "raise"
    HANG = "hang"
    CORRUPT = "corrupt"
    FLAKY = "flaky"

    ALL = (RAISE, HANG, CORRUPT, FLAKY)


class InjectedFault(Exception):
    """An injected internal crash.

    Not an :class:`repro.sqldb.errors.SQLError`: the point is to model a
    fault the code did *not* anticipate, and prove the containment
    layers turn it into a well-formed client-visible outcome anyway.
    """


#: the named injection sites wired into the engine and the SEPTIC hook
KNOWN_SITES = (
    "store.get",
    "store.put",
    "detector.run",
    "logger.record",
    "cache.lookup",
    "charset.decode",
    "executor.step",
    "wal.append",
    "wal.fsync",
    "wal.checkpoint",
    "wal.recover",
    "planner.plan",
    "operator.next",
    "replica.ship",
    "replica.apply",
    "replica.heartbeat",
    "replica.promote",
    "pager.read",
    "pager.write",
    "pager.fsync",
    "net.accept",
    "net.read",
    "net.write",
    "net.frame",
    # plus "plugin.<name>" for every stored-injection plugin
)


class FaultSpec(object):
    """One (site, kind) instruction of a plan."""

    __slots__ = ("site", "kind", "times", "after", "fails", "hang_seconds",
                 "hits", "fired")

    def __init__(self, site, kind, times=None, after=0, fails=1,
                 hang_seconds=30.0):
        if kind not in FaultKind.ALL:
            raise ValueError("unknown fault kind %r" % kind)
        self.site = site
        self.kind = kind
        #: fire for this many matched hits (``None`` = every hit)
        self.times = times
        #: skip this many matched hits first
        self.after = after
        #: (flaky only) fail this many hits, then succeed forever
        self.fails = fails
        #: (hang only) virtual seconds charged per firing
        self.hang_seconds = hang_seconds
        #: site hits this spec has seen
        self.hits = 0
        #: faults this spec has actually injected
        self.fired = 0

    def __repr__(self):
        return "FaultSpec(%s, %s, hits=%d, fired=%d)" % (
            self.site, self.kind, self.hits, self.fired
        )


class FaultPlan(object):
    """A deterministic set of :class:`FaultSpec` instructions."""

    def __init__(self, seed=0):
        self.rng = random.Random(seed)
        self._specs = {}
        self._lock = make_lock()
        #: total faults injected (raise/flaky raises, hangs, corruptions)
        self.injected = 0
        #: site name -> times :func:`fire` was reached there
        self.hits_by_site = {}

    def inject(self, site, kind, times=None, after=0, fails=1,
               hang_seconds=30.0):
        """Add one instruction; returns the :class:`FaultSpec` so tests
        can assert on its counters."""
        spec = FaultSpec(site, kind, times=times, after=after, fails=fails,
                         hang_seconds=hang_seconds)
        with self._lock:
            self._specs.setdefault(site, []).append(spec)
        return spec

    def specs(self, site=None):
        with self._lock:
            if site is not None:
                return list(self._specs.get(site, []))
            return [s for specs in self._specs.values() for s in specs]

    # -- the injection point ----------------------------------------------

    def fire(self, site, payload=None, corruptor=None):
        """Evaluate the plan at *site*.

        Returns the (possibly corrupted) payload, raises
        :class:`InjectedFault`, or charges the virtual clock — per the
        first matching spec.  Sites pass ``corruptor(payload, rng)``
        when they have something corruptible.
        """
        action = None
        with self._lock:
            self.hits_by_site[site] = self.hits_by_site.get(site, 0) + 1
            for spec in self._specs.get(site, ()):
                spec.hits += 1
                effective = spec.hits - spec.after
                if effective <= 0:
                    continue
                if spec.kind == FaultKind.FLAKY:
                    if effective > spec.fails:
                        continue  # past the failure window: succeed
                elif spec.times is not None and effective > spec.times:
                    continue
                if spec.kind == FaultKind.CORRUPT and corruptor is None:
                    continue  # nothing corruptible at this site
                spec.fired += 1
                self.injected += 1
                action = spec
                break
            if action is not None and action.kind == FaultKind.CORRUPT:
                return corruptor(payload, self.rng)
        if action is None:
            return payload
        if action.kind == FaultKind.HANG:
            HOOK_CLOCK.advance(action.hang_seconds)
            return payload
        raise InjectedFault(
            "injected %s fault at %s (hit %d)"
            % (action.kind, site, action.hits)
        )

    def __repr__(self):
        return "FaultPlan(%d specs, injected=%d)" % (
            len(self.specs()), self.injected
        )


# -- corruptors ------------------------------------------------------------


def corrupt_model(model, rng):
    """Bit-flip one node of a query model in place (simulates a memory /
    storage corruption of a learned QM)."""
    if model is None or not len(model.nodes):
        return model
    node = model.nodes[rng.randrange(len(model.nodes))]
    flipped = chr(ord(node.kind[0]) ^ 1) + node.kind[1:]
    node.kind = flipped
    return model


def truncate_model(model, rng):
    """Drop the top node of a query model in place (a partially-written
    record)."""
    if model is not None and len(model.nodes) > 1:
        model.nodes.pop()
    return model


def forget(payload, rng):
    """Corruptor that loses the payload entirely (cache entry vanishes)."""
    return None
