"""SEPTIC reproduction — injection attack prevention inside the DBMS.

Reproduces "Demonstrating a Tool for Injection Attack Prevention in MySQL"
(Medeiros, Beatriz, Neves, Correia — DSN 2017).

Public API quick tour::

    from repro import Database, Connection, Septic, Mode

    septic = Septic(mode=Mode.TRAINING)
    db = Database(septic=septic)
    db.seed("CREATE TABLE t (id INT, name VARCHAR(40));")

    conn = Connection(db)
    conn.query("SELECT * FROM t WHERE id = 1")   # learned in training

    septic.mode = Mode.PREVENTION
    conn.query("SELECT * FROM t WHERE id = 1 OR 1=1")  # blocked

Sub-packages: :mod:`repro.core` (SEPTIC), :mod:`repro.sqldb` (the
mini-MySQL substrate), :mod:`repro.web` (HTTP/PHP-style application
substrate), :mod:`repro.waf` (ModSecurity-like WAF and a DB firewall
baseline), :mod:`repro.apps` (demo applications), :mod:`repro.attacks`
(attack corpus), :mod:`repro.benchlab` (testbed simulator).
"""

from repro.sqldb import Database, Connection, QueryBlocked, SQLError
from repro.core import (
    Septic,
    SepticConfig,
    Mode,
    QueryStructure,
    QueryModel,
    QMStore,
    AttackDetector,
    SepticLogger,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Connection",
    "QueryBlocked",
    "SQLError",
    "Septic",
    "SepticConfig",
    "Mode",
    "QueryStructure",
    "QueryModel",
    "QMStore",
    "AttackDetector",
    "SepticLogger",
    "__version__",
]
