"""Simulated machines and network of the Quinta-cluster testbed.

``ServerMachine`` models the web+DBMS server pair as a queueing station
with a fixed number of worker slots (Apache worker processes).  The
service time of a request is::

    service = apache_php_cost                      (synthetic, constant)
            + db_query_cost × queries_in_request   (synthetic, constant)
            + septic_seconds                       (MEASURED live)
            + sleep_seconds                        (SLEEP() payloads)

The synthetic constants stand in for the testbed hardware we cannot run
(Apache/PHP machinery and MySQL's own query execution on the paper's
Pentium-4 cluster) and are *identical across SEPTIC configurations*; the
SEPTIC term is the real wall-clock time the hook spent inside the Python
DBMS for this request's queries.  Relative overhead — the paper's
metric — therefore has a deterministic denominator and a measured
numerator, which keeps the NN ≤ YN ≤ NY ≤ YY ordering visible above
scheduler noise.

``NetworkLink`` adds a fixed RTT plus a bandwidth term on the response
body.  ``BrowserClient`` replays a workload in a closed loop, one request
in flight at a time, exactly like a BenchLab browser.
"""


class NetworkLink(object):
    """Ethernet link between client machines and the server."""

    def __init__(self, rtt=0.001, bandwidth_bytes_per_s=125_000_000.0):
        #: round-trip time in seconds (1 Gb ethernet LAN: ~1 ms)
        self.rtt = rtt
        self.bandwidth = bandwidth_bytes_per_s

    def latency(self, response_bytes):
        """One full request/response exchange over this link."""
        return self.rtt + response_bytes / self.bandwidth


class ServerMachine(object):
    """Web + DBMS server: k worker slots over the real application stack."""

    #: synthetic per-request Apache/PHP machinery cost (seconds);
    #: calibrated to the paper's Pentium-4 testbed scale
    APACHE_PHP_COST = 0.0020
    #: synthetic cost of one MySQL query execution (seconds)
    DB_QUERY_COST = 0.0006
    #: synthetic cost of serving a static object (no PHP, no DB)
    STATIC_COST = 0.0006

    def __init__(self, simulator, server, workers=4):
        self._sim = simulator
        #: a :class:`repro.web.server.WebServer` (the real stack)
        self.server = server
        self.workers = workers
        self._busy = 0
        self._queue = []
        self.requests_completed = 0
        #: accumulated measured SEPTIC seconds (read from the database)
        self.septic_seconds = 0.0

    def submit(self, request, on_done):
        """Accept a request; *on_done(response, service_time)* fires when
        service completes (in virtual time)."""
        if self._busy < self.workers:
            self._start(request, on_done)
        else:
            self._queue.append((request, on_done))

    def _start(self, request, on_done):
        self._busy += 1
        database = self.server.app.database
        queries_before = database.statements_received
        septic_before = database.septic_seconds_total
        response = self.server.handle(request)
        queries = database.statements_received - queries_before
        septic_delta = database.septic_seconds_total - septic_before
        self.septic_seconds += septic_delta
        if request.path.startswith("/static/"):
            service = self.STATIC_COST
        else:
            service = self.APACHE_PHP_COST + self.DB_QUERY_COST * queries
        service += septic_delta
        # SLEEP()-based payloads surface as real service time
        app = self.server.app
        outcome = app.php.last_outcome
        if outcome is not None and outcome.sleep_seconds:
            service += outcome.sleep_seconds
            outcome.sleep_seconds = 0.0
        self._sim.schedule(service, self._finish, response, service, on_done)

    def _finish(self, response, service, on_done):
        self._busy -= 1
        self.requests_completed += 1
        if self._queue:
            request, queued_cb = self._queue.pop(0)
            self._start(request, queued_cb)
        on_done(response, service)


class BrowserClient(object):
    """One BenchLab browser: replays the workload in a closed loop.

    ``think_time`` seconds elapse between receiving a response and
    sending the next request (0 = back-to-back, the paper's "sending the
    requests one by one" in a tight loop).
    """

    def __init__(self, simulator, server_machine, link, workload, loops,
                 name="browser", think_time=0.0):
        self._sim = simulator
        self._server = server_machine
        self._link = link
        self._workload = workload
        self._loops = loops
        self.name = name
        self.think_time = think_time
        self.latencies = []
        self._loop = 0
        self._index = 0
        self._sent_at = 0.0

    def start(self, initial_delay=0.0):
        self._sim.schedule(initial_delay, self._send_next)

    def _send_next(self):
        if self._loop >= self._loops:
            return
        request = self._workload.requests[self._index]
        self._sent_at = self._sim.now
        # client -> server propagation: half the RTT
        self._sim.schedule(
            self._link.rtt / 2.0, self._server.submit, request,
            self._on_response,
        )

    def _on_response(self, response, service):
        transfer = self._link.latency(len(response.body)) - self._link.rtt
        self._sim.schedule(
            self._link.rtt / 2.0 + transfer, self._complete
        )

    def _complete(self):
        self.latencies.append(self._sim.now - self._sent_at)
        self._index += 1
        if self._index >= len(self._workload.requests):
            self._index = 0
            self._loop += 1
        if self.think_time > 0:
            self._sim.schedule(self.think_time, self._send_next)
        else:
            self._send_next()

    @property
    def done(self):
        return self._loop >= self._loops

    def __repr__(self):
        return "BrowserClient(%s, %d samples)" % (
            self.name, len(self.latencies)
        )
