"""The BenchLab measurement harness (drives the §II-F experiments).

``run_benchlab`` assembles one full testbed — SEPTIC-enabled database,
application, server machine, client machines with browsers — runs the
closed-loop replay and returns latency statistics.

``run_overhead_experiment`` reproduces Figure 5: for each application it
measures the original server (no SEPTIC) and the four SEPTIC detection
configurations (NN / YN / NY / YY), reporting average-latency overheads.

``run_scaling_experiment`` reproduces the §II-F ramp: 1→4 machines with
one browser each, then 8/12/16/20 browsers on four machines.

``run_concurrent_read_experiment`` measures the engine's statement-level
lock hierarchy: it classifies a real workload with the engine's own
:func:`repro.sqldb.engine.lock_plan`, measures each statement's real
single-threaded service time, then replays N virtual workers through a
discrete-event model of the reader–writer locks
(:class:`LockContentionModel`).  Virtual time is what makes the result
deterministic and GIL-independent: under the GIL, real threads cannot
overlap CPU-bound statements, so wall-clock timing would show ~1× no
matter how good the locking is — the model shows the *schedule* the
lock hierarchy admits.
"""

import random
import time

from repro.benchlab.machines import BrowserClient, NetworkLink, ServerMachine
from repro.benchlab.simulation import Simulator
from repro.benchlab.workload import workload_for
from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic, SepticConfig
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.parser import parse_sql
from repro.web.server import WebServer

#: SEPTIC detection configurations of Figure 5 (None = original MySQL)
FIG5_CONFIGS = ("baseline", "NN", "YN", "NY", "YY")


class BenchLabResult(object):
    """Latency statistics of one testbed run."""

    __slots__ = ("label", "latencies", "virtual_duration",
                 "measured_seconds", "requests", "cache_stats")

    def __init__(self, label, latencies, virtual_duration, measured_seconds,
                 cache_stats=None):
        self.label = label
        self.latencies = latencies
        self.virtual_duration = virtual_duration
        self.measured_seconds = measured_seconds
        self.requests = len(latencies)
        #: pipeline-cache counters of the database under test (``None``
        #: when the cache is disabled); the replayed workload loops over
        #: a fixed query mix, so the hit rate shows how much of the
        #: request cost the cache absorbed
        self.cache_stats = cache_stats

    @property
    def avg_latency(self):
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def p95_latency(self):
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    @property
    def throughput(self):
        if self.virtual_duration <= 0:
            return 0.0
        return self.requests / self.virtual_duration

    def overhead_vs(self, baseline):
        """Average-latency overhead relative to *baseline* (a fraction;
        multiply by 100 for the paper's percentages)."""
        if baseline.avg_latency == 0:
            return 0.0
        return (self.avg_latency - baseline.avg_latency) / \
            baseline.avg_latency

    def __repr__(self):
        return "BenchLabResult(%s, %d req, avg=%.3f ms)" % (
            self.label, self.requests, self.avg_latency * 1000.0
        )


def build_stack(app_class, septic_flags=None, mode=Mode.PREVENTION,
                training_passes=1, cache_size=512):
    """Build (server, app, septic) for one configuration.

    *septic_flags* is ``None`` for the original server (no SEPTIC) or a
    two-letter Y/N string (Figure 5 notation).  SEPTIC stacks are trained
    by replaying the workload in training mode first, like the demo.
    *cache_size* sizes the database's pipeline cache (``0`` disables it,
    for cold-path ablations).
    """
    septic = None
    if septic_flags is not None:
        septic = Septic(
            mode=Mode.TRAINING,
            config=SepticConfig.from_flags(septic_flags),
            logger=SepticLogger(verbose=False),
        )
    database = Database(name=app_class.name, septic=septic,
                        cache_size=cache_size)
    app = app_class(database)
    if septic is not None:
        for _ in range(training_passes):
            for request in app.workload_requests():
                app.handle(request)
        septic.mode = mode
    return WebServer(app), app, septic


def run_benchlab(app_class, septic_flags=None, machines=4,
                 browsers_per_machine=5, loops=5, workers=8,
                 link=None, label=None, think_time=0.0):
    """Run one full testbed configuration and collect latencies."""
    server, app, septic = build_stack(app_class, septic_flags)
    simulator = Simulator()
    station = ServerMachine(simulator, server, workers=workers)
    link = link or NetworkLink()
    workload = workload_for(app)
    browsers = []
    for machine in range(machines):
        for slot in range(browsers_per_machine):
            browser = BrowserClient(
                simulator, station, link, workload, loops,
                name="m%d-b%d" % (machine, slot),
                think_time=think_time,
            )
            # stagger starts like real browsers ramping up
            browser.start(initial_delay=0.01 * len(browsers))
            browsers.append(browser)
    simulator.run()
    latencies = []
    for browser in browsers:
        latencies.extend(browser.latencies)
    cache = app.database.pipeline_cache
    return BenchLabResult(
        label or (septic_flags or "baseline"),
        latencies,
        simulator.now,
        station.septic_seconds,
        cache_stats=cache.stats_dict() if cache is not None else None,
    )


def run_overhead_experiment(app_classes, configs=FIG5_CONFIGS, machines=4,
                            browsers_per_machine=5, loops=5, repeats=3):
    """Figure 5: average latency overhead per SEPTIC configuration.

    Returns ``{app_name: {config: overhead_fraction}}`` plus the raw
    results under the ``"_results"`` key of each app entry.  Each
    configuration is run *repeats* times and the run with the median
    average latency is kept (damps scheduler noise in the measured
    service times).
    """
    table = {}
    for app_class in app_classes:
        results = {}
        for config in configs:
            flags = None if config == "baseline" else config
            runs = [
                run_benchlab(
                    app_class, flags, machines=machines,
                    browsers_per_machine=browsers_per_machine, loops=loops,
                    label=config,
                )
                for _ in range(repeats)
            ]
            runs.sort(key=lambda r: r.avg_latency)
            results[config] = runs[len(runs) // 2]
        baseline = results["baseline"]
        overheads = {
            config: results[config].overhead_vs(baseline)
            for config in configs if config != "baseline"
        }
        overheads["_results"] = results
        table[app_class.name] = overheads
    return table


def run_scaling_experiment(app_class, loops=5, workers=8, repeats=1):
    """§II-F ramp for one application (the paper uses refbase):

    1→4 machines × 1 browser, then 4 machines × 2/3/4/5 browsers
    (8, 12, 16, 20 browsers total).  Returns a list of
    ``(total_browsers, machines, result)`` rows for the YY configuration.
    """
    steps = [(1, 1), (2, 1), (3, 1), (4, 1), (4, 2), (4, 3), (4, 4), (4, 5)]
    rows = []
    for machines, per_machine in steps:
        runs = [
            run_benchlab(
                app_class, "YY", machines=machines,
                browsers_per_machine=per_machine, loops=loops,
                workers=workers,
                label="%dx%d" % (machines, per_machine),
            )
            for _ in range(repeats)
        ]
        runs.sort(key=lambda r: r.avg_latency)
        result = runs[len(runs) // 2]
        rows.append((machines * per_machine, machines, result))
    return rows


# ---------------------------------------------------------------------------
# Lock-contention model (the concurrent read path experiment)
# ---------------------------------------------------------------------------


class _VirtualRWLock(object):
    """A reader–writer lock in virtual time.

    Mirrors :class:`repro.core.resilience.RWLock` semantics — shared
    readers, exclusive writers, writer preference, FIFO among waiting
    writers — but grants happen on the simulator's clock instead of a
    condition variable, so a schedule of thousands of statements plays
    out in microseconds of real time and is bit-for-bit reproducible.
    """

    __slots__ = ("simulator", "readers", "writer", "queue",
                 "grants", "contended")

    def __init__(self, simulator):
        self.simulator = simulator
        self.readers = 0
        self.writer = False
        #: FIFO of (shared, callback) waiting for the lock
        self.queue = []
        self.grants = 0
        self.contended = 0

    def acquire(self, shared, callback):
        if not self.queue:
            if shared and not self.writer:
                self.readers += 1
                self.grants += 1
                self.simulator.schedule(0.0, callback)
                return
            if not shared and not self.writer and self.readers == 0:
                self.writer = True
                self.grants += 1
                self.simulator.schedule(0.0, callback)
                return
        self.contended += 1
        self.queue.append((shared, callback))

    def release(self, shared):
        if shared:
            self.readers -= 1
        else:
            self.writer = False
        self._drain()

    def _drain(self):
        # grant the queue head; consecutive readers at the head are
        # granted together (they overlap), a writer at the head waits
        # for the lock to empty and then holds it alone
        while self.queue:
            shared, callback = self.queue[0]
            if shared:
                if self.writer:
                    return
                self.queue.pop(0)
                self.readers += 1
                self.grants += 1
                self.simulator.schedule(0.0, callback)
            else:
                if self.writer or self.readers:
                    return
                self.queue.pop(0)
                self.writer = True
                self.grants += 1
                self.simulator.schedule(0.0, callback)
                return


class LockContentionModel(object):
    """Virtual-time replay of statements through an engine lock plan.

    One :class:`_VirtualRWLock` per resource (the catalog plus each
    table), acquired in the engine's global order — the same order
    :class:`repro.sqldb.engine.LockManager` uses, so the admitted
    schedule is the one the real engine would admit if its statements
    ran on truly parallel cores.
    """

    CATALOG = "~catalog"

    def __init__(self, simulator):
        self.simulator = simulator
        self._locks = {}
        self.statements_done = 0

    def resource(self, name):
        lock = self._locks.get(name)
        if lock is None:
            lock = _VirtualRWLock(self.simulator)
            self._locks[name] = lock
        return lock

    def run_statement(self, plan, service_time, done):
        """Acquire *plan*'s locks in order, hold them for
        *service_time* virtual seconds, release, then call *done*."""
        if plan is None:
            resources = []
        else:
            resources = [(self.CATALOG, plan.catalog_shared)]
            resources.extend(plan.tables)

        def acquire_next(index):
            if index == len(resources):
                self.simulator.schedule(service_time, finish)
                return
            name, shared = resources[index]
            self.resource(name).acquire(
                shared, lambda: acquire_next(index + 1)
            )

        def finish():
            for name, shared in reversed(resources):
                self.resource(name).release(shared)
            self.statements_done += 1
            done()

        acquire_next(0)

    def lock_stats(self):
        return {
            name: {"grants": lock.grants, "contended": lock.contended}
            for name, lock in sorted(self._locks.items())
        }


class ContentionResult(object):
    """Outcome of one :func:`run_concurrent_read_experiment` run."""

    __slots__ = ("lock_mode", "workers", "statements", "makespan",
                 "service_total", "lock_stats")

    def __init__(self, lock_mode, workers, statements, makespan,
                 service_total, lock_stats):
        self.lock_mode = lock_mode
        self.workers = workers
        self.statements = statements
        #: virtual seconds from first issue to last completion
        self.makespan = makespan
        #: sum of single-threaded service times (the serial floor)
        self.service_total = service_total
        self.lock_stats = lock_stats

    @property
    def throughput(self):
        if self.makespan <= 0:
            return 0.0
        return self.statements / self.makespan

    def speedup_vs(self, baseline):
        """Aggregate-throughput ratio against another run."""
        if baseline.throughput == 0:
            return 0.0
        return self.throughput / baseline.throughput

    def __repr__(self):
        return ("ContentionResult(%s, %d workers, %d stmts, "
                "makespan=%.6f)" % (self.lock_mode, self.workers,
                                    self.statements, self.makespan))


class MixedWorkloadResult(object):
    """Outcome of one :func:`run_mixed_workload_experiment` run."""

    __slots__ = ("lock_mode", "readers", "reader_statements",
                 "reader_makespan", "writer_makespan",
                 "reader_service_total", "writer_service", "lock_stats")

    def __init__(self, lock_mode, readers, reader_statements,
                 reader_makespan, writer_makespan, reader_service_total,
                 writer_service, lock_stats):
        self.lock_mode = lock_mode
        self.readers = readers
        self.reader_statements = reader_statements
        #: virtual seconds until the *last reader* finished
        self.reader_makespan = reader_makespan
        #: virtual seconds until the writer's statement finished
        self.writer_makespan = writer_makespan
        #: serial floor of the read side (sum of service times)
        self.reader_service_total = reader_service_total
        self.writer_service = writer_service
        self.lock_stats = lock_stats

    @property
    def reader_throughput(self):
        if self.reader_makespan <= 0:
            return 0.0
        return self.reader_statements / self.reader_makespan

    def reader_speedup_vs(self, baseline):
        """Read-side throughput ratio against another run."""
        if baseline.reader_throughput == 0:
            return 0.0
        return self.reader_throughput / baseline.reader_throughput

    @property
    def readers_overlapped_writer(self):
        """True when the read side completed while the writer's long
        statement was still holding its table lock — the "writers never
        block readers" claim, visible in the schedule itself."""
        return self.reader_makespan < self.writer_makespan

    def __repr__(self):
        return ("MixedWorkloadResult(%s, %d readers, %d stmts, "
                "reader_makespan=%.6f, writer_makespan=%.6f)"
                % (self.lock_mode, self.readers, self.reader_statements,
                   self.reader_makespan, self.writer_makespan))


def run_mixed_workload_experiment(setup_sql, reader_workload, writer_sql,
                                  readers=8, loops=5, lock_mode="shared",
                                  reader_service=None, writer_service=None):
    """Readers racing one long writer on the *same* table, in virtual
    time — the MVCC demonstration experiment.

    *reader_workload* (a list of single-statement SQL strings, SELECTs
    over the writer's target table) is replayed by *readers* virtual
    workers, *loops* times each, while a single virtual writer runs
    *writer_sql* once with service time *writer_service* (long, so its
    table lock is held across the whole read phase).  Statements are
    classified with the engine's own lock-plan logic under *lock_mode*,
    exactly as :func:`run_concurrent_read_experiment` does; service
    times are measured live unless pinned via *reader_service* /
    *writer_service* (benchmarks comparing two modes should pin both
    runs to the same times).

    Under the MVCC plans ("shared" mode) SELECTs take no table locks —
    the read side never queues behind the writer's table-X hold and
    finishes while the UPDATE is still running
    (:attr:`MixedWorkloadResult.readers_overlapped_writer`).  Under
    "exclusive" mode everything serializes through the catalog lock,
    which is the baseline the read-speedup claim is measured against.

    Returns a :class:`MixedWorkloadResult`.
    """
    database = Database(lock_mode=lock_mode)
    if setup_sql:
        database.seed(setup_sql)
    plans = []
    measured = []
    for index, sql in enumerate(reader_workload):
        statements, _comments = parse_sql(sql)
        if len(statements) != 1:
            raise ValueError("workload entries must hold one statement: %r"
                             % sql)
        plans.append(database._lock_plan_for(statements[0]))
        if reader_service is not None:
            measured.append(reader_service[index])
        else:
            start = time.perf_counter()
            database.run(sql)
            measured.append(max(time.perf_counter() - start, 1e-7))
    statements, _comments = parse_sql(writer_sql)
    if len(statements) != 1:
        raise ValueError("writer_sql must hold one statement: %r"
                         % writer_sql)
    writer_plan = database._lock_plan_for(statements[0])
    if writer_service is None:
        start = time.perf_counter()
        database.run(writer_sql)
        writer_service = max(time.perf_counter() - start, 1e-7)
    simulator = Simulator()
    model = LockContentionModel(simulator)
    script = [(plans[i], measured[i]) for i in range(len(reader_workload))]
    done = {"reader_last": 0.0, "writer_last": 0.0, "statements": 0}

    def start_reader():
        items = list(script) * loops

        def run_next(index):
            if index == len(items):
                done["reader_last"] = max(done["reader_last"],
                                          simulator.now)
                return
            plan, service = items[index]
            model.run_statement(plan, service, lambda: advance(index))

        def advance(index):
            done["statements"] += 1
            run_next(index + 1)

        run_next(0)

    def start_writer():
        def finished():
            done["writer_last"] = simulator.now

        model.run_statement(writer_plan, writer_service, finished)

    # the writer issues first: in exclusive mode every reader queues
    # behind its hold, in MVCC mode none of them do
    simulator.schedule(0.0, start_writer)
    for worker in range(readers):
        simulator.schedule((worker + 1) * 1e-9, start_reader)
    simulator.run()
    return MixedWorkloadResult(
        lock_mode, readers, done["statements"], done["reader_last"],
        done["writer_last"], sum(measured) * readers * loops,
        writer_service, model.lock_stats(),
    )


def run_concurrent_read_experiment(setup_sql, workload, workers=8,
                                   loops=5, lock_mode="shared",
                                   service_times=None):
    """Replay *workload* on *workers* virtual threads under the engine's
    lock hierarchy and report the admitted schedule.

    *setup_sql* seeds a real :class:`Database` (built with *lock_mode*);
    each statement of *workload* is parsed once, classified with the
    engine's own lock-plan logic, and its single-threaded service time
    is measured live (pass *service_times*, one float per workload
    statement, to pin them — benchmarks comparing two modes should
    measure once and pin both runs to the same times).  Then *workers*
    virtual threads each run the workload *loops* times through
    :class:`LockContentionModel` and the makespan of the whole schedule
    is measured in virtual time.

    Returns a :class:`ContentionResult`.
    """
    database = Database(lock_mode=lock_mode)
    if setup_sql:
        database.seed(setup_sql)
    plans = []
    measured = []
    for index, sql in enumerate(workload):
        statements, _comments = parse_sql(sql)
        if len(statements) != 1:
            raise ValueError("workload entries must hold one statement: %r"
                             % sql)
        plans.append(database._lock_plan_for(statements[0]))
        if service_times is not None:
            measured.append(service_times[index])
        else:
            start = time.perf_counter()
            database.run(sql)
            measured.append(max(time.perf_counter() - start, 1e-7))
    simulator = Simulator()
    model = LockContentionModel(simulator)
    script = [(plans[i], measured[i]) for i in range(len(workload))]
    total = {"statements": 0}
    completion = {"last": 0.0}

    def start_worker(items):
        def run_next(index):
            if index == len(items):
                completion["last"] = max(completion["last"], simulator.now)
                return
            plan, service = items[index]
            model.run_statement(plan, service,
                                lambda: advance(index))

        def advance(index):
            total["statements"] += 1
            run_next(index + 1)

        run_next(0)

    for worker in range(workers):
        # stagger issue order deterministically without changing load
        items = list(script) * loops
        simulator.schedule(worker * 1e-9, start_worker, items)
    simulator.run()
    return ContentionResult(
        lock_mode, workers, total["statements"], completion["last"],
        sum(measured) * workers * loops, model.lock_stats(),
    )


class FailoverExperimentResult(object):
    """What :func:`run_failover_experiment` measured."""

    __slots__ = ("replicas", "readers", "read_service", "heartbeat_seconds",
                 "lease_intervals", "fail_at", "duration", "reads_before",
                 "reads_during", "reads_after", "throughput_before",
                 "throughput_during", "throughput_after", "promote_time",
                 "restore_time", "outage_intervals", "failed_reads",
                 "writes_ok", "write_failures", "promotions", "rows_expected",
                 "rows_on_primary", "converged")

    def __init__(self, **kwargs):
        for name in self.__slots__:
            setattr(self, name, kwargs.pop(name))
        if kwargs:
            raise TypeError("unexpected fields: %s" % sorted(kwargs))

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return ("FailoverExperimentResult(replicas=%d, thr before/during/"
                "after=%.0f/%.0f/%.0f reads/s, outage=%s intervals)"
                % (self.replicas, self.throughput_before,
                   self.throughput_during, self.throughput_after,
                   self.outage_intervals))


def run_failover_experiment(workdir, replicas=2, readers=6, seed=1,
                            read_service=None, heartbeat_seconds=0.05,
                            lease_intervals=3, fail_at=1.0, duration=3.0,
                            max_lag_lsn=8, rows=64):
    """The failover DES: replica-served read throughput before, during
    and after the primary dies, in virtual time.

    A real :class:`~repro.replica.coordinator.ReplicaSet` (primary plus
    *replicas* WAL-shipping followers over *workdir*) runs under the
    simulator's clock: every *heartbeat_seconds* of virtual time is one
    coordinator tick, so leases, elections and shipments all advance as
    the simulation does.  *readers* closed-loop virtual clients issue
    reads routed by the set's own :class:`RoutingConnection` staleness
    policy (each serving node modelled as a serial FIFO resource with
    *read_service* seconds per read, measured live when not pinned); a
    writer probes one real INSERT against the live primary every
    interval.  At *fail_at* the primary is killed in place.  In-flight
    reads on the dead node fail and retry against survivors with
    seeded exponential backoff + jitter.

    ``restore_time`` is the first successful probe write after the
    kill; ``outage_intervals`` expresses the write outage in heartbeat
    intervals (the ISSUE's bound: lease expiry + election, not
    wall-clock luck).  After the run the set is flushed and the result
    records whether every survivor converged to the same applied LSN
    and the primary holds exactly the acknowledged row count.
    """
    from repro.replica import ReplicaSet

    replica_set = ReplicaSet(workdir, replicas=replicas, seed=seed,
                             heartbeat_interval=1,
                             lease_intervals=lease_intervals)
    connections = {}

    def conn_for(node):
        conn = connections.get(node.name)
        if conn is None or conn.database is not node.database:
            conn = Connection(node.database)
            connections[node.name] = conn
        return conn

    setup = conn_for(replica_set.primary)
    setup.query_or_raise(
        "CREATE TABLE kv (id INT AUTO_INCREMENT PRIMARY KEY, v INT)")
    for index in range(rows):
        setup.query_or_raise("INSERT INTO kv (v) VALUES (%d)" % index)
    replica_set.ship()
    read_sql = "SELECT COUNT(*) FROM kv"
    if read_service is None:
        best = None
        for _ in range(3):
            start = time.perf_counter()
            setup.query_or_raise(read_sql)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        read_service = max(best, 1e-6)
    router = replica_set.connect(max_lag_lsn=max_lag_lsn, seed=seed)
    simulator = Simulator()
    rng = random.Random(seed)
    busy_until = {}
    counts = {"failed_reads": 0, "writes_ok": 0, "write_failures": 0}
    state = {"promote_time": None, "restore_time": None}
    completions = []

    def beat():
        replica_set.tick(1)
        if replica_set.promotions and state["promote_time"] is None:
            state["promote_time"] = simulator.now
        if simulator.now + heartbeat_seconds <= duration + 1e-9:
            simulator.schedule(heartbeat_seconds, beat)

    def probe_write():
        primary = replica_set.primary
        if primary is None:
            counts["write_failures"] += 1
        else:
            outcome = conn_for(primary).query(
                "INSERT INTO kv (v) VALUES (%d)" % rng.randrange(1000))
            if outcome.ok:
                # semi-sync: ship before acknowledging, so every write
                # this probe counts survives the failover
                replica_set.ship()
                counts["writes_ok"] += 1
                if (simulator.now >= fail_at
                        and state["restore_time"] is None):
                    state["restore_time"] = simulator.now
            else:
                counts["write_failures"] += 1
        if simulator.now + heartbeat_seconds <= duration + 1e-9:
            simulator.schedule(heartbeat_seconds, probe_write)

    def issue_read(reader_id, attempt):
        if simulator.now >= duration:
            return
        node = router.pick_node(True)
        if node is None or not node.alive:
            counts["failed_reads"] += 1
            delay = min(8.0, float(2 ** attempt)) * heartbeat_seconds * 0.5
            delay *= 1.0 + 0.5 * rng.random()
            simulator.schedule(delay, issue_read, reader_id, attempt + 1)
            return
        start = max(simulator.now, busy_until.get(node.name, 0.0))
        finish = start + read_service
        busy_until[node.name] = finish
        simulator.schedule(finish - simulator.now, finish_read,
                           reader_id, node)

    def finish_read(reader_id, node):
        if not node.alive:
            # died mid-flight: the retry goes to a survivor
            counts["failed_reads"] += 1
            simulator.schedule(heartbeat_seconds * 0.5, issue_read,
                               reader_id, 1)
            return
        completions.append(simulator.now)
        issue_read(reader_id, 0)

    simulator.schedule(0.0, beat)
    simulator.schedule(heartbeat_seconds * 0.5, probe_write)
    if fail_at <= duration:
        simulator.schedule(fail_at, replica_set.kill_primary)
    for reader in range(readers):
        simulator.schedule((reader + 1) * 1e-9, issue_read, reader, 0)
    simulator.run()

    restore = state["restore_time"]
    cut = fail_at if fail_at <= duration else duration
    boundary = restore if restore is not None else duration
    before = [t for t in completions if t < cut]
    during = [t for t in completions if cut <= t < boundary]
    after = [t for t in completions if boundary <= t <= duration]

    def rate(count, window):
        return count / window if window > 1e-12 else 0.0

    outage = None
    if restore is not None and fail_at <= duration:
        outage = (restore - fail_at) / heartbeat_seconds
    # drain: ship whatever the probes wrote since the last beat, then
    # check the survivors all landed on one applied frontier and the
    # primary holds exactly the acknowledged rows
    replica_set.ship()
    alive = [node for node in replica_set.nodes if node.alive]
    frontiers = set(node.applied_lsn for node in alive)
    rows_expected = rows + counts["writes_ok"]
    rows_on_primary = None
    primary = replica_set.primary
    if primary is not None:
        outcome = conn_for(primary).query_or_raise(read_sql)
        rows_on_primary = outcome.rows[0][0]
    converged = (len(frontiers) == 1
                 and rows_on_primary == rows_expected)
    promotions = replica_set.promotions
    replica_set.close()
    return FailoverExperimentResult(
        replicas=replicas, readers=readers, read_service=read_service,
        heartbeat_seconds=heartbeat_seconds,
        lease_intervals=lease_intervals, fail_at=fail_at,
        duration=duration, reads_before=len(before),
        reads_during=len(during), reads_after=len(after),
        throughput_before=rate(len(before), cut),
        throughput_during=rate(len(during), boundary - cut),
        throughput_after=rate(len(after), duration - boundary),
        promote_time=state["promote_time"], restore_time=restore,
        outage_intervals=outage, failed_reads=counts["failed_reads"],
        writes_ok=counts["writes_ok"],
        write_failures=counts["write_failures"], promotions=promotions,
        rows_expected=rows_expected, rows_on_primary=rows_on_primary,
        converged=converged,
    )


class ScaleOutResult(object):
    """What :func:`run_scaleout_experiment` measured for one fleet size."""

    __slots__ = ("shards", "clients", "duration", "service_seconds",
                 "scatter_fraction", "completed", "single_shard",
                 "scatter", "throughput", "per_shard_served",
                 "balance_ratio")

    def __init__(self, **kwargs):
        for name in self.__slots__:
            setattr(self, name, kwargs.pop(name))
        if kwargs:
            raise TypeError("unexpected fields: %s" % sorted(kwargs))

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self):
        return ("ScaleOutResult(shards=%d, %.0f req/s, balance=%.2f)"
                % (self.shards, self.throughput, self.balance_ratio))


def run_scaleout_experiment(shards=4, clients=16, seed=1, duration=5.0,
                            service_seconds=0.002, scatter_fraction=0.05,
                            keyspace=4096):
    """The sharded scale-out DES: closed-loop throughput vs fleet size,
    in virtual time.

    Each shard is a serial FIFO resource charging *service_seconds* per
    statement it executes — the single-engine bottleneck the sharding
    work exists to split.  *clients* closed-loop virtual clients draw
    seeded keys from *keyspace* and route them through the **real
    partitioning function** (:meth:`ShardCatalog.shard_of`), so the DES
    inherits exactly the key distribution (and any skew) production
    routing would see.  A *scatter_fraction* of requests are cross-shard
    reads: they occupy *every* shard's FIFO and complete when the
    slowest shard finishes — the gather barrier, priced honestly.

    Single-shard-routed work scales with the fleet; scattered work does
    not.  Comparing ``throughput`` at 1 vs 4 shards is the benchmark's
    scale-out gate; ``balance_ratio`` (min/max per-shard served counts)
    sanity-checks the hash spread.
    """
    from repro.shard.catalog import ShardCatalog

    catalog = ShardCatalog(shards)
    simulator = Simulator()
    rng = random.Random(seed)
    busy_until = [0.0] * shards
    served = [0] * shards
    counts = {"completed": 0, "single": 0, "scatter": 0}

    def occupy(shard):
        start = max(busy_until[shard], simulator.now)
        finish = start + service_seconds
        busy_until[shard] = finish
        served[shard] += 1
        return finish

    def issue():
        if simulator.now >= duration:
            return
        if shards > 1 and rng.random() < scatter_fraction:
            finish = max(occupy(shard) for shard in range(shards))
            kind = "scatter"
        else:
            key = "user%05d" % rng.randrange(keyspace)
            finish = occupy(catalog.shard_of(key))
            kind = "single"
        simulator.schedule(finish - simulator.now, complete, kind)

    def complete(kind):
        if simulator.now <= duration + 1e-9:
            counts["completed"] += 1
            counts[kind] += 1
        issue()

    for client in range(clients):
        # stagger arrivals so the closed loop doesn't start in lockstep
        simulator.schedule(client * (service_seconds / max(clients, 1)),
                           issue)
    simulator.run(until=duration + service_seconds * 4)

    low, high = min(served), max(served)
    return ScaleOutResult(
        shards=shards, clients=clients, duration=duration,
        service_seconds=service_seconds,
        scatter_fraction=scatter_fraction,
        completed=counts["completed"], single_shard=counts["single"],
        scatter=counts["scatter"],
        throughput=counts["completed"] / duration,
        per_shard_served=list(served),
        balance_ratio=(low / float(high)) if high else 1.0,
    )
