"""The BenchLab measurement harness (drives the §II-F experiments).

``run_benchlab`` assembles one full testbed — SEPTIC-enabled database,
application, server machine, client machines with browsers — runs the
closed-loop replay and returns latency statistics.

``run_overhead_experiment`` reproduces Figure 5: for each application it
measures the original server (no SEPTIC) and the four SEPTIC detection
configurations (NN / YN / NY / YY), reporting average-latency overheads.

``run_scaling_experiment`` reproduces the §II-F ramp: 1→4 machines with
one browser each, then 8/12/16/20 browsers on four machines.
"""

from repro.benchlab.machines import BrowserClient, NetworkLink, ServerMachine
from repro.benchlab.simulation import Simulator
from repro.benchlab.workload import workload_for
from repro.core.logger import SepticLogger
from repro.core.septic import Mode, Septic, SepticConfig
from repro.sqldb.engine import Database
from repro.web.server import WebServer

#: SEPTIC detection configurations of Figure 5 (None = original MySQL)
FIG5_CONFIGS = ("baseline", "NN", "YN", "NY", "YY")


class BenchLabResult(object):
    """Latency statistics of one testbed run."""

    __slots__ = ("label", "latencies", "virtual_duration",
                 "measured_seconds", "requests", "cache_stats")

    def __init__(self, label, latencies, virtual_duration, measured_seconds,
                 cache_stats=None):
        self.label = label
        self.latencies = latencies
        self.virtual_duration = virtual_duration
        self.measured_seconds = measured_seconds
        self.requests = len(latencies)
        #: pipeline-cache counters of the database under test (``None``
        #: when the cache is disabled); the replayed workload loops over
        #: a fixed query mix, so the hit rate shows how much of the
        #: request cost the cache absorbed
        self.cache_stats = cache_stats

    @property
    def avg_latency(self):
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def p95_latency(self):
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    @property
    def throughput(self):
        if self.virtual_duration <= 0:
            return 0.0
        return self.requests / self.virtual_duration

    def overhead_vs(self, baseline):
        """Average-latency overhead relative to *baseline* (a fraction;
        multiply by 100 for the paper's percentages)."""
        if baseline.avg_latency == 0:
            return 0.0
        return (self.avg_latency - baseline.avg_latency) / \
            baseline.avg_latency

    def __repr__(self):
        return "BenchLabResult(%s, %d req, avg=%.3f ms)" % (
            self.label, self.requests, self.avg_latency * 1000.0
        )


def build_stack(app_class, septic_flags=None, mode=Mode.PREVENTION,
                training_passes=1, cache_size=512):
    """Build (server, app, septic) for one configuration.

    *septic_flags* is ``None`` for the original server (no SEPTIC) or a
    two-letter Y/N string (Figure 5 notation).  SEPTIC stacks are trained
    by replaying the workload in training mode first, like the demo.
    *cache_size* sizes the database's pipeline cache (``0`` disables it,
    for cold-path ablations).
    """
    septic = None
    if septic_flags is not None:
        septic = Septic(
            mode=Mode.TRAINING,
            config=SepticConfig.from_flags(septic_flags),
            logger=SepticLogger(verbose=False),
        )
    database = Database(name=app_class.name, septic=septic,
                        cache_size=cache_size)
    app = app_class(database)
    if septic is not None:
        for _ in range(training_passes):
            for request in app.workload_requests():
                app.handle(request)
        septic.mode = mode
    return WebServer(app), app, septic


def run_benchlab(app_class, septic_flags=None, machines=4,
                 browsers_per_machine=5, loops=5, workers=8,
                 link=None, label=None, think_time=0.0):
    """Run one full testbed configuration and collect latencies."""
    server, app, septic = build_stack(app_class, septic_flags)
    simulator = Simulator()
    station = ServerMachine(simulator, server, workers=workers)
    link = link or NetworkLink()
    workload = workload_for(app)
    browsers = []
    for machine in range(machines):
        for slot in range(browsers_per_machine):
            browser = BrowserClient(
                simulator, station, link, workload, loops,
                name="m%d-b%d" % (machine, slot),
                think_time=think_time,
            )
            # stagger starts like real browsers ramping up
            browser.start(initial_delay=0.01 * len(browsers))
            browsers.append(browser)
    simulator.run()
    latencies = []
    for browser in browsers:
        latencies.extend(browser.latencies)
    cache = app.database.pipeline_cache
    return BenchLabResult(
        label or (septic_flags or "baseline"),
        latencies,
        simulator.now,
        station.septic_seconds,
        cache_stats=cache.stats_dict() if cache is not None else None,
    )


def run_overhead_experiment(app_classes, configs=FIG5_CONFIGS, machines=4,
                            browsers_per_machine=5, loops=5, repeats=3):
    """Figure 5: average latency overhead per SEPTIC configuration.

    Returns ``{app_name: {config: overhead_fraction}}`` plus the raw
    results under the ``"_results"`` key of each app entry.  Each
    configuration is run *repeats* times and the run with the median
    average latency is kept (damps scheduler noise in the measured
    service times).
    """
    table = {}
    for app_class in app_classes:
        results = {}
        for config in configs:
            flags = None if config == "baseline" else config
            runs = [
                run_benchlab(
                    app_class, flags, machines=machines,
                    browsers_per_machine=browsers_per_machine, loops=loops,
                    label=config,
                )
                for _ in range(repeats)
            ]
            runs.sort(key=lambda r: r.avg_latency)
            results[config] = runs[len(runs) // 2]
        baseline = results["baseline"]
        overheads = {
            config: results[config].overhead_vs(baseline)
            for config in configs if config != "baseline"
        }
        overheads["_results"] = results
        table[app_class.name] = overheads
    return table


def run_scaling_experiment(app_class, loops=5, workers=8, repeats=1):
    """§II-F ramp for one application (the paper uses refbase):

    1→4 machines × 1 browser, then 4 machines × 2/3/4/5 browsers
    (8, 12, 16, 20 browsers total).  Returns a list of
    ``(total_browsers, machines, result)`` rows for the YY configuration.
    """
    steps = [(1, 1), (2, 1), (3, 1), (4, 1), (4, 2), (4, 3), (4, 4), (4, 5)]
    rows = []
    for machines, per_machine in steps:
        runs = [
            run_benchlab(
                app_class, "YY", machines=machines,
                browsers_per_machine=per_machine, loops=loops,
                workers=workers,
                label="%dx%d" % (machines, per_machine),
            )
            for _ in range(repeats)
        ]
        runs.sort(key=lambda r: r.avg_latency)
        result = runs[len(runs) // 2]
        rows.append((machines * per_machine, machines, result))
    return rows
