"""A small discrete-event simulation kernel.

Classic event-heap design: events are ``(time, sequence, callback)``
triples; :meth:`Simulator.schedule` enqueues, :meth:`Simulator.run`
drains in timestamp order.  The sequence number makes ordering total and
deterministic for simultaneous events.
"""

import heapq


class Simulator(object):
    """Event loop with a virtual clock (seconds as floats)."""

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._sequence = 0
        self._running = False
        self.events_processed = 0

    def schedule(self, delay, callback, *args):
        """Schedule *callback(*args)* at ``now + delay``."""
        if delay < 0:
            raise ValueError("cannot schedule into the past (delay=%r)"
                             % delay)
        self._sequence += 1
        heapq.heappush(
            self._heap, (self.now + delay, self._sequence, callback, args)
        )

    def run(self, until=None, max_events=None):
        """Drain the event heap.

        Stops when the heap is empty, the virtual clock passes *until*,
        or *max_events* have been processed — whichever comes first.
        Returns the number of events processed in this call.
        """
        processed = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                time, _, callback, args = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                self.now = max(self.now, time)
                callback(*args)
                processed += 1
                self.events_processed += 1
        finally:
            self._running = False
        return processed

    @property
    def pending(self):
        return len(self._heap)

    def __repr__(self):
        return "Simulator(now=%.6f, pending=%d)" % (self.now, self.pending)
