"""Crash-point sweep: prove recovery at *every* possible kill point.

The WAL's correctness claim — "after a crash, recovery yields exactly
the committed prefix" — is easy to assert and easy to get subtly wrong
(a record fsynced one byte short, a commit marker that lands before its
transaction's statements, a rolled-back write resurrected by replay).
This harness does not sample crash points; it enumerates them:

1. run a seeded workload against a WAL-backed database (per-commit
   fsync, unbuffered writes), capturing a **state digest at every
   durability point** — the exact sequence of states a client could
   have been acknowledged about;
2. read the golden log back as bytes and, for every byte offset ``X``
   from 0 to the full length, plant ``log[:X]`` in a fresh victim
   directory (plus the checkpoint file, when the workload wrote one)
   and run full recovery over it;
3. the recovered state must equal ``digests[k]`` where ``k`` counts the
   durability-point records *entirely contained* in the first ``X``
   bytes — committed-prefix consistency, computed independently of the
   recovery code under test.

Workloads include DDL (CREATE/ALTER/INDEX/TRUNCATE/DROP), transactions
(committed and rolled back), a SEPTIC-blocked statement mid-transaction
(must never resurrect — it never reached the executor), a failing
multi-row INSERT with partial effects, and ``NOW()``/``RAND()`` to
exercise deterministic replay of the environment functions.  An indexed
table with insert/update/delete churn rides along, and every recovered
victim additionally passes :func:`verify_index_consistency` — each live
index must agree with a fresh full scan, or the recovery counts as a
mismatch even when the row digest matches.
"""

import json
import os
import random
import shutil
from bisect import bisect_right
from hashlib import sha1

from repro.sqldb import pager as pager_mod
from repro.sqldb import wal as wal_mod
from repro.sqldb.pager import SimulatedCrash
from repro.sqldb.connection import Connection
from repro.sqldb.engine import Database
from repro.sqldb.errors import QueryBlocked
from repro.sqldb.types import sort_key


class MarkerSeptic(object):
    """A deterministic stand-in for SEPTIC: blocks any statement whose
    text carries the attack marker.  The sweep needs "a query was
    dropped mid-transaction" as a workload event, not a full trained
    stack."""

    MARKER = "evil"

    def __init__(self):
        self.blocked = 0

    def process_query(self, context):
        if self.MARKER in context.sql:
            self.blocked += 1
            raise QueryBlocked("blocked by marker septic")


def state_digest(database):
    """Stable digest of everything the WAL promises to preserve: every
    table's schema, rows (in order), auto-increment counter and
    indexes."""
    body = {
        name: database.tables[name].to_dict()
        for name in sorted(database.tables)
    }
    blob = json.dumps(body, sort_keys=True)
    return sha1(blob.encode("utf-8")).hexdigest()


def verify_index_consistency(database):
    """Cross-check every live index of *database* against a full scan.

    For each indexed column: every distinct key's ``index_lookup`` must
    return exactly the rows a fresh scan finds for that key, and the
    open-ended ``index_range`` must return exactly the non-NULL rows.
    Returns a list of human-readable problem strings (empty = healthy).
    Rows are compared by identity — an index that returns equal-looking
    copies instead of the table's own row objects is still broken.
    """
    problems = []
    for name in sorted(database.tables):
        table = database.tables[name]
        for column in sorted(table.indexed_columns()):
            by_key = {}
            for row in table.rows:
                by_key.setdefault(sort_key(row.get(column)), []).append(row)
            for expected in by_key.values():
                value = expected[0].get(column)
                got = table.index_lookup(column, value)
                if sorted(map(id, got)) != sorted(map(id, expected)):
                    problems.append(
                        "%s.%s: lookup(%r) -> %d rows, scan -> %d"
                        % (name, column, value, len(got), len(expected))
                    )
            non_null = [row for row in table.rows
                        if row.get(column) is not None]
            ranged = table.index_range(column)
            if sorted(map(id, ranged)) != sorted(map(id, non_null)):
                problems.append(
                    "%s.%s: open range -> %d rows, scan -> %d"
                    % (name, column, len(ranged), len(non_null))
                )
    return problems


def generate_workload(seed):
    """A deterministic operation list for *seed*.

    Each entry is ``(kind, sql)`` with kind ``"q"`` (single statement)
    or ``"m"`` (multi-statement script).  Every operation produces at
    most one durability point, so the golden digest sequence captures
    every state a client could have been acknowledged about.
    """
    rng = random.Random(seed)
    names = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]

    def insert():
        return (
            "INSERT INTO items (name, qty, added) "
            "VALUES ('%s%d', %d, NOW())"
            % (rng.choice(names), rng.randrange(100), rng.randrange(50))
        )

    ops = [("q", "CREATE TABLE items (id INT AUTO_INCREMENT PRIMARY KEY, "
                 "name VARCHAR(40), qty INT, added DATETIME)")]
    for _ in range(rng.randrange(3, 5)):
        ops.append(("q", insert()))
    # consumes RNG draws without being logged: replay must fast-forward
    ops.append(("q", "SELECT RAND(), COUNT(*) FROM items"))
    # a logged statement that *uses* the RNG (replays bit-identically)
    ops.append(("q", "INSERT INTO items (name, qty) "
                     "VALUES ('randy', RAND() * 100)"))
    # multi-statement committed transaction
    ops.append(("m", "BEGIN; %s; UPDATE items SET qty = qty + %d "
                     "WHERE id = 1; COMMIT"
                     % (insert(), rng.randrange(2, 9))))
    # DDL mid-stream
    ops.append(("q", "ALTER TABLE items ADD COLUMN note VARCHAR(20) "
                     "DEFAULT 'ok'"))
    ops.append(("q", "CREATE INDEX idx_name ON items (name)"))
    ops.append(("q", insert()))
    # an indexed table with churn: inserts, an update that moves rows
    # between index buckets, a delete, and a NULL key — the sweep
    # cross-checks every recovered index against a full scan
    ops.append(("q", "CREATE TABLE ledger (acct INT, amount INT, "
                     "tag VARCHAR(10))"))
    ops.append(("q", "CREATE INDEX idx_acct ON ledger (acct)"))
    for _ in range(3):
        ops.append(("q", "INSERT INTO ledger (acct, amount, tag) "
                         "VALUES (%d, %d, '%s')"
                         % (rng.randrange(4), rng.randrange(100),
                            rng.choice(names)[:4])))
    ops.append(("q", "UPDATE ledger SET acct = acct + 1 "
                     "WHERE amount > 40"))
    ops.append(("q", "INSERT INTO ledger (acct, amount, tag) "
                     "VALUES (NULL, %d, 'nil')" % rng.randrange(9)))
    ops.append(("q", "DELETE FROM ledger WHERE acct = %d"
                     % rng.randrange(4)))
    # a second table: create, fill, truncate, drop
    ops.append(("q", "CREATE TABLE scratch (k INT, v VARCHAR(10))"))
    ops.append(("q", "INSERT INTO scratch (k, v) VALUES (%d, 'tmp')"
                     % rng.randrange(9)))
    ops.append(("q", "TRUNCATE TABLE scratch"))
    ops.append(("q", "DROP TABLE scratch"))
    # rolled-back transaction: must never resurrect
    ops.append(("m", "BEGIN; INSERT INTO items (name, qty) "
                     "VALUES ('ghost', 1); DELETE FROM items "
                     "WHERE id = 2; ROLLBACK"))
    # SEPTIC blocks the second statement mid-transaction; the script
    # stops there and the client closes the transaction explicitly —
    # the committed unit holds the first UPDATE only, never the attack
    ops.append(("m", "BEGIN; UPDATE items SET note = 'tx' WHERE id = 1; "
                     "UPDATE items SET note = '%s' WHERE qty >= 0; "
                     "COMMIT" % MarkerSeptic.MARKER))
    ops.append(("q", "COMMIT"))
    # failing multi-row INSERT: the first row sticks (partial effects),
    # the duplicate key fails the statement — logged as failed=True
    ops.append(("q", "INSERT INTO items (id, name, qty) "
                     "VALUES (70, 'keeper', 1), (70, 'dup', 2)"))
    for _ in range(rng.randrange(2, 4)):
        ops.append(("q", insert()))
    return ops


class WorkloadRun(object):
    """Golden-run artifacts the sweep validates against."""

    __slots__ = ("digests", "checkpoint_index", "blocked", "ops",
                 "max_unsynced_backlog")

    def __init__(self, digests, checkpoint_index, blocked, ops,
                 max_unsynced_backlog=0):
        #: state digest after durability point ``k`` (``digests[0]`` is
        #: the empty database)
        self.digests = digests
        #: durability-point count at the checkpoint, or ``None``
        self.checkpoint_index = checkpoint_index
        #: statements the marker septic dropped during the run
        self.blocked = blocked
        #: operations executed
        self.ops = ops
        #: high-water mark of acknowledged-but-unsynced commits during
        #: the run (always 0 in ``commit`` sync mode; in ``batch`` mode
        #: this proves the append-to-deferred-fsync kill window was
        #: actually open while the workload ran)
        self.max_unsynced_backlog = max_unsynced_backlog


def run_workload(data_dir, seed, sync_mode="commit", checkpoint_after=None):
    """Execute the seed's workload durably, digesting every durability
    point.  ``checkpoint_after`` (an op index) writes a mid-workload
    checkpoint, so the sweep also covers checkpoint+log recovery."""
    septic = MarkerSeptic()
    database = Database.recover(data_dir, seed=seed, septic=septic,
                                wal_sync=sync_mode)
    connection = Connection(database, multi_statements=True)
    digests = [state_digest(database)]
    checkpoint_index = None
    ops = generate_workload(seed)
    last = database.wal.commits
    max_backlog = 0
    for index, (kind, sql) in enumerate(ops):
        if kind == "m":
            connection.multi_query(sql)
        else:
            connection.query(sql)
        commits = database.wal.commits
        if commits - last > 1:
            raise AssertionError(
                "workload op %d produced %d durability points; the "
                "golden digest sequence needs at most one per op"
                % (index, commits - last)
            )
        if commits > last:
            digests.append(state_digest(database))
            last = commits
        backlog = database.wal.pending_unsynced_commits
        if backlog > max_backlog:
            max_backlog = backlog
        if checkpoint_after is not None and index == checkpoint_after:
            if database.checkpoint() is not None:
                checkpoint_index = len(digests) - 1
    database.close()
    return WorkloadRun(digests, checkpoint_index, septic.blocked, ops,
                       max_unsynced_backlog=max_backlog)


class SweepResult(object):
    """Outcome of one crash-point sweep."""

    __slots__ = ("seed", "log_bytes", "offsets_tested",
                 "durability_points", "blocked", "mismatches",
                 "index_mismatches", "checkpointed", "sync_mode",
                 "max_unsynced_backlog")

    def __init__(self, seed, log_bytes, offsets_tested, durability_points,
                 blocked, mismatches, checkpointed, index_mismatches=(),
                 sync_mode="commit", max_unsynced_backlog=0):
        self.seed = seed
        self.log_bytes = log_bytes
        self.offsets_tested = offsets_tested
        self.durability_points = durability_points
        self.blocked = blocked
        #: (offset, expected_index) pairs where recovery diverged
        self.mismatches = mismatches
        #: (offset, problem) pairs where a recovered index disagreed
        #: with a full scan
        self.index_mismatches = list(index_mismatches)
        self.checkpointed = checkpointed
        #: WAL sync discipline the golden run used
        self.sync_mode = sync_mode
        #: peak acked-but-unsynced commit backlog of the golden run
        self.max_unsynced_backlog = max_unsynced_backlog

    @property
    def ok(self):
        return not self.mismatches and not self.index_mismatches

    def __repr__(self):
        return ("SweepResult(seed=%r, %d bytes, %d offsets, %d commits, "
                "%d mismatches)") % (self.seed, self.log_bytes,
                                     self.offsets_tested,
                                     self.durability_points,
                                     len(self.mismatches))


def run_crash_sweep(workdir, seed, checkpoint_after=None, stride=1,
                    sync_mode="commit"):
    """Kill-at-every-byte sweep for one seeded workload.

    With ``stride > 1`` only every stride-th offset is tested (plus the
    final one); record boundaries are always included, since those are
    the offsets where the expected state changes.

    With ``sync_mode="batch"`` the golden run defers fsyncs (group
    commit), so the byte prefixes enumerate crashes *inside* the
    append-to-deferred-fsync window — commits acknowledged to the
    client but not yet synced.  The invariant is the same: every
    prefix must recover to exactly the committed states its bytes
    contain, never a torn or phantom one; batch mode merely makes more
    of those prefixes reachable by a real power cut (bounded loss,
    quantified by :attr:`SweepResult.max_unsynced_backlog`).
    """
    golden_dir = os.path.join(workdir, "golden-%s" % seed)
    run = run_workload(golden_dir, seed, sync_mode=sync_mode,
                       checkpoint_after=checkpoint_after)
    data = wal_mod.read_log_bytes(wal_mod.log_path(golden_dir))
    # durability-point frame ends, computed from the bytes themselves —
    # independent of the recovery code the sweep is judging
    ends = []
    for record, end in wal_mod.iter_frames(data):
        is_commit_point = record.op == wal_mod.WalRecord.COMMIT or (
            record.op == wal_mod.WalRecord.STMT and record.tx == 0
        )
        if is_commit_point:
            ends.append(end)
    base_index = run.checkpoint_index or 0
    offsets = sorted(set(
        list(range(0, len(data) + 1, stride)) + [len(data)]
        + [end for _record, end in wal_mod.iter_frames(data)]
    ))
    checkpoint_src = wal_mod.checkpoint_path(golden_dir)
    checkpointed = os.path.exists(checkpoint_src)
    victim_dir = os.path.join(workdir, "victim-%s" % seed)
    mismatches = []
    index_mismatches = []
    for offset in offsets:
        shutil.rmtree(victim_dir, ignore_errors=True)
        os.makedirs(victim_dir)
        if checkpointed:
            shutil.copy(checkpoint_src,
                        wal_mod.checkpoint_path(victim_dir))
        wal_mod.write_log_bytes(wal_mod.log_path(victim_dir),
                                data[:offset])
        expected = base_index + bisect_right(ends, offset)
        recovered = Database.recover(victim_dir, seed=seed)
        digest = state_digest(recovered)
        for problem in verify_index_consistency(recovered):
            index_mismatches.append((offset, problem))
        recovered.close()
        if digest != run.digests[expected]:
            mismatches.append((offset, expected))
    shutil.rmtree(victim_dir, ignore_errors=True)
    return SweepResult(seed, len(data), len(offsets), len(ends),
                       run.blocked, mismatches, checkpointed,
                       index_mismatches=index_mismatches,
                       sync_mode=sync_mode,
                       max_unsynced_backlog=run.max_unsynced_backlog)


def format_sweep_result(result):
    """Human-readable sweep report (the benchmark artifact body)."""
    return (
        "crash sweep seed=%s sync=%s: %d log bytes, %d kill offsets, "
        "%d durability points, %d blocked statements, checkpoint=%s -> %s"
        % (result.seed, result.sync_mode, result.log_bytes,
           result.offsets_tested, result.durability_points,
           result.blocked, result.checkpointed,
           "OK" if result.ok else "%d MISMATCHES"
           % (len(result.mismatches) + len(result.index_mismatches)))
    )


# -- failover sweep (kill the primary at every commit boundary) --------------


class FailoverSweepResult(object):
    """Outcome of one kill-the-primary-at-every-commit sweep."""

    __slots__ = ("seed", "replicas", "commit_points", "promotions",
                 "wrong_elections", "digest_mismatches", "index_mismatches",
                 "catchup_mismatches", "fenced_rejects", "fencing_failures",
                 "blocked")

    def __init__(self, seed, replicas, commit_points, promotions,
                 wrong_elections, digest_mismatches, index_mismatches,
                 catchup_mismatches, fenced_rejects, fencing_failures,
                 blocked):
        self.seed = seed
        self.replicas = replicas
        #: durability points of the golden run (= kill points swept)
        self.commit_points = commit_points
        #: successful promotions observed (must equal commit_points + 1:
        #: one per kill point plus the zombie scenario)
        self.promotions = promotions
        #: (k, elected, expected) where election did not pick the
        #: max-applied-LSN replica
        self.wrong_elections = wrong_elections
        #: (k, node) where a post-promotion state diverged from the
        #: golden digest at the kill point — a lost committed
        #: transaction or a phantom
        self.digest_mismatches = digest_mismatches
        #: (k, problem) index-vs-scan disagreements on the new primary
        self.index_mismatches = index_mismatches
        #: (k, node) where the healed lagging replica failed to converge
        self.catchup_mismatches = catchup_mismatches
        #: stale-epoch batches rejected in the zombie scenario (> 0)
        self.fenced_rejects = fenced_rejects
        #: descriptions of fencing holes (zombie records accepted)
        self.fencing_failures = fencing_failures
        #: statements the marker septic dropped during the golden run
        self.blocked = blocked

    @property
    def ok(self):
        return (not self.wrong_elections and not self.digest_mismatches
                and not self.index_mismatches
                and not self.catchup_mismatches
                and not self.fencing_failures
                and self.fenced_rejects > 0
                and self.promotions == self.commit_points + 1)

    def __repr__(self):
        return ("FailoverSweepResult(seed=%r, %d commit points, "
                "%d promotions, %d wrong elections, %d digest mismatches)"
                % (self.seed, self.commit_points, self.promotions,
                   len(self.wrong_elections),
                   len(self.digest_mismatches)))


def _drive_until_commit(replica_set, connection, ops, target, lag_after,
                        lag_node):
    """Run *ops* against the primary, synchronously shipping after each
    op, until its WAL holds *target* durability points.  *lag_node* is
    partitioned once *lag_after* commits land, so it falls behind and
    the election has a real choice to get right."""
    primary_wal = replica_set.primary.database.wal
    for kind, sql in ops:
        if kind == "m":
            connection.multi_query(sql)
        else:
            connection.query(sql)
        replica_set.ship()
        commits = primary_wal.commits
        if lag_after is not None and commits >= lag_after:
            if lag_node.name not in replica_set._partitioned:
                replica_set.partition(lag_node)
            lag_after = None
        if commits >= target:
            return commits
    return primary_wal.commits


def _await_promotion(replica_set):
    """Advance virtual time until the lease expires and an election
    completes (bounded — a sweep must fail loudly, not hang)."""
    deadline = (replica_set.clock + replica_set.lease_ticks
                + 4 * replica_set.heartbeat_interval)
    before = replica_set.promotions
    while replica_set.promotions == before and replica_set.clock < deadline:
        replica_set.tick(1)
    return replica_set.promotions > before


def run_failover_sweep(workdir, seed, replicas=2):
    """Kill the primary at every commit boundary of the seed's workload.

    For each durability point ``k`` of the golden run: build a fresh
    replica set, replay the workload with synchronous shipping until the
    primary has acknowledged exactly ``k`` commits (partitioning the
    last replica halfway so one candidate genuinely lags), crash the
    primary, and let the heartbeat/lease machinery elect.  The elected
    node must be the max-applied-LSN replica, its state must equal the
    golden digest at ``k`` (zero committed transactions lost, zero
    phantoms), its indexes must agree with a full scan, and the healed
    lagging replica must converge to the same state from the new
    primary's log.  One extra scenario per seed partitions the primary
    instead of killing it and asserts every post-promotion record the
    zombie ships is rejected by epoch fencing.
    """
    from repro.replica import ReplicaSet

    golden_dir = os.path.join(workdir, "failover-golden-%s" % seed)
    run = run_workload(golden_dir, seed)
    commit_points = len(run.digests) - 1
    set_dir = os.path.join(workdir, "failover-set-%s" % seed)
    promotions = 0
    wrong_elections = []
    digest_mismatches = []
    index_mismatches = []
    catchup_mismatches = []

    def build_set():
        shutil.rmtree(set_dir, ignore_errors=True)
        replica_set = ReplicaSet(
            set_dir, replicas=replicas, septic_factory=MarkerSeptic,
            seed=seed, heartbeat_interval=1, lease_intervals=2,
        )
        connection = Connection(replica_set.primary.database,
                                multi_statements=True)
        return replica_set, connection

    for k in range(1, commit_points + 1):
        replica_set, connection = build_set()
        lag_node = replica_set.nodes[-1]
        lag_after = (k + 1) // 2 if k >= 2 else None
        _drive_until_commit(replica_set, connection, run.ops, k,
                            lag_after, lag_node)
        replica_set.kill_primary()
        if not _await_promotion(replica_set):
            wrong_elections.append((k, None, "no promotion"))
            replica_set.close()
            continue
        promotions += 1
        new_primary = replica_set.primary
        candidates = [node for node in replica_set.nodes[1:]]
        expected = sorted(
            candidates, key=lambda n: (-n.applied_lsn, n.name))[0]
        if new_primary is not expected:
            wrong_elections.append((k, new_primary.name, expected.name))
        if state_digest(new_primary.database) != run.digests[k]:
            digest_mismatches.append((k, new_primary.name))
        for problem in verify_index_consistency(new_primary.database):
            index_mismatches.append((k, problem))
        # the lagging replica heals and converges from the new primary
        if k >= 2:
            replica_set.heal(lag_node)
            replica_set.tick(2 * replica_set.heartbeat_interval)
            if (lag_node.alive and lag_node.role == "replica"
                    and state_digest(lag_node.database) != run.digests[k]):
                catchup_mismatches.append((k, lag_node.name))
        replica_set.close()

    # zombie scenario: partition (not kill) the primary mid-workload,
    # let the survivors elect, then have the deposed primary keep
    # committing and shipping — fencing must reject every record
    fenced_rejects = 0
    fencing_failures = []
    k = max(1, commit_points // 2)
    replica_set, connection = build_set()
    _drive_until_commit(replica_set, connection, run.ops, k, None, None)
    zombie = replica_set.primary
    replica_set.partition(zombie)
    if not _await_promotion(replica_set):
        fencing_failures.append("no promotion in the zombie scenario")
    else:
        promotions += 1
        replica_set.tick(replica_set.heartbeat_interval)
        survivor_digests = {
            node.name: state_digest(node.database)
            for node in replica_set.nodes if node is not zombie
        }
        zombie_conn = Connection(zombie.database)
        zombie_conn.query(
            "INSERT INTO items (name, qty) VALUES ('zombie', 13)")
        before = [node.fenced_batches for node in replica_set.nodes]
        replica_set.ship(source=zombie)
        for node, count in zip(replica_set.nodes, before):
            fenced_rejects += node.fenced_batches - count
        for node in replica_set.nodes:
            if node is zombie:
                continue
            if state_digest(node.database) != survivor_digests[node.name]:
                fencing_failures.append(
                    "%s state changed after a zombie shipment" % node.name)
        if fenced_rejects == 0:
            fencing_failures.append(
                "no survivor fenced the zombie's batches")
    replica_set.close()
    shutil.rmtree(set_dir, ignore_errors=True)
    return FailoverSweepResult(
        seed, replicas, commit_points, promotions, wrong_elections,
        digest_mismatches, index_mismatches, catchup_mismatches,
        fenced_rejects, fencing_failures, run.blocked,
    )


def format_failover_result(result):
    """Human-readable failover-sweep report (benchmark artifact body)."""
    return (
        "failover sweep seed=%s: %d commit-boundary kills over %d-replica "
        "sets, %d promotions, %d blocked statements, %d fenced zombie "
        "batches -> %s"
        % (result.seed, result.commit_points, result.replicas,
           result.promotions, result.blocked, result.fenced_rejects,
           "OK" if result.ok else "%d PROBLEMS"
           % (len(result.wrong_elections) + len(result.digest_mismatches)
              + len(result.index_mismatches)
              + len(result.catchup_mismatches)
              + len(result.fencing_failures)))
    )


def _row_fingerprint(row):
    """Stable value-based identity for a row image.  The in-memory
    verifier compares object identities, which is meaningless for paged
    tables: a row evicted and re-read comes back as a fresh dict."""
    return sha1(
        json.dumps(row, sort_keys=True, default=str).encode("utf-8")
    ).hexdigest()


def verify_paged_consistency(database):
    """Cross-check every index against a full scan, by value.

    For each indexed column the rows from ``index_lookup_iter`` /
    ``index_range_iter`` must be exactly the scan rows with the matching
    key (as a multiset of row fingerprints), and range scans must come
    back in key order.  Works on any storage backend because it never
    touches backend internals — only the scan/lookup iterator API the
    plan layer itself uses."""
    problems = []
    for name in sorted(database.tables):
        table = database.tables[name]
        scanned = list(table.iter_rows())
        if table.row_count() != len(scanned):
            problems.append("%s: row_count %d != scanned %d"
                            % (name, table.row_count(), len(scanned)))
        for column in sorted(table.indexed_columns()):
            groups = {}
            for row in scanned:
                value = row.get(column)
                if value is None:
                    continue
                entry = groups.setdefault(sort_key(value), (value, []))
                entry[1].append(_row_fingerprint(row))
            for value, expected in groups.values():
                got = sorted(_row_fingerprint(r)
                             for r in table.index_lookup_iter(column, value))
                if got != sorted(expected):
                    problems.append(
                        "%s.%s=%r: lookup %d rows, scan %d"
                        % (name, column, value, len(got), len(expected)))
            non_null = sorted(_row_fingerprint(r) for r in scanned
                              if r.get(column) is not None)
            ranged = list(table.index_range_iter(column))
            keys = [sort_key(r.get(column)) for r in ranged]
            if keys != sorted(keys):
                problems.append("%s.%s: range scan out of key order"
                                % (name, column))
            if sorted(_row_fingerprint(r) for r in ranged) != non_null:
                problems.append("%s.%s: range scan row set != scan"
                                % (name, column))
    return problems


def _run_paged_workload(data_dir, seed, pool_pages, checkpoint_after,
                        crash_plan=None):
    """Run the seed's workload on paged storage, digesting every
    durability point, with a mid-workload checkpoint and a final
    checkpoint (the big page-write burst the kill sweep targets).

    With ``crash_plan`` ``(write_index, byte_offset)`` a crash is
    planted before the first op, in whole-run raw-write coordinates.
    Returns ``(database, digests, total_raw_writes, blocked)`` —
    ``total_raw_writes`` is ``None`` when the plan fired (the database
    is returned un-closed, mid-crash, for the caller to reopen)."""
    septic = MarkerSeptic()
    database = Database.recover(data_dir, seed=seed, septic=septic,
                                wal_sync="commit", storage="paged",
                                pool_pages=pool_pages)
    if crash_plan is not None:
        database.page_store.pager.plant_crash(*crash_plan)
    connection = Connection(database, multi_statements=True)
    digests = [state_digest(database)]
    ops = generate_workload(seed)
    if checkpoint_after is None:
        checkpoint_after = len(ops) // 2
    last = database.wal.commits
    try:
        for index, (kind, sql) in enumerate(ops):
            if kind == "m":
                connection.multi_query(sql)
            else:
                connection.query(sql)
            commits = database.wal.commits
            if commits - last > 1:
                raise AssertionError(
                    "workload op %d produced %d durability points"
                    % (index, commits - last))
            if commits > last:
                digests.append(state_digest(database))
                last = commits
            if index == checkpoint_after:
                database.checkpoint()
        database.checkpoint()
    except SimulatedCrash:
        return database, digests, None, septic.blocked
    return (database, digests, database.page_store.pager.raw_writes,
            septic.blocked)


class PagedSweepResult(object):
    """Outcome of a kill-at-every-page-write sweep on paged storage."""

    __slots__ = ("seed", "raw_writes", "kills", "offsets",
                 "durability_points", "blocked", "mismatches",
                 "consistency_problems", "rebuilds", "dw_applied",
                 "torn_repaired")

    def __init__(self, seed, raw_writes, kills, offsets,
                 durability_points, blocked, mismatches,
                 consistency_problems, rebuilds, dw_applied,
                 torn_repaired):
        #: workload seed
        self.seed = seed
        #: raw page-file writes in the golden run (kill coordinate space)
        self.raw_writes = raw_writes
        #: crashes actually exercised (kill points x byte offsets)
        self.kills = kills
        #: byte offsets tried at each write
        self.offsets = offsets
        #: durability points in the golden run
        self.durability_points = durability_points
        #: statements the marker septic dropped
        self.blocked = blocked
        #: (write_index, offset, commits) where the recovered digest
        #: diverged from the golden digest — lost commits / phantoms
        self.mismatches = mismatches
        #: (write_index, offset, problem) index-vs-scan violations
        self.consistency_problems = consistency_problems
        #: (write_index, offset, entry) tables recovery had to rebuild
        #: from logical rows — torn writes must instead be repaired
        #: in place from the doublewrite area, so this stays empty
        self.rebuilds = rebuilds
        #: doublewrite images applied across all recoveries
        self.dw_applied = dw_applied
        #: torn home pages repaired across all recoveries
        self.torn_repaired = torn_repaired

    @property
    def ok(self):
        return (self.kills > 0 and not self.mismatches
                and not self.consistency_problems and not self.rebuilds)


def run_paged_crash_sweep(workdir, seed, pool_pages=4, checkpoint_after=None,
                          stride=1, offsets=None):
    """Kill the engine at every raw page-file write x byte offset.

    A golden paged run fixes the write schedule (spill flushes during
    the workload under a small pool, then the checkpoint's doublewrite
    body, seal and sorted home writes) and the digest at every
    durability point.  Each victim replays the same deterministic
    workload with a crash planted at one ``(write_index, byte_offset)``
    — the write is truncated at the offset and the process "dies".
    Recovery (:meth:`Database.reopen`) must then reproduce the golden
    digest for the durable commit count, repair every torn page from
    the doublewrite area (never by rebuilding a table), and leave every
    index consistent with a full scan."""
    if offsets is None:
        half = pager_mod.DEFAULT_PAGE_SIZE // 2
        offsets = (0, 1, half, pager_mod.DEFAULT_PAGE_SIZE - 1)
    golden_dir = os.path.join(workdir, "paged-golden-%s" % seed)
    shutil.rmtree(golden_dir, ignore_errors=True)
    database, digests, total, blocked = _run_paged_workload(
        golden_dir, seed, pool_pages, checkpoint_after)
    if total is None:
        raise AssertionError("golden paged run crashed without a plan")
    database.close()
    shutil.rmtree(golden_dir, ignore_errors=True)

    kills = 0
    mismatches = []
    consistency_problems = []
    rebuilds = []
    dw_applied = 0
    torn_repaired = 0
    victim_dir = os.path.join(workdir, "paged-victim-%s" % seed)
    for write_index in range(0, total, stride):
        for offset in offsets:
            shutil.rmtree(victim_dir, ignore_errors=True)
            database, _victim_digests, done, _ = _run_paged_workload(
                victim_dir, seed, pool_pages, checkpoint_after,
                crash_plan=(write_index, offset))
            if done is not None:
                # the plan never fired (schedule drift) — a correctness
                # bug in the sweep itself, not the engine
                database.close()
                raise AssertionError(
                    "no crash at write %d (golden schedule has %d)"
                    % (write_index, total))
            commits = database.wal.commits
            database.reopen()
            report = (database.recovery_report or {}).get("pages") or {}
            dw_applied += report.get("dw_applied", 0)
            torn_repaired += report.get("torn_repaired", 0)
            for entry in report.get("rebuilt_tables") or []:
                rebuilds.append((write_index, offset, entry))
            if (commits >= len(digests)
                    or state_digest(database) != digests[commits]):
                mismatches.append((write_index, offset, commits))
            for problem in verify_paged_consistency(database):
                consistency_problems.append((write_index, offset, problem))
            database.close()
            kills += 1
    shutil.rmtree(victim_dir, ignore_errors=True)
    return PagedSweepResult(
        seed, total, kills, tuple(offsets), len(digests) - 1, blocked,
        mismatches, consistency_problems, rebuilds, dw_applied,
        torn_repaired,
    )


def format_paged_sweep_result(result):
    """Human-readable paged-sweep report (benchmark artifact body)."""
    return (
        "paged crash sweep seed=%s: %d kills over %d raw writes x %d "
        "offsets, %d durability points, %d blocked statements, "
        "%d doublewrite images applied, %d torn pages repaired -> %s"
        % (result.seed, result.kills, result.raw_writes,
           len(result.offsets), result.durability_points, result.blocked,
           result.dw_applied, result.torn_repaired,
           "OK" if result.ok else "%d PROBLEMS"
           % (len(result.mismatches) + len(result.consistency_problems)
              + len(result.rebuilds)))
    )


class CorruptionSweepResult(object):
    """Outcome of a seeded bit-flip corruption sweep."""

    __slots__ = ("seed", "injected", "detected", "repairs",
                 "repairs_by_source", "false_repairs", "unrepaired",
                 "digest_ok", "blocked")

    def __init__(self, seed, injected, detected, repairs,
                 repairs_by_source, false_repairs, unrepaired, digest_ok,
                 blocked):
        self.seed = seed
        #: single-bit flips written to the page file
        self.injected = injected
        #: flips the scrubber caught as fresh corruptions
        self.detected = detected
        #: successful repairs, total and per source
        self.repairs = repairs
        self.repairs_by_source = repairs_by_source
        #: intact pages the scrubber tried to rewrite (must stay 0)
        self.false_repairs = false_repairs
        #: pages still quarantined at the end (must stay 0)
        self.unrepaired = unrepaired
        #: logical state unchanged after all repairs
        self.digest_ok = digest_ok
        self.blocked = blocked

    @property
    def ok(self):
        return (self.injected > 0 and self.detected == self.injected
                and self.unrepaired == 0 and self.false_repairs == 0
                and self.digest_ok)


def run_corruption_sweep(workdir, seed, flips=6, pool_pages=6):
    """Flip one seeded bit per round in the page file, then scrub.

    Every flip must be detected on the next full scrub pass (CRC32
    covers the whole page, so any single-bit flip breaks it), repaired
    from one of the scrubber's sources without changing logical state,
    and never trigger a rewrite of an intact page.  Pages are re-listed
    each round because a WAL-redo repair rebuilds the owning table onto
    fresh pages."""
    data_dir = os.path.join(workdir, "corrupt-%s" % seed)
    shutil.rmtree(data_dir, ignore_errors=True)
    database, _digests, total, blocked = _run_paged_workload(
        data_dir, seed, pool_pages, None)
    if total is None:
        raise AssertionError("corruption-sweep setup run crashed")
    baseline = state_digest(database)
    scrubber = database.page_store.scrubber
    rng = random.Random("corrupt-%s" % seed)
    injected = 0
    detected = 0
    for _ in range(flips):
        pages = sorted({page for table in database.tables.values()
                        for page in table.pages()})
        if not pages:
            break
        page_no = rng.choice(pages)
        bit = rng.randrange(database.page_store.pager.page_size * 8)
        before = scrubber.detected
        pager_mod.flip_page_bit(data_dir, page_no, bit,
                                page_size=database.page_store.pager.page_size)
        injected += 1
        scrubber.scan_all()
        if scrubber.detected == before + 1:
            detected += 1
    scrubber.scan_all()     # a clean pass: everything must verify again
    stats = scrubber.stats_dict()
    unrepaired = stats["quarantined"]
    digest_ok = state_digest(database) == baseline
    database.close()
    shutil.rmtree(data_dir, ignore_errors=True)
    return CorruptionSweepResult(
        seed, injected, detected, stats["scrub_repairs"],
        dict(stats["repairs_by_source"]), stats["false_repairs"],
        unrepaired, digest_ok, blocked,
    )


def format_corruption_result(result):
    """Human-readable corruption-sweep report."""
    sources = ", ".join("%s=%d" % pair for pair in
                        sorted(result.repairs_by_source.items())) or "none"
    return (
        "corruption sweep seed=%s: %d bit flips, %d detected, %d "
        "repaired (%s), %d false repairs, %d unrepaired -> %s"
        % (result.seed, result.injected, result.detected, result.repairs,
           sources, result.false_repairs, result.unrepaired,
           "OK" if result.ok else "PROBLEMS")
    )


# -- sharded crash sweep ------------------------------------------------
#
# The cross-shard extension of the failover sweep: a hash-sharded fleet
# (each shard its own replica set) runs a keyed workload through the
# ShardRouter, and the sweep kills *any shard's* primary at *every*
# commit boundary, issuing a scatter read mid-failover each time.  The
# guarantees under test:
#
# * no lost rows — every write acked before the kill survives the
#   shard's election;
# * no phantom rows — nothing unacked resurrects;
# * no torn cross-shard reads — a scatter COUNT/SUM issued while one
#   shard is electing must still see exactly the committed prefix on
#   every shard (the router's virtual-tick retry rides the failover);
# * SEPTIC blocks stay side-effect-free fleet-wide (the marker septic
#   runs per shard).


def generate_sharded_workload(seed, writes=10):
    """Deterministic keyed ops for one sharded sweep.

    Returns ``(kind, sql)`` pairs: ``"w"`` single-shard writes and
    broadcast DDL (each a commit boundary), ``"r"`` cross-shard scatter
    reads, ``"x"`` statements the marker septic must block."""
    rng = random.Random(seed)
    pool = ["alice", "bob", "carol", "dave", "erin", "frank", "grace",
            "heidi", "ivan", "judy", "mallory", "nina", "oscar", "peggy"]
    ops = [("w", "CREATE TABLE accounts (owner VARCHAR(12) PRIMARY KEY, "
                 "amount INT)")]
    live = []
    spare = list(pool)
    emitted = 0
    while emitted < writes and (spare or live):
        roll = rng.random()
        if live and roll < 0.25:
            owner = rng.choice(live)
            ops.append(("w", "UPDATE accounts SET amount = amount + %d "
                             "WHERE owner = '%s'"
                             % (rng.randrange(1, 50), owner)))
        elif live and roll < 0.35:
            owner = live.pop(rng.randrange(len(live)))
            ops.append(("w", "DELETE FROM accounts WHERE owner = '%s'"
                        % owner))
        elif spare:
            owner = spare.pop(rng.randrange(len(spare)))
            live.append(owner)
            ops.append(("w", "INSERT INTO accounts (owner, amount) "
                             "VALUES ('%s', %d)"
                             % (owner, rng.randrange(100))))
        else:
            continue
        emitted += 1
        if rng.random() < 0.4:
            ops.append(("r", "SELECT COUNT(*), SUM(amount) FROM accounts"))
    # one blocked single-shard write and one blocked scatter read: both
    # must be fleet-wide no-ops
    if live:
        ops.append(("x", "UPDATE accounts SET amount = 666 "
                         "WHERE owner = '%s' -- evil" % live[0]))
    ops.append(("x", "SELECT COUNT(*) FROM accounts WHERE owner != 'evil'"))
    ops.append(("r", "SELECT owner, amount FROM accounts "
                     "ORDER BY amount DESC, owner LIMIT 3"))
    return ops


def fleet_digest(router):
    """Combined digest over every shard primary (order-stable)."""
    parts = []
    for shard in range(router.shard_count):
        database = router.primary_database(shard)
        parts.append("" if database is None else state_digest(database))
    return sha1("|".join(parts).encode("ascii")).hexdigest()


def _fleet_totals(router):
    """(row_count, amount_sum) straight off the shard primaries — the
    ground truth a scatter read must agree with."""
    count = 0
    total = 0
    for shard in range(router.shard_count):
        database = router.primary_database(shard)
        if database is None or "accounts" not in database.tables:
            continue
        for row in database.tables["accounts"].rows:
            count += 1
            total += row.get("amount") or 0
    return count, total


class ShardedSweepResult(object):
    """Outcome of one kill-any-shard-primary-at-every-commit sweep."""

    __slots__ = ("seed", "shards", "replicas", "boundaries", "kills",
                 "promotions", "torn_reads", "lost_rows", "phantom_rows",
                 "digest_mismatches", "index_mismatches", "blocked",
                 "scatter_reads")

    def __init__(self, seed, shards, replicas, boundaries, kills,
                 promotions, torn_reads, lost_rows, phantom_rows,
                 digest_mismatches, index_mismatches, blocked,
                 scatter_reads):
        self.seed = seed
        self.shards = shards
        self.replicas = replicas
        #: commit boundaries of the golden run (each swept × shards)
        self.boundaries = boundaries
        self.kills = kills
        self.promotions = promotions
        #: (k, shard, expected, got) scatter reads that disagreed with
        #: the committed prefix mid-failover
        self.torn_reads = torn_reads
        #: acked rows missing after failover, summed over runs
        self.lost_rows = lost_rows
        #: unacked rows that resurrected, summed over runs
        self.phantom_rows = phantom_rows
        #: (k, shard) final fleet digests diverging from golden
        self.digest_mismatches = digest_mismatches
        #: (k, shard, problem) index-vs-scan disagreements
        self.index_mismatches = index_mismatches
        #: statements the marker septic dropped in the golden run
        self.blocked = blocked
        #: scatter reads issued mid-failover across the sweep
        self.scatter_reads = scatter_reads

    @property
    def ok(self):
        return (not self.torn_reads and not self.lost_rows
                and not self.phantom_rows and not self.digest_mismatches
                and not self.index_mismatches and self.blocked >= 2
                and self.kills == self.boundaries * self.shards
                and self.promotions == self.kills)

    def __repr__(self):
        return ("ShardedSweepResult(seed=%r, %d boundaries x %d shards, "
                "%d kills, %d torn reads, %d lost, %d phantom)"
                % (self.seed, self.boundaries, self.shards, self.kills,
                   len(self.torn_reads), self.lost_rows,
                   self.phantom_rows))


def _replay_sharded(router, ops, stop_after=None):
    """Drive *ops* through the router, shipping after each op.  Returns
    ``(boundary_states, blocked)`` where ``boundary_states[k]`` is the
    ``(count, total, digest)`` snapshot after the k-th commit boundary
    (``boundary_states[0]`` = before any write).  Stops once
    *stop_after* boundaries have landed."""
    boundary_states = [(0, 0, fleet_digest(router))]
    blocked = 0
    for kind, sql in ops:
        if stop_after is not None and len(boundary_states) > stop_after:
            break
        outcome = router.query(sql)
        router.ship()
        if kind == "w":
            if not outcome.ok:
                raise AssertionError(
                    "workload write failed: %s -> %s" % (sql, outcome.error)
                )
            count, total = _fleet_totals(router)
            boundary_states.append((count, total, fleet_digest(router)))
        elif kind == "x":
            if outcome.ok or getattr(outcome.error, "errno", None) != 3090:
                raise AssertionError(
                    "marker septic let %r through: %r" % (sql, outcome)
                )
            blocked += 1
    return boundary_states, blocked


def run_sharded_sweep(workdir, seed, shards=2, replicas=1, writes=10):
    """Kill every shard's primary at every commit boundary mid-scatter.

    Golden run first: the full workload through a fresh sharded fleet,
    snapshotting ``(rows, sum, digest)`` at every commit boundary.  Then
    for every boundary ``k`` and every shard ``s``: fresh fleet, replay
    exactly ``k`` boundaries, crash shard ``s``'s primary, and — with
    the failover still in flight — issue a cross-shard scatter read
    through the router.  The read must see exactly the golden ``k``
    snapshot (no torn cross-shard state), the election must promote,
    and finishing the workload must converge every shard to the golden
    final digest (no lost, no phantom rows).  Indexes are cross-checked
    against full scans on every post-failover primary.
    """
    from repro.shard import ShardRouter

    ops = generate_sharded_workload(seed, writes=writes)

    def build_router(tag):
        path = os.path.join(workdir, "sharded-%s-%s" % (seed, tag))
        shutil.rmtree(path, ignore_errors=True)
        return ShardRouter(
            path, shards=shards, replicas=replicas,
            septic_factory=MarkerSeptic, seed=seed if isinstance(seed, int)
            else 1, heartbeat_interval=1, lease_intervals=2,
        )

    golden = build_router("golden")
    try:
        golden_states, blocked = _replay_sharded(golden, ops)
        golden_final = golden_states[-1][2]
    finally:
        golden.close()
    boundaries = len(golden_states) - 1

    kills = 0
    promotions = 0
    scatter_reads = 0
    torn_reads = []
    lost_rows = 0
    phantom_rows = 0
    digest_mismatches = []
    index_mismatches = []

    for k in range(1, boundaries + 1):
        for shard in range(shards):
            router = build_router("victim")
            try:
                _replay_sharded(router, ops, stop_after=k)
                victim_set = router.shard_sets[shard]
                promotions_before = victim_set.promotions
                router.kill_primary(shard)
                kills += 1
                # scatter read mid-failover: the router's virtual-tick
                # retry backoff is what drives the election forward
                outcome = router.query(
                    "SELECT COUNT(*), SUM(amount) FROM accounts"
                )
                scatter_reads += 1
                expected_count, expected_total, _ = golden_states[k]
                if not outcome.ok:
                    torn_reads.append((k, shard, "error",
                                       str(outcome.error)))
                else:
                    got_count, got_total = outcome.rows[0]
                    if (got_count, got_total or 0) != (expected_count,
                                                       expected_total):
                        torn_reads.append(
                            (k, shard,
                             (expected_count, expected_total),
                             (got_count, got_total))
                        )
                        if got_count < expected_count:
                            lost_rows += expected_count - got_count
                        elif got_count > expected_count:
                            phantom_rows += got_count - expected_count
                if victim_set.primary is None:
                    _await_promotion(victim_set)
                if victim_set.promotions > promotions_before:
                    promotions += 1
                # finish the workload over the promoted fleet
                remaining = _count_remaining(ops, k)
                if remaining:
                    _replay_sharded(router, remaining)
                final = fleet_digest(router)
                if final != golden_final:
                    digest_mismatches.append((k, shard))
                for ordinal in range(shards):
                    database = router.primary_database(ordinal)
                    if database is None:
                        index_mismatches.append((k, shard, "no primary"))
                        continue
                    for problem in verify_index_consistency(database):
                        index_mismatches.append((k, shard, problem))
            finally:
                router.close()

    return ShardedSweepResult(
        seed=seed, shards=shards, replicas=replicas,
        boundaries=boundaries, kills=kills, promotions=promotions,
        torn_reads=torn_reads, lost_rows=lost_rows,
        phantom_rows=phantom_rows, digest_mismatches=digest_mismatches,
        index_mismatches=index_mismatches, blocked=blocked,
        scatter_reads=scatter_reads,
    )


def _count_remaining(ops, boundaries_done):
    """The op suffix after the first *boundaries_done* commit
    boundaries (what the victim run still has to execute)."""
    landed = 0
    for index, (kind, _sql) in enumerate(ops):
        if kind == "w":
            landed += 1
            if landed == boundaries_done:
                return ops[index + 1:]
    return []


def format_sharded_result(result):
    lines = [
        "sharded crash sweep: seed=%r %d shards x %d replicas" % (
            result.seed, result.shards, result.replicas),
        "  %d commit boundaries, %d kills (every shard at every "
        "boundary), %d promotions" % (result.boundaries, result.kills,
                                      result.promotions),
        "  %d scatter reads mid-failover, %d torn" % (
            result.scatter_reads, len(result.torn_reads)),
        "  lost rows: %d, phantom rows: %d" % (result.lost_rows,
                                               result.phantom_rows),
        "  digest mismatches: %d, index mismatches: %d, blocked: %d" % (
            len(result.digest_mismatches), len(result.index_mismatches),
            result.blocked),
        "  verdict: %s" % ("OK" if result.ok else "FAILED"),
    ]
    return "\n".join(lines)
