"""NetLab — virtual-time model of the wire protocol's pipelining win.

The real socket benchmark (``benchmarks/bench_net_throughput.py``)
measures the pipelined front end against a one-query-per-round-trip
client on actual TCP.  This module models the *same* comparison in
virtual time on the BenchLab event heap, so the speedup's shape — why
pipelining approaches ``1 + rtt/service`` and where it saturates — is
reproducible deterministically on any machine, load-independent, in
milliseconds of real time.

Model: each client connection issues *commands_per_connection* commands
against a server that needs *service_ticks* of exclusive executor time
per command, across a link with *rtt_ticks* round-trip latency.

* **round-trip discipline** — a client sends one command, waits for its
  response, then sends the next.  Every command pays the full RTT.
* **pipelined discipline** — a client sends up to *window* commands
  before the first response arrives (bounded by the server's inbox,
  exactly like the real front end's backpressure).  The RTT is paid
  once per window, not once per command, and the server batches
  executor work.

Responses on one connection are delivered strictly in send order — the
per-connection FIFO the real server guarantees.  No wall clock is read
anywhere here (the lint gate in ``tests/test_lint.py`` enforces that):
time exists only as the Simulator's virtual ``now``.
"""

from repro.benchlab.simulation import Simulator


class NetLabResult(object):
    """Outcome of one discipline's run (virtual-time units)."""

    __slots__ = ("discipline", "connections", "commands", "makespan",
                 "server_busy_ticks", "round_trips")

    def __init__(self, discipline, connections, commands, makespan,
                 server_busy_ticks, round_trips):
        self.discipline = discipline
        self.connections = connections
        self.commands = commands
        self.makespan = makespan
        self.server_busy_ticks = server_busy_ticks
        self.round_trips = round_trips

    @property
    def throughput(self):
        """Commands per virtual tick."""
        if self.makespan <= 0:
            return 0.0
        return self.commands / self.makespan

    def as_dict(self):
        return {
            "discipline": self.discipline,
            "connections": self.connections,
            "commands": self.commands,
            "makespan": self.makespan,
            "throughput": self.throughput,
            "server_busy_ticks": self.server_busy_ticks,
            "round_trips": self.round_trips,
        }


class _SharedServer(object):
    """A single-executor server: commands queue for exclusive service.

    ``free_at`` is the virtual time the executor next idles; scheduling
    a command at time *t* completes at ``max(t, free_at) + service``.
    """

    def __init__(self, service_ticks):
        self.service_ticks = service_ticks
        self.free_at = 0.0
        self.busy_ticks = 0.0

    def serve(self, arrival, count=1):
        """Serve *count* back-to-back commands arriving at *arrival*;
        returns the completion time of the last one."""
        start = max(arrival, self.free_at)
        self.free_at = start + self.service_ticks * count
        self.busy_ticks += self.service_ticks * count
        return self.free_at


def run_round_trip(connections=8, commands_per_connection=50,
                   rtt_ticks=10.0, service_ticks=1.0):
    """One-command-per-round-trip discipline: every command pays RTT."""
    sim = Simulator()
    server = _SharedServer(service_ticks)
    state = {"done": 0, "finish": 0.0, "round_trips": 0}

    def send(conn, remaining):
        if remaining <= 0:
            state["done"] += 1
            state["finish"] = max(state["finish"], sim.now)
            return
        state["round_trips"] += 1
        arrival = sim.now + rtt_ticks / 2.0
        completed = server.serve(arrival)
        respond_at = completed + rtt_ticks / 2.0
        sim.schedule(respond_at - sim.now, send, conn, remaining - 1)

    for conn in range(connections):
        sim.schedule(0.0, send, conn, commands_per_connection)
    sim.run()
    return NetLabResult("round_trip", connections,
                        connections * commands_per_connection,
                        state["finish"], server.busy_ticks,
                        state["round_trips"])


def run_pipelined(connections=8, commands_per_connection=50,
                  rtt_ticks=10.0, service_ticks=1.0, window=16):
    """Pipelined discipline: a window of commands shares one round trip.

    Each connection ships ``min(window, remaining)`` commands in one
    burst; the server executes the burst back-to-back (the real
    server's batched executor hop) and the responses ride home
    together, in order.
    """
    if window < 1:
        raise ValueError("window must be >= 1 (got %r)" % window)
    sim = Simulator()
    server = _SharedServer(service_ticks)
    state = {"done": 0, "finish": 0.0, "round_trips": 0}

    def send(conn, remaining):
        if remaining <= 0:
            state["done"] += 1
            state["finish"] = max(state["finish"], sim.now)
            return
        burst = min(window, remaining)
        state["round_trips"] += 1
        arrival = sim.now + rtt_ticks / 2.0
        completed = server.serve(arrival, burst)
        respond_at = completed + rtt_ticks / 2.0
        sim.schedule(respond_at - sim.now, send, conn, remaining - burst)

    for conn in range(connections):
        sim.schedule(0.0, send, conn, commands_per_connection)
    sim.run()
    return NetLabResult("pipelined", connections,
                        connections * commands_per_connection,
                        state["finish"], server.busy_ticks,
                        state["round_trips"])


def run_netlab_experiment(connections=8, commands_per_connection=50,
                          rtt_ticks=10.0, service_ticks=1.0, window=16):
    """Both disciplines under identical parameters; returns a dict with
    each result and the pipelining speedup (deterministic — two calls
    with equal arguments produce equal numbers)."""
    base = run_round_trip(connections, commands_per_connection,
                          rtt_ticks, service_ticks)
    piped = run_pipelined(connections, commands_per_connection,
                          rtt_ticks, service_ticks, window)
    speedup = (piped.throughput / base.throughput
               if base.throughput else 0.0)
    return {
        "round_trip": base.as_dict(),
        "pipelined": piped.as_dict(),
        "speedup": speedup,
    }
