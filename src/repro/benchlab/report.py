"""Shared formatting for BenchLab results (examples and benches)."""


def format_result_line(result, baseline=None):
    """One line per configuration, Figure-5 style."""
    parts = [
        "%-10s" % result.label,
        "avg=%.3f ms" % (result.avg_latency * 1e3),
        "p95=%.3f ms" % (result.p95_latency * 1e3),
        "%.0f req/s" % result.throughput,
    ]
    if baseline is not None and baseline is not result:
        parts.append("overhead=%+.2f%%"
                     % (100 * result.overhead_vs(baseline)))
    if result.measured_seconds and result.requests:
        parts.append("septic=%.1f µs/req"
                     % (1e6 * result.measured_seconds / result.requests))
    return "  ".join(parts)


def format_overhead_table(table, configs=("NN", "YN", "NY", "YY")):
    """Render ``run_overhead_experiment`` output as the paper's table."""
    lines = ["%-12s" % "app" + "".join("%8s" % c for c in configs)]
    for app_name in sorted(table):
        row = table[app_name]
        lines.append(
            "%-12s" % app_name
            + "".join("%7.2f%%" % (row[c] * 100) for c in configs)
        )
    return "\n".join(lines)


def format_scaling_rows(rows):
    """Render ``run_scaling_experiment`` output as the §II-F series."""
    lines = ["%-10s %-10s %-12s %-12s %-8s"
             % ("browsers", "machines", "avg", "p95", "req/s")]
    for browsers, machines, result in rows:
        lines.append(
            "%-10d %-10d %-12s %-12s %-8.0f" % (
                browsers, machines,
                "%.2f ms" % (result.avg_latency * 1e3),
                "%.2f ms" % (result.p95_latency * 1e3),
                result.throughput,
            )
        )
    return "\n".join(lines)
