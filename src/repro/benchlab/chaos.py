"""Chaos workload: replay an application under an armed fault plan.

The resilience claims of the fault-injection subsystem only mean
something at system scale: a fault inside the SEPTIC hook must surface
to a *browser* as either a served page (fail-open) or a clean error page
(fail-closed) — never a stack trace, never a hung worker, never a
corrupted learned store.  ``run_chaos`` drives exactly that experiment:
build a full SEPTIC-enabled stack, train it, arm a :class:`FaultPlan`,
replay the recorded workload for a number of loops, and report what the
clients saw next to what the hook's resilience layer counted.

The run is deterministic end to end — the plan is seeded, workload
replay order is fixed, and hangs use the virtual clock — so a chaos
result is a regression artifact, not a flaky observation.
"""

from repro import faults
from repro.benchlab.harness import build_stack
from repro.core.resilience import CircuitBreaker, FailPolicy
from repro.core.septic import Mode


class ChaosResult(object):
    """What one chaos replay produced, from both sides of the fault."""

    __slots__ = ("label", "requests", "ok_responses", "error_responses",
                 "septic_stats", "breaker", "store_integrity",
                 "injected", "hits_by_site", "final_effective_mode")

    def __init__(self, label, requests, ok_responses, error_responses,
                 septic_stats, breaker, store_integrity, injected,
                 hits_by_site, final_effective_mode):
        self.label = label
        #: requests replayed
        self.requests = requests
        #: 2xx responses (includes fail-open passes)
        self.ok_responses = ok_responses
        #: non-2xx responses (fail-closed drops surface here, as clean
        #: application error pages)
        self.error_responses = error_responses
        #: :meth:`SepticStats.as_dict` snapshot after the replay
        self.septic_stats = septic_stats
        #: circuit-breaker ``state_dict()`` after the replay
        self.breaker = breaker
        #: :meth:`QMStore.integrity_stats` snapshot after the replay
        self.store_integrity = store_integrity
        #: faults the plan actually injected
        self.injected = injected
        #: injection-site hit counts (proves coverage, not just survival)
        self.hits_by_site = hits_by_site
        #: SEPTIC's effective mode once the dust settled
        self.final_effective_mode = final_effective_mode

    @property
    def survived(self):
        """True when every request produced a well-formed response —
        the chaos experiment's baseline claim."""
        return self.requests == self.ok_responses + self.error_responses

    def __repr__(self):
        return ("ChaosResult(%s: %d req, %d ok, %d err, %d faults "
                "injected)") % (self.label, self.requests,
                                self.ok_responses, self.error_responses,
                                self.injected)


def default_chaos_plan(seed=0):
    """The stock storm: one of each fault kind, spread across layers.

    * a flaky model store (transient put failures — the breaker's diet);
    * a detector that crashes once mid-run;
    * a hang inside the stored-injection plugins (watchdog fodder);
    * a corrupted learned model on read (store integrity fodder);
    * an amnesiac pipeline cache (must degrade to the cold path).
    """
    plan = faults.FaultPlan(seed=seed)
    plan.inject("store.put", faults.FaultKind.FLAKY, fails=2)
    plan.inject("detector.run", faults.FaultKind.RAISE, times=1, after=3)
    plan.inject("plugin.StoredXSSPlugin", faults.FaultKind.HANG,
                times=1, after=2, hang_seconds=30.0)
    plan.inject("store.get", faults.FaultKind.CORRUPT, times=1, after=5)
    plan.inject("cache.lookup", faults.FaultKind.FLAKY, fails=3)
    return plan


def run_chaos(app_class, plan=None, septic_flags="YY",
              fail_policy=FailPolicy.CLOSED, breaker_threshold=3,
              breaker_cooldown=8, loops=3, label=None):
    """Replay *app_class*'s workload *loops* times under *plan*.

    The stack is built and trained with no plan armed (training must be
    clean — corrupting the learning phase is a different experiment),
    then the plan is armed for the replay only.  Returns a
    :class:`ChaosResult`.
    """
    if fail_policy not in FailPolicy.ALL:
        raise ValueError("unknown fail policy %r" % fail_policy)
    server, app, septic = build_stack(app_class, septic_flags,
                                      mode=Mode.PREVENTION)
    septic.fail_policy = fail_policy
    septic.breaker = CircuitBreaker(threshold=breaker_threshold,
                                    cooldown=breaker_cooldown)
    if plan is None:
        plan = default_chaos_plan()
    requests = ok = errors = 0
    with faults.armed(plan):
        for _ in range(loops):
            for request in app.workload_requests():
                requests += 1
                response = app.handle(request)
                if response.ok:
                    ok += 1
                else:
                    errors += 1
    return ChaosResult(
        label or ("%s/%s/%s" % (app_class.name, septic_flags,
                                septic.fail_policy)),
        requests, ok, errors,
        septic.stats.as_dict(),
        septic.breaker.state_dict(),
        septic.store.integrity_stats(),
        plan.injected,
        dict(plan.hits_by_site),
        septic.effective_mode,
    )


class KillRestartResult(object):
    """What a kill+restart chaos run observed on both sides of the
    crash: data-plane row counts, trained-model counts, the WAL
    watermark, and the paired outputs of any caller probes."""

    __slots__ = ("label", "rows_before", "rows_after", "models_before",
                 "models_after", "wal_lsn", "unknown_delta",
                 "recovery_report", "probe_pairs")

    def __init__(self, label, rows_before, rows_after, models_before,
                 models_after, wal_lsn, unknown_delta, recovery_report,
                 probe_pairs):
        self.label = label
        #: {table: row count} immediately before / after the kill
        self.rows_before = rows_before
        self.rows_after = rows_after
        #: learned models immediately before / after the kill
        self.models_before = models_before
        self.models_after = models_after
        #: WAL watermark the reloaded model store carried
        self.wal_lsn = wal_lsn
        #: new ``unknown_queries`` during the post-restart workload
        #: replay — 0 means every trained query was still recognized
        self.unknown_delta = unknown_delta
        #: :attr:`Database.recovery_report` of the restart
        self.recovery_report = recovery_report
        #: list of (before, after) outputs of each caller probe
        self.probe_pairs = probe_pairs

    @property
    def consistent(self):
        """The headline claim: the restarted server has the same data,
        the same trained models, and every probe behaves identically."""
        return (
            self.rows_before == self.rows_after
            and self.models_before == self.models_after
            and self.unknown_delta == 0
            and all(before == after for before, after in self.probe_pairs)
        )

    def __repr__(self):
        return ("KillRestartResult(%s: rows %s->%s, models %d->%d, "
                "consistent=%s)") % (self.label, self.rows_before,
                                     self.rows_after, self.models_before,
                                     self.models_after, self.consistent)


def run_kill_restart(app_class, data_dir, septic_flags="YY",
                     training_passes=1, probes=(), label=None):
    """Kill the DBMS mid-service and prove nothing protective was lost.

    Builds a *durable* SEPTIC stack (WAL-backed database, models
    co-persisted with the LSN watermark), trains it, serves the workload
    in prevention mode, then simulates a crash — the WAL handle is
    abandoned un-synced and the database rebuilt from disk through the
    recovery path, models reloaded from their co-persisted store.  Each
    *probe* is called as ``probe(server, app, septic)`` before and after
    the kill; a consistent run produces identical pairs (the canonical
    probes: "is this trained query accepted?", "is this attack
    blocked?").

    Returns a :class:`KillRestartResult`.
    """
    from repro.core.logger import SepticLogger
    from repro.core.septic import Septic, SepticConfig
    from repro.sqldb.engine import Database
    from repro.web.server import WebServer

    septic = Septic(
        mode=Mode.TRAINING,
        config=SepticConfig.from_flags(septic_flags),
        logger=SepticLogger(verbose=False),
    )
    database = Database.recover(data_dir, name=app_class.name,
                                septic=septic)
    septic.bind_store(database)
    app = app_class(database)
    server = WebServer(app)
    for _ in range(training_passes):
        for request in app.workload_requests():
            app.handle(request)
    septic.mode = Mode.PREVENTION
    # serve one prevention-mode pass, then snapshot the "before" world
    for request in app.workload_requests():
        server.handle(request)
    before_probes = [probe(server, app, septic) for probe in probes]
    rows_before = {
        name: len(table) for name, table in database.tables.items()
    }
    models_before = len(septic.store)
    # -- the kill: un-synced handle drop + recovery from disk ------------
    database.reopen()
    septic.reload_models()
    recovery_report = dict(database.recovery_report or {})
    rows_after = {
        name: len(table) for name, table in database.tables.items()
    }
    models_after = len(septic.store)
    unknown_before = septic.stats.as_dict()["unknown_queries"]
    for request in app.workload_requests():
        server.handle(request)
    unknown_delta = (
        septic.stats.as_dict()["unknown_queries"] - unknown_before
    )
    after_probes = [probe(server, app, septic) for probe in probes]
    database.close()
    return KillRestartResult(
        label or ("%s/%s kill+restart" % (app_class.name, septic_flags)),
        rows_before, rows_after, models_before, models_after,
        septic.store.wal_lsn, unknown_delta, recovery_report,
        list(zip(before_probes, after_probes)),
    )


def format_chaos_result(result):
    """Human-readable chaos report (the benchmark artifact body)."""
    lines = [
        "chaos replay: %s" % result.label,
        "  requests:        %d (%d ok, %d error) survived=%s"
        % (result.requests, result.ok_responses, result.error_responses,
           result.survived),
        "  faults injected: %d" % result.injected,
        "  effective mode:  %s" % result.final_effective_mode,
        "  breaker:         %s" % (result.breaker,),
    ]
    stats = result.septic_stats
    for name in ("internal_faults", "watchdog_timeouts", "breaker_trips",
                 "breaker_resets", "fail_open_passes", "fail_closed_drops",
                 "store_recoveries"):
        lines.append("  %-22s %d" % (name + ":", stats[name]))
    lines.append("  store integrity: %s" % (result.store_integrity,))
    return "\n".join(lines)
