"""Chaos workload: replay an application under an armed fault plan.

The resilience claims of the fault-injection subsystem only mean
something at system scale: a fault inside the SEPTIC hook must surface
to a *browser* as either a served page (fail-open) or a clean error page
(fail-closed) — never a stack trace, never a hung worker, never a
corrupted learned store.  ``run_chaos`` drives exactly that experiment:
build a full SEPTIC-enabled stack, train it, arm a :class:`FaultPlan`,
replay the recorded workload for a number of loops, and report what the
clients saw next to what the hook's resilience layer counted.

The run is deterministic end to end — the plan is seeded, workload
replay order is fixed, and hangs use the virtual clock — so a chaos
result is a regression artifact, not a flaky observation.
"""

from repro import faults
from repro.benchlab.harness import build_stack
from repro.core.resilience import CircuitBreaker, FailPolicy
from repro.core.septic import Mode


class ChaosResult(object):
    """What one chaos replay produced, from both sides of the fault."""

    __slots__ = ("label", "requests", "ok_responses", "error_responses",
                 "septic_stats", "breaker", "store_integrity",
                 "injected", "hits_by_site", "final_effective_mode")

    def __init__(self, label, requests, ok_responses, error_responses,
                 septic_stats, breaker, store_integrity, injected,
                 hits_by_site, final_effective_mode):
        self.label = label
        #: requests replayed
        self.requests = requests
        #: 2xx responses (includes fail-open passes)
        self.ok_responses = ok_responses
        #: non-2xx responses (fail-closed drops surface here, as clean
        #: application error pages)
        self.error_responses = error_responses
        #: :meth:`SepticStats.as_dict` snapshot after the replay
        self.septic_stats = septic_stats
        #: circuit-breaker ``state_dict()`` after the replay
        self.breaker = breaker
        #: :meth:`QMStore.integrity_stats` snapshot after the replay
        self.store_integrity = store_integrity
        #: faults the plan actually injected
        self.injected = injected
        #: injection-site hit counts (proves coverage, not just survival)
        self.hits_by_site = hits_by_site
        #: SEPTIC's effective mode once the dust settled
        self.final_effective_mode = final_effective_mode

    @property
    def survived(self):
        """True when every request produced a well-formed response —
        the chaos experiment's baseline claim."""
        return self.requests == self.ok_responses + self.error_responses

    def __repr__(self):
        return ("ChaosResult(%s: %d req, %d ok, %d err, %d faults "
                "injected)") % (self.label, self.requests,
                                self.ok_responses, self.error_responses,
                                self.injected)


def default_chaos_plan(seed=0):
    """The stock storm: one of each fault kind, spread across layers.

    * a flaky model store (transient put failures — the breaker's diet);
    * a detector that crashes once mid-run;
    * a hang inside the stored-injection plugins (watchdog fodder);
    * a corrupted learned model on read (store integrity fodder);
    * an amnesiac pipeline cache (must degrade to the cold path).
    """
    plan = faults.FaultPlan(seed=seed)
    plan.inject("store.put", faults.FaultKind.FLAKY, fails=2)
    plan.inject("detector.run", faults.FaultKind.RAISE, times=1, after=3)
    plan.inject("plugin.StoredXSSPlugin", faults.FaultKind.HANG,
                times=1, after=2, hang_seconds=30.0)
    plan.inject("store.get", faults.FaultKind.CORRUPT, times=1, after=5)
    plan.inject("cache.lookup", faults.FaultKind.FLAKY, fails=3)
    return plan


def run_chaos(app_class, plan=None, septic_flags="YY",
              fail_policy=FailPolicy.CLOSED, breaker_threshold=3,
              breaker_cooldown=8, loops=3, label=None):
    """Replay *app_class*'s workload *loops* times under *plan*.

    The stack is built and trained with no plan armed (training must be
    clean — corrupting the learning phase is a different experiment),
    then the plan is armed for the replay only.  Returns a
    :class:`ChaosResult`.
    """
    if fail_policy not in FailPolicy.ALL:
        raise ValueError("unknown fail policy %r" % fail_policy)
    server, app, septic = build_stack(app_class, septic_flags,
                                      mode=Mode.PREVENTION)
    septic.fail_policy = fail_policy
    septic.breaker = CircuitBreaker(threshold=breaker_threshold,
                                    cooldown=breaker_cooldown)
    if plan is None:
        plan = default_chaos_plan()
    requests = ok = errors = 0
    with faults.armed(plan):
        for _ in range(loops):
            for request in app.workload_requests():
                requests += 1
                response = app.handle(request)
                if response.ok:
                    ok += 1
                else:
                    errors += 1
    return ChaosResult(
        label or ("%s/%s/%s" % (app_class.name, septic_flags,
                                septic.fail_policy)),
        requests, ok, errors,
        septic.stats.as_dict(),
        septic.breaker.state_dict(),
        septic.store.integrity_stats(),
        plan.injected,
        dict(plan.hits_by_site),
        septic.effective_mode,
    )


def format_chaos_result(result):
    """Human-readable chaos report (the benchmark artifact body)."""
    lines = [
        "chaos replay: %s" % result.label,
        "  requests:        %d (%d ok, %d error) survived=%s"
        % (result.requests, result.ok_responses, result.error_responses,
           result.survived),
        "  faults injected: %d" % result.injected,
        "  effective mode:  %s" % result.final_effective_mode,
        "  breaker:         %s" % (result.breaker,),
    ]
    stats = result.septic_stats
    for name in ("internal_faults", "watchdog_timeouts", "breaker_trips",
                 "breaker_resets", "fail_open_passes", "fail_closed_drops",
                 "store_recoveries"):
        lines.append("  %-22s %d" % (name + ":", stats[name]))
    lines.append("  store integrity: %s" % (result.store_integrity,))
    return "\n".join(lines)
