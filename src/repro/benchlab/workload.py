"""Recorded workloads (BenchLab's request traces).

BenchLab records browser sessions and replays them; a
:class:`Workload` here is the recorded request list plus metadata.  The
three paper workloads are exposed by :func:`paper_workloads`.
"""


class Workload(object):
    """A named, ordered request trace."""

    __slots__ = ("name", "requests")

    def __init__(self, name, requests):
        self.name = name
        self.requests = list(requests)

    def __len__(self):
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def __repr__(self):
        return "Workload(%s, %d requests)" % (self.name, len(self.requests))


def workload_for(app):
    """Record the workload of an application exposing
    ``workload_requests()`` (the three evaluation apps do)."""
    return Workload(app.name, app.workload_requests())


def paper_workloads():
    """Names and sizes of the paper's three workloads (§II-F)."""
    return {
        "addressbook": 12,
        "refbase": 14,
        "zerocms": 26,
    }
