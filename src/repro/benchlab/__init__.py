"""BenchLab — testbed simulator for the performance evaluation.

The paper measures SEPTIC's overhead with BenchLab (web-app benchmarking
testbed) on a six-machine cluster: one MySQL server, one Apache/PHP
server, four client machines running 1–5 browsers each, every browser
replaying a recorded workload in a loop.

We rebuild that scaffolding as a discrete-event simulation
(:mod:`repro.benchlab.simulation`): machines, network links and browsers
are simulated; the **work itself is real** — each simulated request is
served by actually invoking the Python application stack (PHP handler →
SQL engine → SEPTIC hook) and measuring its CPU time with a monotonic
clock.  Synthetic constants model the parts of the testbed we cannot run
(Apache/PHP process overhead, network transfer); they are identical
across SEPTIC configurations, so the *relative overhead* — the paper's
metric — comes entirely from measured SEPTIC work.
"""

from repro.benchlab.simulation import Simulator
from repro.benchlab.workload import Workload
from repro.benchlab.machines import BrowserClient, ServerMachine, NetworkLink
from repro.benchlab.harness import (
    BenchLabResult,
    run_benchlab,
    run_overhead_experiment,
    run_scaling_experiment,
)
from repro.benchlab.report import (
    format_overhead_table,
    format_result_line,
    format_scaling_rows,
)
from repro.benchlab.netlab import (
    NetLabResult,
    run_netlab_experiment,
    run_pipelined,
    run_round_trip,
)
from repro.benchlab.chaos import (
    ChaosResult,
    default_chaos_plan,
    format_chaos_result,
    run_chaos,
)

__all__ = [
    "Simulator",
    "Workload",
    "BrowserClient",
    "ServerMachine",
    "NetworkLink",
    "BenchLabResult",
    "run_benchlab",
    "run_overhead_experiment",
    "run_scaling_experiment",
    "format_overhead_table",
    "format_result_line",
    "format_scaling_rows",
    "ChaosResult",
    "default_chaos_plan",
    "format_chaos_result",
    "run_chaos",
    "NetLabResult",
    "run_netlab_experiment",
    "run_pipelined",
    "run_round_trip",
]
