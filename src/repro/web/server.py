"""The web server front door (the demo's Apache).

A :class:`WebServer` wraps an application and optionally a WAF
(ModSecurity): incoming requests are checked by the WAF *before* they
reach the application — the placement the paper draws in Figure 6.
"""

from repro.web.http import Response


class WebServer(object):
    """Apache-alike: WAF first, application second."""

    def __init__(self, app, waf=None, replica_set=None):
        self.app = app
        self.waf = waf
        #: optional :class:`repro.replica.coordinator.ReplicaSet` behind
        #: this server, surfaced through :meth:`replication_status`
        self.replica_set = replica_set
        self.requests_served = 0
        self.requests_blocked = 0

    def handle(self, request):
        """Process one request, returning a :class:`Response`."""
        self.requests_served += 1
        if self.waf is not None and self.waf.enabled:
            verdict = self.waf.evaluate(request)
            if verdict.blocked:
                self.requests_blocked += 1
                return Response.forbidden(
                    "Request blocked by %s (rule %s, score %d)"
                    % (self.waf.name, verdict.rule_ids, verdict.score)
                )
        return self.app.handle(request)

    def restart(self, hard=False):
        """The demo restarts Apache when toggling ModSecurity; restarting
        only resets counters here (state lives in the app/database).

        ``hard=True`` bounces the whole stack, DBMS included: the
        database is rebuilt from its data directory through the
        crash-recovery path and SEPTIC reloads its persisted query
        models — the restart the paper performs between training and
        normal mode, with both data and protection state surviving.
        Requires the database to have durability attached (a no-op for
        a purely in-memory stack).
        """
        self.requests_served = 0
        self.requests_blocked = 0
        if not hard:
            return
        database = getattr(self.app, "database", None)
        if database is None or database.data_dir is None:
            return
        database.reopen()
        septic = getattr(database, "septic", None)
        if septic is not None and hasattr(septic, "reload_models"):
            septic.reload_models()

    def replication_status(self):
        """Per-replica roles, applied LSNs and lags for an operator
        dashboard, or ``None`` when no replica set is attached."""
        if self.replica_set is None:
            return None
        return self.replica_set.status()
