"""The web server front door (the demo's Apache).

A :class:`WebServer` wraps an application and optionally a WAF
(ModSecurity): incoming requests are checked by the WAF *before* they
reach the application — the placement the paper draws in Figure 6.

The server can also front its database over the wire
(:meth:`serve_net`): starting it binds a
:class:`repro.net.server.NetServer` on the application's database, so
external drivers (benchlab, the CLI, the throughput bench) reach the
very same engine+SEPTIC pipeline through real sockets — the
client/server deployment shape of the paper's testbed.
"""

from repro.web.http import Response


class WebServer(object):
    """Apache-alike: WAF first, application second."""

    def __init__(self, app, waf=None, replica_set=None):
        self.app = app
        self.waf = waf
        #: optional :class:`repro.replica.coordinator.ReplicaSet` behind
        #: this server, surfaced through :meth:`replication_status`
        self.replica_set = replica_set
        #: the socket front end started by :meth:`serve_net` (or None)
        self.net_server = None
        self.requests_served = 0
        self.requests_blocked = 0

    def handle(self, request):
        """Process one request, returning a :class:`Response`."""
        self.requests_served += 1
        if self.waf is not None and self.waf.enabled:
            verdict = self.waf.evaluate(request)
            if verdict.blocked:
                self.requests_blocked += 1
                return Response.forbidden(
                    "Request blocked by %s (rule %s, score %d)"
                    % (self.waf.name, verdict.rule_ids, verdict.score)
                )
        return self.app.handle(request)

    # -- the socket front end ---------------------------------------------

    def serve_net(self, host="127.0.0.1", port=0, **server_options):
        """Start serving the application's database over the wire
        protocol; returns ``(host, port)``.  The NetServer installs its
        connection counters on the database, so they show up in
        ``Septic.status()`` under ``"net"``."""
        if self.net_server is not None:
            raise RuntimeError("a net server is already attached")
        database = getattr(self.app, "database", None)
        if database is None:
            raise RuntimeError("the application exposes no database")
        from repro.net.server import NetServer

        self.net_server = NetServer(database, host=host, port=port,
                                    **server_options)
        return self.net_server.start()

    def stop_net(self):
        """Stop the socket front end (no-op when none is attached)."""
        if self.net_server is not None:
            self.net_server.stop()
            self.net_server = None

    def restart(self, hard=False):
        """The demo restarts Apache when toggling ModSecurity; restarting
        only resets counters here (state lives in the app/database).

        ``hard=True`` bounces the whole stack, DBMS included: the
        database is rebuilt from its data directory through the
        crash-recovery path, SEPTIC reloads its persisted query models,
        the socket front end (when attached) drops every wire
        connection and rebinds, and the replica set's lease clock is
        renewed — an operator-driven restart must not read as primary
        downtime, or the first ticks afterwards would trigger a
        spurious election.  Requires the database to have durability
        attached (a no-op for a purely in-memory stack).
        """
        self.requests_served = 0
        self.requests_blocked = 0
        if not hard:
            return
        database = getattr(self.app, "database", None)
        if database is None or database.data_dir is None:
            return
        net_server = self.net_server
        host, port = None, None
        if net_server is not None:
            # wire clients do not survive a server bounce: drop them
            # all, recover the engine, then rebind on the same port
            host, port = net_server.host, net_server.port
            self.stop_net()
        database.reopen()
        septic = getattr(database, "septic", None)
        if septic is not None and hasattr(septic, "reload_models"):
            septic.reload_models()
        if self.replica_set is not None:
            self.replica_set.renew_leases()
        if net_server is not None:
            self.serve_net(host=host, port=port)

    def replication_status(self):
        """Per-replica roles, applied LSNs and lags for an operator
        dashboard, or ``None`` when no replica set is attached."""
        if self.replica_set is None:
            return None
        return self.replica_set.status()
