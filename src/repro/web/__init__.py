"""Web application substrate.

Simulates the demo's Apache + Zend + PHP stack:

* :mod:`repro.web.http` — request/response objects;
* :mod:`repro.web.sanitize` — PHP's sanitization functions with their
  *faithful weaknesses* (what they do and do not escape);
* :mod:`repro.web.app` — a tiny routing framework plus the ``PhpRuntime``
  (the Zend-engine shim that can attach SEPTIC external identifiers to
  queries);
* :mod:`repro.web.server` — the web server front door, where a WAF
  (ModSecurity) can be installed.
"""

from repro.web.http import Request, Response
from repro.web.app import WebApplication, PhpRuntime, FormSpec, FieldSpec
from repro.web.server import WebServer

__all__ = [
    "Request",
    "Response",
    "WebApplication",
    "PhpRuntime",
    "FormSpec",
    "FieldSpec",
    "WebServer",
]
