"""Application framework + the Zend-engine shim.

:class:`WebApplication` is the base class for the demo applications: it
routes requests to handler methods and declares its forms (so the SEPTIC
trainer and the attack drivers can discover entry points, like a crawler
would).

:class:`PhpRuntime` plays the role of PHP/Zend for database access.  Its
key SEPTIC-relevant feature is the *external identifier* support: when
``send_external_ids`` is on (the paper's "minimal and optional support at
server-side language engine level"), every query is prefixed with a
``/* septic:<app>:<site> */`` comment naming the call site — prefixed,
not suffixed, so ``--``-style payloads cannot comment it away.
"""

from repro.sqldb.connection import Connection
from repro.web.http import Response


class FieldSpec(object):
    """One form field: name, kind and a benign sample for training."""

    __slots__ = ("name", "kind", "sample")

    def __init__(self, name, kind="text", sample="abc"):
        self.name = name
        self.kind = kind  # "text" | "int" | "hidden"
        self.sample = sample

    def __repr__(self):
        return "FieldSpec(%r, %r)" % (self.name, self.kind)


class FormSpec(object):
    """One discoverable form (an application entry point)."""

    __slots__ = ("path", "method", "fields", "label")

    def __init__(self, path, method, fields, label=None):
        self.path = path
        self.method = method.upper()
        self.fields = list(fields)
        self.label = label or path.strip("/")

    def benign_params(self):
        return {field.name: field.sample for field in self.fields}

    def __repr__(self):
        return "FormSpec(%s %s)" % (self.method, self.path)


class PhpRuntime(object):
    """The PHP/Zend database layer of one application instance."""

    def __init__(self, database, app_name, send_external_ids=True,
                 charset=None):
        self.connection = Connection(database, charset=charset)
        self.app_name = app_name
        #: SSLE-level SEPTIC support: attach call-site identifiers
        self.send_external_ids = send_external_ids
        #: count of queries issued (the BenchLab harness reads this)
        self.queries_issued = 0
        self.last_outcome = None

    def mysql_query(self, sql, site):
        """Run *sql*; *site* is the call-site label (file:line stand-in).

        Returns a :class:`repro.sqldb.connection.QueryOutcome` — errors
        (including SEPTIC drops) are reported, not raised, like
        ``mysql_query`` returning FALSE.
        """
        if self.send_external_ids:
            sql = "/* septic:%s:%s */ %s" % (self.app_name, site, sql)
        self.queries_issued += 1
        outcome = self.connection.query(sql)
        self.last_outcome = outcome
        return outcome

    def escape(self, value):
        """``mysql_real_escape_string`` through the live connection."""
        return self.connection.escape_string(str(value))

    @property
    def insert_id(self):
        return self.connection.last_insert_id


class WebApplication(object):
    """Base class for the demo applications.

    Subclasses set :attr:`name`, implement :meth:`setup_schema` /
    :meth:`seed_data`, register routes in :meth:`register` and declare
    :attr:`forms`.
    """

    name = "app"

    def __init__(self, database, send_external_ids=True, charset=None,
                 magic_quotes=False):
        self.database = database
        self.php = PhpRuntime(
            database,
            self.name,
            send_external_ids=send_external_ids,
            charset=charset,
        )
        #: PHP's historical ``magic_quotes_gpc``: every request parameter
        #: gets addslashes() applied before the handler sees it.  Kept for
        #: fidelity experiments — it suffers exactly the weaknesses of
        #: addslashes (GBK escape-eating, unicode confusables).
        self.magic_quotes = magic_quotes
        self._routes = {}
        self.forms = []
        self.register()
        self.setup_schema()
        self.seed_data()

    # -- subclass surface ---------------------------------------------------

    def register(self):
        """Register routes and forms (subclasses override)."""

    def setup_schema(self):
        """Create tables (subclasses override)."""

    def seed_data(self):
        """Insert seed rows (subclasses override)."""

    # -- routing --------------------------------------------------------------

    def route(self, method, path, handler):
        self._routes[(method.upper(), path)] = handler

    def form(self, path, method, fields, label=None):
        self.forms.append(FormSpec(path, method, fields, label))

    def handle(self, request):
        """Dispatch one request to its handler; 404 on unknown routes."""
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            return Response.not_found()
        if self.magic_quotes:
            from repro.web.http import Request
            from repro.web.sanitize import addslashes

            request = Request(
                request.method,
                request.path,
                {name: addslashes(value)
                 for name, value in request.params.items()},
                cookies=request.cookies,
                client=request.client,
            )
        return handler(request)

    def routes(self):
        return sorted(self._routes)

    # -- helpers shared by the demo apps ----------------------------------------

    def admin_seed(self, script):
        """Seed data bypassing nothing — the script still flows through the
        full DBMS pipeline (and trains SEPTIC if it is in training mode)."""
        self.database.seed(script)

    def render_rows(self, title, result_set):
        """Tiny HTML rendering of a result set (enough for the demo to
        observe attack output in the 'browser')."""
        if result_set is None:
            return "<h1>%s</h1><p>no results</p>" % title
        rows = [
            "<tr>%s</tr>"
            % "".join("<td>%s</td>" % _cell(v) for v in row)
            for row in result_set.rows
        ]
        return "<h1>%s</h1><table>%s</table>" % (title, "".join(rows))


def _cell(value):
    return "NULL" if value is None else str(value)
