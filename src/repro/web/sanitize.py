"""PHP sanitization functions, faithful weaknesses included.

The demo's first phase shows that an application using these functions on
*every* entry point is still attackable.  The functions below behave like
their PHP originals — in particular:

* :func:`mysql_real_escape_string` escapes the seven characters MySQL's C
  API escapes and **nothing else**: unicode confusables (``U+02BC`` …)
  pass through untouched, and values used in *numeric* context remain
  injectable because no quote is needed there;
* :func:`addslashes` is byte-blind: against a GBK connection its inserted
  backslash is eaten by the multibyte decoder;
* :func:`intval` stops at the first non-numeric character — safe for
  numeric context, which is why the paper's apps are only vulnerable
  where developers *believed* escaping was equivalent;
* :func:`htmlspecialchars` (without ``ENT_QUOTES``) leaves single quotes
  alone, a classic stored-XSS residue.
"""

_REAL_ESCAPE = {
    "\0": "\\0",
    "\n": "\\n",
    "\r": "\\r",
    "\\": "\\\\",
    "'": "\\'",
    '"': '\\"',
    "\x1a": "\\Z",
}


def mysql_real_escape_string(value):
    """PHP ``mysql_real_escape_string`` (ASCII-quote aware only)."""
    return "".join(_REAL_ESCAPE.get(ch, ch) for ch in str(value))


_ADDSLASHES = {
    "'": "\\'",
    '"': '\\"',
    "\\": "\\\\",
    "\0": "\\0",
}


def addslashes(value):
    """PHP ``addslashes``."""
    return "".join(_ADDSLASHES.get(ch, ch) for ch in str(value))


_ASCII_DIGITS = frozenset("0123456789")


def intval(value):
    """PHP ``intval``: parse a leading ASCII integer, else 0.

    ASCII only — ``str.isdigit`` would also accept unicode digits like
    ``²`` that PHP (and ``int()``) reject.
    """
    text = str(value).strip()
    sign = 1
    i = 0
    if i < len(text) and text[i] in "+-":
        sign = -1 if text[i] == "-" else 1
        i += 1
    j = i
    while j < len(text) and text[j] in _ASCII_DIGITS:
        j += 1
    if j == i:
        return 0
    return sign * int(text[i:j])


def floatval(value):
    """PHP ``floatval``: parse a leading float, else 0.0."""
    import re

    match = re.match(r"\s*[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?", str(value))
    return float(match.group(0)) if match else 0.0


def is_numeric(value):
    """PHP ``is_numeric``."""
    text = str(value).strip()
    if not text:
        return False
    try:
        float(text)
        return True
    except ValueError:
        if text.lower().startswith("0x"):
            try:
                int(text, 16)
                return True
            except ValueError:
                return False
        return False


_HTML_BASE = {"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}


def htmlspecialchars(value, ent_quotes=False):
    """PHP ``htmlspecialchars``; single quotes escaped only with
    ``ENT_QUOTES`` (the default PHP flag set leaves them alone)."""
    out = []
    for ch in str(value):
        if ch in _HTML_BASE:
            out.append(_HTML_BASE[ch])
        elif ch == "'" and ent_quotes:
            out.append("&#039;")
        else:
            out.append(ch)
    return "".join(out)


def htmlentities(value, ent_quotes=False):
    """PHP ``htmlentities`` (we only translate the special set — enough
    for markup neutralization semantics)."""
    return htmlspecialchars(value, ent_quotes)


def strip_tags(value):
    """PHP ``strip_tags``: drop anything between ``<`` and ``>``.

    Keeps PHP's known blind spot: an unterminated ``<`` eats the rest of
    the string, and attribute payloads inside allowed text survive.
    """
    out = []
    depth = 0
    for ch in str(value):
        if ch == "<":
            depth += 1
        elif ch == ">":
            if depth:
                depth -= 1
        elif not depth:
            out.append(ch)
    return "".join(out)


def quote_smart(value):
    """The classic PHP cookbook helper: quote strings, pass numerics raw.

    This is the *semantic mismatch in function form*: a "numeric-looking"
    payload such as ``0 OR 1=1`` is not numeric so it gets quoted — but
    ``intval``-less code paths that trust ``is_numeric`` will inline
    values like ``0x35`` or ``1e309`` with surprising results.
    """
    if is_numeric(value):
        return str(value)
    return "'" + mysql_real_escape_string(value) + "'"
