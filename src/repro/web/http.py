"""Minimal HTTP request/response model.

Requests carry parameters the way PHP sees them (``$_GET``/``$_POST``
merged into the handler's view); the WAF inspects the same parameters
the way ModSecurity sees them (raw, before the application decodes
anything).
"""

import urllib.parse


class Request(object):
    """One HTTP request."""

    __slots__ = ("method", "path", "params", "cookies", "client")

    def __init__(self, method, path, params=None, cookies=None,
                 client="127.0.0.1"):
        self.method = method.upper()
        self.path = path
        #: parameter dict (string → string), like ``$_REQUEST``
        self.params = dict(params or {})
        self.cookies = dict(cookies or {})
        self.client = client

    @classmethod
    def get(cls, path, params=None, **kwargs):
        return cls("GET", path, params, **kwargs)

    @classmethod
    def post(cls, path, params=None, **kwargs):
        return cls("POST", path, params, **kwargs)

    def param(self, name, default=""):
        """PHP-style access: absent parameters become the default (usually
        the empty string), never an error."""
        return self.params.get(name, default)

    def query_string(self):
        """URL-encoded rendering of the parameters (what a WAF sees on the
        wire for GET requests)."""
        return urllib.parse.urlencode(self.params)

    def __repr__(self):
        return "Request(%s %s %r)" % (self.method, self.path, self.params)


class Response(object):
    """One HTTP response."""

    __slots__ = ("status", "body", "headers")

    def __init__(self, body="", status=200, headers=None):
        self.status = status
        self.body = body
        self.headers = dict(headers or {})

    @classmethod
    def forbidden(cls, reason="Forbidden"):
        return cls(body=reason, status=403)

    @classmethod
    def error(cls, reason="Internal Server Error"):
        return cls(body=reason, status=500)

    @classmethod
    def not_found(cls):
        return cls(body="Not Found", status=404)

    @property
    def ok(self):
        return 200 <= self.status < 300

    def __repr__(self):
        return "Response(%d, %d bytes)" % (self.status, len(self.body))
